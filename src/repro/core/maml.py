"""Meta-learning for mmWave pose estimation (Algorithm 1 of the paper).

The second FUSE contribution: instead of training the CNN to minimize error
on the available data, meta-training optimizes the *initialization* so that a
few gradient steps on a handful of new samples (a new user or movement)
produce a good model.  The procedure follows MAML:

1. sample a batch of tasks from the fused training data (Definition 2),
2. for every task, take the support subset and perform an inner gradient
   step with the sample-level learning rate ``alpha`` (Eq. 5),
3. evaluate the adapted parameters on the task's query subset,
4. update the initial parameters from the summed query losses with the
   task-level meta learning rate ``beta`` (Eq. 6).

Two meta-gradient estimators are provided:

* ``"fomaml"`` (default) — first-order MAML: the outer gradient is the query
  loss gradient evaluated at the adapted parameters.  This is the standard
  approximation used by most practical MAML deployments; it preserves the
  support/query structure that distinguishes meta-learning from transfer
  learning (the property the paper emphasizes in Section 3.3.2).
* ``"reptile"`` — the Reptile estimator (outer gradient is the parameter
  displacement after adapting on the task), provided for the ablation study.

The second-order MAML term (differentiating through the inner update) is not
implemented; see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..dataset.loader import ArrayDataset
from ..engine.functional import (
    batched_forward,
    gradient_step,
    replicate_parameters,
    supports_batched_execution,
)
from ..engine.plan import BatchPlan
from ..runtime.pool import pool_context, shard_items
from .evaluation import evaluate_model
from .models import PoseCNN
from .tasks import Task, TaskSampler
from .training import TrainingConfig

__all__ = ["MetaLearningConfig", "MetaTrainingHistory", "MetaTrainer"]


def _meta_shard_gradients(
    model: PoseCNN,
    config: "MetaLearningConfig",
    plan: BatchPlan,
    tasks: List[Task],
):
    """Worker entry point of the process-sharded meta step.

    Module-level because it crosses the worker pickle boundary (the pool may
    use ``spawn``).  Builds a throwaway serial trainer around the snapshot
    of the parent's parameters that rode along inside ``model`` and returns
    the per-task gradient stacks for this shard — the parent concatenates
    shards in order, so the combined stack is the one the single-process
    step would have produced.
    """
    trainer = MetaTrainer(model, config, plan)
    return trainer._task_gradient_stacks(tasks)


@dataclass(frozen=True)
class MetaLearningConfig:
    """Hyper-parameters of meta-training.

    The paper's full-scale values are 20,000 meta-iterations, 32 tasks per
    iteration, 1,000-frame support/query sets, ``alpha = 0.1`` and
    ``beta = 0.001``.  The defaults here are CI-scale but keep the paper's
    learning rates; experiment drivers override the sizes explicitly.

    ``warmstart_epochs`` optionally runs a few plain supervised epochs before
    the meta-iterations begin.  At the paper's 20,000-iteration budget this is
    unnecessary (and the faithful setting is 0); at CI scale it compensates
    for the ~100x smaller meta-iteration budget so that the meta-learned
    initialization starts from a sensible operating point.  DESIGN.md records
    this as an explicit deviation.
    """

    meta_iterations: int = 300
    tasks_per_batch: int = 8
    support_size: int = 64
    query_size: int = 64
    # The paper reports alpha = 0.1; with this repository's feature scaling
    # and NumPy substrate that step size makes the inner loop overshoot and
    # meta-training diverge, so the default is one order of magnitude lower.
    # EXPERIMENTS.md records this deviation.
    inner_lr: float = 0.01
    meta_lr: float = 0.001
    inner_steps: int = 1
    algorithm: str = "fomaml"
    loss: str = "l1"
    seed: int = 0
    warmstart_epochs: int = 0
    warmstart_lr: float = 1e-3
    warmstart_batch_size: int = 128

    def __post_init__(self) -> None:
        if self.meta_iterations < 1:
            raise ValueError("meta_iterations must be >= 1")
        if self.warmstart_epochs < 0:
            raise ValueError("warmstart_epochs must be non-negative")
        if self.tasks_per_batch < 1:
            raise ValueError("tasks_per_batch must be >= 1")
        if self.inner_lr <= 0 or self.meta_lr <= 0:
            raise ValueError("learning rates must be positive")
        if self.inner_steps < 1:
            raise ValueError("inner_steps must be >= 1")
        if self.algorithm not in ("fomaml", "reptile"):
            raise ValueError(f"unknown meta-learning algorithm '{self.algorithm}'")
        if self.loss not in ("l1", "l2", "huber"):
            raise ValueError(f"unknown loss '{self.loss}'")

    @classmethod
    def paper_scale(cls) -> "MetaLearningConfig":
        """The hyper-parameters reported in Section 4.1 of the paper.

        ``inner_lr`` keeps this repository's stable default rather than the
        paper's 0.1 (see the class docstring for the rationale).
        """
        return cls(
            meta_iterations=20_000,
            tasks_per_batch=32,
            support_size=1_000,
            query_size=1_000,
            meta_lr=0.001,
        )


@dataclass
class MetaTrainingHistory:
    """Per-iteration meta-training statistics."""

    query_loss: List[float] = field(default_factory=list)
    support_loss: List[float] = field(default_factory=list)
    validation_mae_cm: List[float] = field(default_factory=list)
    validation_iterations: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "query_loss": list(self.query_loss),
            "support_loss": list(self.support_loss),
            "validation_mae_cm": list(self.validation_mae_cm),
            "validation_iterations": list(self.validation_iterations),
        }


class MetaTrainer:
    """Meta-trains a :class:`PoseCNN` following Algorithm 1.

    With the default :class:`repro.engine.BatchPlan` the task dimension is
    batched: the inner-loop adaptation of every task in a meta-batch runs
    through one grouped forward/backward pass with per-task parameter
    tensors (see :mod:`repro.engine.functional`), which is numerically
    equivalent to — and several times faster than — the sequential
    task-at-a-time loop retained for ``BatchPlan.reference()``.
    """

    def __init__(
        self,
        model: PoseCNN,
        config: Optional[MetaLearningConfig] = None,
        plan: Optional[BatchPlan] = None,
    ) -> None:
        self.model = model
        self.config = config if config is not None else MetaLearningConfig()
        self.plan = plan if plan is not None else BatchPlan()
        self.history = MetaTrainingHistory()
        self._loss_fn = TrainingConfig(loss=self.config.loss).loss_function()
        self._batched = self.plan.vectorized and supports_batched_execution(model)
        # The outer update of Eq. 6 is a gradient step on the initial
        # parameters; the paper uses Adam as the optimizer, so the meta
        # gradient is fed through Adam with learning rate beta.
        self._meta_optimizer = nn.Adam(self.model.parameters(), lr=self.config.meta_lr)

    # ------------------------------------------------------------------
    # Parameter bookkeeping
    # ------------------------------------------------------------------
    def _snapshot(self) -> List[np.ndarray]:
        return [param.data.copy() for param in self.model.parameters()]

    def _restore(self, snapshot: List[np.ndarray]) -> None:
        for param, saved in zip(self.model.parameters(), snapshot):
            param.data = saved.copy()

    # ------------------------------------------------------------------
    # Inner loop
    # ------------------------------------------------------------------
    def _inner_adapt(self, task: Task) -> float:
        """Adapt the current parameters on the task's support set (Eq. 5).

        Returns the final support loss.  The update is plain gradient descent
        with the sample-level learning rate ``alpha``, applied in place.
        """
        support_loss = 0.0
        for _ in range(self.config.inner_steps):
            self.model.zero_grad()
            predictions = self.model(nn.Tensor(task.support.features))
            loss = self._loss_fn(predictions, nn.Tensor(task.support.labels))
            loss.backward()
            support_loss = loss.item()
            for param in self.model.parameters():
                if param.grad is not None:
                    param.data = param.data - self.config.inner_lr * param.grad
        return support_loss

    def _query_gradient(self, task: Task) -> tuple[List[np.ndarray], float]:
        """Gradient of the query loss at the adapted parameters (Eq. 6 term)."""
        self.model.zero_grad()
        predictions = self.model(nn.Tensor(task.query.features))
        loss = self._loss_fn(predictions, nn.Tensor(task.query.labels))
        loss.backward()
        grads = [
            param.grad.copy() if param.grad is not None else np.zeros_like(param.data)
            for param in self.model.parameters()
        ]
        return grads, loss.item()

    # ------------------------------------------------------------------
    # Task-batched meta step (the engine's vectorized path)
    # ------------------------------------------------------------------
    def _backend_scope(self):
        """Kernel-backend selection scope honoring ``plan.kernel_backend``."""
        if self.plan.kernel_backend is not None:
            return nn.use_backend(self.plan.kernel_backend)
        return contextlib.nullcontext()

    def _task_gradient_stacks(
        self, tasks: List[Task]
    ) -> tuple[List[np.ndarray], List[float], List[float]]:
        """Per-task meta-gradient stacks for one batch of tasks.

        Every task's inner-loop adaptation and query evaluation run through
        grouped kernels over ``(tasks, ...)`` parameter tensors.  Summing the
        per-task losses before ``backward`` yields each task's own gradient
        in its parameter slice (tasks are independent), so the result matches
        the sequential loop up to floating-point reduction order.

        Returns one ``(tasks, ...)`` array per model parameter: the per-task
        query gradients under ``fomaml``, the per-task parameter
        displacements under ``reptile`` (the ``1 / inner_lr`` scaling is
        applied by :meth:`_combine_stacks` after summation, preserving the
        single-process operation order).  Each task's slice is computed by
        fixed-shape per-slice GEMMs, so it does not depend on which other
        tasks shared the stack — the property that makes process sharding
        bitwise-neutral.
        """
        cfg = self.config
        num_tasks = len(tasks)
        with self._backend_scope():
            support_x = nn.Tensor(np.stack([task.support.features for task in tasks]))
            support_y = nn.Tensor(np.stack([task.support.labels for task in tasks]))
            query_x = nn.Tensor(np.stack([task.query.features for task in tasks]))
            query_y = nn.Tensor(np.stack([task.query.labels for task in tasks]))

            def adapt(
                params: List[nn.Tensor], x: nn.Tensor, y: nn.Tensor
            ) -> tuple[List[nn.Tensor], np.ndarray]:
                """Inner-loop gradient steps (Eq. 5) on per-task parameters."""
                last_losses = np.zeros(num_tasks)
                for _ in range(cfg.inner_steps):
                    predictions = batched_forward(self.model, params, x)
                    losses = nn.per_task_loss(predictions, y, cfg.loss)
                    losses.sum().backward()
                    last_losses = losses.data.copy()
                    params = gradient_step(params, cfg.inner_lr)
                return params, last_losses

            params = replicate_parameters(self.model, num_tasks)
            adapted, support_losses = adapt(params, support_x, support_y)

            if cfg.algorithm == "fomaml":
                predictions = batched_forward(self.model, adapted, query_x)
                query_losses = nn.per_task_loss(predictions, query_y, cfg.loss)
                query_losses.sum().backward()
                stacks = [
                    param.grad
                    if param.grad is not None
                    else np.zeros((num_tasks, *param.shape[1:]))
                    for param in adapted
                ]
                query_loss_values = query_losses.data.copy()
            else:  # reptile
                # One extra adaptation phase on the query set, then use the
                # total parameter displacement as the meta gradient.
                adapted, _ = adapt(adapted, query_x, query_y)
                with nn.no_grad():
                    predictions = batched_forward(self.model, adapted, query_x)
                    query_loss_values = nn.per_task_loss(
                        predictions, query_y, cfg.loss
                    ).data.copy()
                stacks = [
                    initial.data[None] - param.data
                    for initial, param in zip(self.model.parameters(), adapted)
                ]
        return stacks, list(support_losses), list(query_loss_values)

    def _combine_stacks(self, stacks: List[np.ndarray]) -> List[np.ndarray]:
        """Reduce per-task stacks to meta gradients (Eq. 6 summation)."""
        if self.config.algorithm == "fomaml":
            return [stack.sum(axis=0) for stack in stacks]
        return [stack.sum(axis=0) / self.config.inner_lr for stack in stacks]

    def _meta_step_batched(
        self, tasks: List[Task]
    ) -> tuple[List[np.ndarray], List[float], List[float]]:
        """One meta-iteration with the task dimension batched in-process."""
        stacks, support_losses, query_losses = self._task_gradient_stacks(tasks)
        return self._combine_stacks(stacks), support_losses, query_losses

    def _meta_step_sharded(
        self, tasks: List[Task], pool: ProcessPoolExecutor
    ) -> tuple[List[np.ndarray], List[float], List[float]]:
        """One meta-iteration with the task batch sharded over processes.

        The tasks are cut into contiguous shards (one per worker); each
        worker computes its shard's per-task gradient stacks with the same
        batched kernels, and the parent concatenates the stacks in shard
        order before performing the exact summation the single-process step
        performs.  Because each task's gradient slice is independent of its
        stack-mates (fixed-shape per-slice GEMMs) and the reduction happens
        once, in task order, in the parent, the result is bitwise identical
        to ``workers=1`` — ``plan.workers`` only changes the wall clock.
        """
        shards = shard_items(tasks, num_shards=self.plan.workers)
        serial_plan = replace(self.plan, workers=1)
        futures = [
            pool.submit(_meta_shard_gradients, self.model, self.config, serial_plan, shard)
            for shard in shards
        ]
        results = [future.result() for future in futures]
        num_params = len(results[0][0])
        stacks = [
            np.concatenate([shard_stacks[index] for shard_stacks, _, _ in results], axis=0)
            for index in range(num_params)
        ]
        support_losses = [loss for _, losses, _ in results for loss in losses]
        query_losses = [loss for _, _, losses in results for loss in losses]
        return self._combine_stacks(stacks), support_losses, query_losses

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def _warmstart(self, train_data: ArrayDataset, verbose: bool = False) -> None:
        """Run a few supervised epochs before meta-training (CI-scale only)."""
        from .training import SupervisedTrainer

        cfg = self.config
        if verbose:
            print(f"[meta] warm start: {cfg.warmstart_epochs} supervised epochs")
        warm_config = TrainingConfig(
            epochs=cfg.warmstart_epochs,
            batch_size=cfg.warmstart_batch_size,
            learning_rate=cfg.warmstart_lr,
            loss=cfg.loss,
            seed=cfg.seed,
        )
        SupervisedTrainer(self.model, warm_config).fit(train_data)

    # ------------------------------------------------------------------
    # Meta-training
    # ------------------------------------------------------------------
    def meta_train(
        self,
        train_data: ArrayDataset,
        validation_data: Optional[ArrayDataset] = None,
        meta_iterations: Optional[int] = None,
        validation_every: int = 50,
        verbose: bool = False,
    ) -> MetaTrainingHistory:
        """Run meta-training on the fused, feature-mapped training data."""
        cfg = self.config
        iterations = meta_iterations if meta_iterations is not None else cfg.meta_iterations
        if cfg.warmstart_epochs > 0:
            self._warmstart(train_data, verbose=verbose)
        sampler = TaskSampler(
            dataset=train_data,
            support_size=min(cfg.support_size, len(train_data)),
            query_size=min(cfg.query_size, len(train_data)),
            tasks_per_batch=cfg.tasks_per_batch,
        )
        rng = np.random.default_rng(cfg.seed)
        parameters = self.model.parameters()

        # Task shards fan out over a persistent pool when the plan asks for
        # workers; the pool is scoped to this call so trainers never leak
        # processes.  Sharding applies to the batched path (the sequential
        # reference path stays serial by design).
        pool: Optional[ProcessPoolExecutor] = None
        if self._batched and self.plan.workers > 1:
            pool = ProcessPoolExecutor(
                max_workers=self.plan.workers, mp_context=pool_context()
            )
        try:
            self._meta_train_loop(
                iterations, sampler, rng, parameters, validation_data,
                validation_every, verbose, pool,
            )
        finally:
            if pool is not None:
                pool.shutdown()
        return self.history

    def _meta_train_loop(
        self,
        iterations: int,
        sampler: TaskSampler,
        rng: np.random.Generator,
        parameters: List[nn.Tensor],
        validation_data: Optional[ArrayDataset],
        validation_every: int,
        verbose: bool,
        pool: Optional[ProcessPoolExecutor],
    ) -> None:
        cfg = self.config
        for iteration in range(1, iterations + 1):
            tasks = sampler.sample_batch(rng)
            theta = self._snapshot()

            if self._batched and pool is not None and len(tasks) > 1:
                meta_gradients, support_losses, query_losses = self._meta_step_sharded(
                    tasks, pool
                )
            elif self._batched:
                meta_gradients, support_losses, query_losses = self._meta_step_batched(tasks)
            else:
                meta_gradients = [np.zeros_like(param.data) for param in parameters]
                support_losses = []
                query_losses = []

                for task in tasks:
                    self._restore(theta)
                    support_losses.append(self._inner_adapt(task))
                    if cfg.algorithm == "fomaml":
                        grads, query_loss = self._query_gradient(task)
                        for accumulator, grad in zip(meta_gradients, grads):
                            accumulator += grad
                    else:  # reptile
                        # One extra adaptation step on the query set, then use
                        # the total parameter displacement as the meta gradient.
                        self._inner_adapt(Task(support=task.query, query=task.query))
                        with nn.no_grad():
                            predictions = self.model(nn.Tensor(task.query.features))
                            query_loss = self._loss_fn(
                                predictions, nn.Tensor(task.query.labels)
                            ).item()
                        for accumulator, param, initial in zip(
                            meta_gradients, parameters, theta
                        ):
                            accumulator += (initial - param.data) / cfg.inner_lr

                    query_losses.append(query_loss)

            # Outer update (Eq. 6): restore the initial parameters and apply
            # the summed query gradients through the meta optimizer.
            self._restore(theta)
            scale = 1.0 / len(tasks)
            for param, gradient in zip(parameters, meta_gradients):
                param.grad = gradient * scale
            self._meta_optimizer.step()
            self.model.zero_grad()

            self.history.support_loss.append(float(np.mean(support_losses)))
            self.history.query_loss.append(float(np.mean(query_losses)))

            if validation_data is not None and (
                iteration % validation_every == 0 or iteration == iterations
            ):
                report = evaluate_model(self.model, validation_data)
                self.history.validation_mae_cm.append(report.mae_average)
                self.history.validation_iterations.append(iteration)
                if verbose:
                    print(
                        f"meta-iteration {iteration:5d}: query loss "
                        f"{self.history.query_loss[-1]:.4f}, val MAE {report.mae_average:.2f} cm"
                    )
            elif verbose and iteration % max(1, iterations // 10) == 0:
                print(
                    f"meta-iteration {iteration:5d}: query loss {self.history.query_loss[-1]:.4f}"
                )

"""Supervised training of the pose-estimation CNN.

This is the baseline training procedure the paper compares against: plain
mini-batch gradient descent with the Adam optimizer and the L1 (mean absolute
error) loss over joint coordinates (Section 3.1.2 / 4.1), 128-sample batches
and up to 150 epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from .. import nn
from ..dataset.loader import ArrayDataset, BatchLoader
from .evaluation import evaluate_model
from .models import PoseCNN

__all__ = ["TrainingConfig", "TrainingHistory", "SupervisedTrainer"]

LossFunction = Callable[[nn.Tensor, nn.Tensor], nn.Tensor]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of supervised training.

    Defaults follow Section 4.2 of the paper (Adam, L1 loss, batch size 128);
    the epoch count is configured per experiment because the paper-scale 150
    epochs are only needed at full dataset size.
    """

    epochs: int = 50
    batch_size: int = 128
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    loss: str = "l1"
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.loss not in ("l1", "l2", "huber"):
            raise ValueError(f"unknown loss '{self.loss}'")

    def loss_function(self) -> LossFunction:
        """Return the configured loss function."""
        return {"l1": nn.l1_loss, "l2": nn.mse_loss, "huber": nn.huber_loss}[self.loss]


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    validation_mae_cm: List[float] = field(default_factory=list)

    def best_validation_epoch(self) -> Optional[int]:
        """1-based epoch with the lowest validation MAE (``None`` if unused)."""
        if not self.validation_mae_cm:
            return None
        return int(np.argmin(self.validation_mae_cm)) + 1

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "train_loss": list(self.train_loss),
            "validation_mae_cm": list(self.validation_mae_cm),
        }


class SupervisedTrainer:
    """Trains a :class:`PoseCNN` with conventional supervised learning."""

    def __init__(self, model: PoseCNN, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self.optimizer = nn.Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.history = TrainingHistory()
        self._loss_fn = self.config.loss_function()

    def train_epoch(self, loader: BatchLoader) -> float:
        """Run one training epoch; returns the mean batch loss."""
        self.model.train()
        losses: List[float] = []
        for features, labels in loader:
            self.optimizer.zero_grad()
            predictions = self.model(nn.Tensor(features))
            loss = self._loss_fn(predictions, nn.Tensor(labels))
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses)) if losses else 0.0

    def fit(
        self,
        train_data: ArrayDataset,
        validation_data: Optional[ArrayDataset] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for the configured number of epochs.

        Parameters
        ----------
        train_data:
            Feature/label arrays used for gradient updates.
        validation_data:
            Optional held-out set evaluated after every epoch (MAE in cm).
        epochs:
            Override the configured epoch count.
        verbose:
            Print a one-line summary per epoch.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        loader = BatchLoader(
            train_data,
            batch_size=self.config.batch_size,
            shuffle=self.config.shuffle,
            seed=self.config.seed,
        )
        for epoch in range(1, epochs + 1):
            train_loss = self.train_epoch(loader)
            self.history.train_loss.append(train_loss)
            if validation_data is not None and len(validation_data) > 0:
                report = evaluate_model(self.model, validation_data)
                self.history.validation_mae_cm.append(report.mae_average)
                if verbose:
                    print(
                        f"epoch {epoch:3d}: train loss {train_loss:.4f} "
                        f"val MAE {report.mae_average:.2f} cm"
                    )
            elif verbose:
                print(f"epoch {epoch:3d}: train loss {train_loss:.4f}")
        return self.history

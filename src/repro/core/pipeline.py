"""High-level FUSE API.

:class:`FusePoseEstimator` ties the pieces together behind one object: frame
fusion (Section 3.2), feature-map construction, the CNN model, offline
training (supervised or meta-learned) and online adaptation/inference.  The
examples and the experiment drivers are written against this API.

Typical usage::

    from repro.core import FusePoseEstimator, FuseConfig
    from repro.dataset import generate_dataset, SyntheticDatasetConfig

    dataset = generate_dataset(SyntheticDatasetConfig.ci_scale())
    estimator = FusePoseEstimator(FuseConfig(num_context_frames=1))
    estimator.fit_meta(dataset)             # offline meta-training
    estimator.adapt(new_user_samples)       # few-shot online fine-tuning
    joints = estimator.predict(frames)      # (N, 19, 3) joint coordinates
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..dataset.cache import FeatureCache
from ..dataset.features import FeatureMapBuilder
from ..dataset.loader import ArrayDataset, build_array_dataset
from ..dataset.sample import PoseDataset
from ..engine.functional import predict_with_parameters
from ..engine.plan import BatchPlan
from ..radar.pointcloud import PointCloudFrame
from .evaluation import PoseErrorReport, evaluate_model
from .finetune import FineTuneConfig, FineTuneResult, FineTuner
from .fusion import FrameFusion
from .maml import MetaLearningConfig, MetaTrainer, MetaTrainingHistory
from .models import PoseCNN, build_fuse_model
from .training import SupervisedTrainer, TrainingConfig, TrainingHistory

__all__ = ["FuseConfig", "FusePoseEstimator"]


@dataclass(frozen=True)
class FuseConfig:
    """Configuration of the end-to-end FUSE estimator.

    Attributes
    ----------
    num_context_frames:
        The fusion meta-parameter ``M`` (1 = fuse three frames, the paper's
        recommended setting; 0 disables fusion, i.e. the MARS baseline input).
    feature_builder:
        Point-cloud-to-feature-map conversion settings.
    training:
        Supervised training hyper-parameters (used by :meth:`fit_supervised`
        and as the baseline in the comparison experiments).
    meta:
        Meta-training hyper-parameters (used by :meth:`fit_meta`).
    finetune:
        Online adaptation hyper-parameters (used by :meth:`adapt`).
    model_seed:
        Seed of the model's weight initialization.
    plan:
        Execution plan (:class:`repro.engine.BatchPlan`, a façade over
        :class:`repro.runtime.ExecutionPlan`): selects the vectorized hot
        path, the worker-process count for bulk feature building, the
        feature-cache policy and the radar backend override for everything
        this estimator does.
    """

    num_context_frames: int = 1
    feature_builder: FeatureMapBuilder = field(default_factory=FeatureMapBuilder)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    meta: MetaLearningConfig = field(default_factory=MetaLearningConfig)
    finetune: FineTuneConfig = field(default_factory=FineTuneConfig)
    model_seed: int = 0
    plan: BatchPlan = field(default_factory=BatchPlan)


class FusePoseEstimator:
    """End-to-end mmWave human pose estimator implementing the FUSE framework."""

    def __init__(self, config: Optional[FuseConfig] = None, model: Optional[PoseCNN] = None) -> None:
        self.config = config if config is not None else FuseConfig()
        self.plan = self.config.plan
        self.fusion = FrameFusion(num_context_frames=self.config.num_context_frames)
        self.feature_builder = self.config.feature_builder
        self.model = (
            model
            if model is not None
            else build_fuse_model(self.feature_builder, seed=self.config.model_seed)
        )
        if self.plan.cache_policy == "memory":
            self._feature_cache: Optional[FeatureCache] = FeatureCache(
                capacity=self.plan.cache_capacity
            )
        elif self.plan.cache_policy == "disk":
            self._feature_cache = FeatureCache(
                capacity=self.plan.cache_capacity,
                cache_dir=self.plan.cache_dir,
                disk_capacity=self.plan.cache_disk_capacity,
            )
        else:
            self._feature_cache = None
        self.training_history: Optional[TrainingHistory] = None
        self.meta_history: Optional[MetaTrainingHistory] = None
        self.finetune_result: Optional[FineTuneResult] = None

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def prepare(self, dataset: PoseDataset, fuse: bool = True) -> ArrayDataset:
        """Fuse a labelled dataset and convert it to feature/label arrays.

        With a caching plan the built arrays are memoized by content hash, so
        repeated preparation of the same split (the adaptation experiments
        re-prepare their evaluation sets many times) costs one lookup.
        """
        fused = self.fusion.fuse_dataset(dataset) if fuse else dataset
        if self._feature_cache is not None:
            features, labels = self._feature_cache.get_or_build(
                fused, self.feature_builder, workers=self.plan.workers
            )
            return ArrayDataset(features, labels)
        return build_array_dataset(
            fused, builder=self.feature_builder, workers=self.plan.workers
        )

    # ------------------------------------------------------------------
    # Offline training
    # ------------------------------------------------------------------
    def fit_supervised(
        self,
        train: PoseDataset | ArrayDataset,
        validation: Optional[PoseDataset | ArrayDataset] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train with conventional supervised learning (the baseline recipe)."""
        train_arrays = self._as_arrays(train)
        validation_arrays = self._as_arrays(validation) if validation is not None else None
        trainer = SupervisedTrainer(self.model, self.config.training)
        self.training_history = trainer.fit(
            train_arrays, validation_arrays, epochs=epochs, verbose=verbose
        )
        return self.training_history

    def fit_meta(
        self,
        train: PoseDataset | ArrayDataset,
        validation: Optional[PoseDataset | ArrayDataset] = None,
        meta_iterations: Optional[int] = None,
        verbose: bool = False,
    ) -> MetaTrainingHistory:
        """Meta-train the initialization (Algorithm 1)."""
        train_arrays = self._as_arrays(train)
        validation_arrays = self._as_arrays(validation) if validation is not None else None
        trainer = MetaTrainer(self.model, self.config.meta, plan=self.plan)
        self.meta_history = trainer.meta_train(
            train_arrays,
            validation_data=validation_arrays,
            meta_iterations=meta_iterations,
            verbose=verbose,
        )
        return self.meta_history

    # ------------------------------------------------------------------
    # Online adaptation and inference
    # ------------------------------------------------------------------
    def adapt(
        self,
        new_data: PoseDataset | ArrayDataset,
        evaluation_sets: Optional[Dict[str, PoseDataset | ArrayDataset]] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> FineTuneResult:
        """Fine-tune the deployed model on a few new-scenario frames."""
        adaptation_arrays = self._as_arrays(new_data)
        named_arrays = {
            name: self._as_arrays(dataset) for name, dataset in (evaluation_sets or {}).items()
        }
        tuner = FineTuner(self.model, self.config.finetune)
        self.finetune_result = tuner.finetune(
            adaptation_arrays, evaluation_sets=named_arrays, epochs=epochs, verbose=verbose
        )
        return self.finetune_result

    def predict(
        self,
        frames: Union[Sequence[PointCloudFrame], PoseDataset, np.ndarray],
        parameters: Optional[Sequence[np.ndarray]] = None,
    ) -> np.ndarray:
        """Predict joint coordinates.

        Accepts raw point-cloud frames (fused on the fly with the configured
        window), a labelled dataset, or pre-built feature maps.  Returns an
        ``(N, 19, 3)`` array of joint coordinates in metres.

        With ``parameters`` — plain arrays in ``model.parameters()`` order,
        e.g. a per-user adapted set from
        :class:`repro.serve.AdapterRegistry` — inference runs functionally
        through those weights and the estimator's own model state is neither
        consulted nor mutated, so one shared estimator can serve many users'
        personalised parameter sets concurrently.
        """
        if isinstance(frames, np.ndarray):
            features = frames
        elif isinstance(frames, PoseDataset):
            arrays = self.prepare(frames)
            features = arrays.features
        else:
            frame_list = list(frames)
            fused = self.fusion.fuse_sequence(frame_list)
            features = self.feature_builder.build_batch(fused)
        if parameters is not None:
            flat = predict_with_parameters(self.model, parameters, features)
            return flat.reshape(flat.shape[0], -1, 3)
        return self.model.predict_joints(features)

    def evaluate(self, dataset: PoseDataset | ArrayDataset) -> PoseErrorReport:
        """Evaluate the current model; returns the MAE report in cm."""
        arrays = self._as_arrays(dataset)
        return evaluate_model(self.model, arrays)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Serialize the model weights and key configuration to ``path``."""
        metadata = {
            "num_context_frames": self.config.num_context_frames,
            "feature_shape": list(self.feature_builder.feature_shape),
            "model_config": {
                "input_channels": self.model.config.input_channels,
                "input_height": self.model.config.input_height,
                "input_width": self.model.config.input_width,
                "conv_channels": list(self.model.config.conv_channels),
                "hidden_units": self.model.config.hidden_units,
                "output_dim": self.model.config.output_dim,
            },
        }
        return nn.save_model(self.model, path, metadata=metadata)

    def load(self, path: Union[str, Path]) -> None:
        """Load model weights previously produced by :meth:`save`."""
        nn.load_model_into(self.model, path)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def feature_cache(self) -> Optional[FeatureCache]:
        """The configured feature cache (``None`` under ``cache_policy="none"``)."""
        return self._feature_cache

    def to_arrays(self, data: PoseDataset | ArrayDataset) -> ArrayDataset:
        """Coerce labelled or pre-built data to feature/label arrays.

        Labelled datasets run through :meth:`prepare` (fusion, feature
        building, caching); array datasets pass through unchanged.
        """
        if isinstance(data, ArrayDataset):
            return data
        if isinstance(data, PoseDataset):
            return self.prepare(data)
        raise TypeError(f"expected PoseDataset or ArrayDataset, got {type(data).__name__}")

    def _as_arrays(self, data: PoseDataset | ArrayDataset) -> ArrayDataset:
        return self.to_arrays(data)

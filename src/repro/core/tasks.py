"""Task sampling for meta-learning (Definitions 1-2 of the paper).

The paper defines the meta-training data :math:`D_{train}` as the set of all
fused frames (Definition 1) and a *task* as a set of fused frames sampled
uniformly from :math:`D_{train}` (Definition 2).  During each meta-training
iteration a batch of tasks is drawn; within every task a support subset is
used for the inner-loop update and a query subset for the outer-loop loss
(Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..dataset.loader import ArrayDataset

__all__ = ["Task", "TaskSampler"]


@dataclass
class Task:
    """One meta-learning task: a support set and a query set."""

    support: ArrayDataset
    query: ArrayDataset

    def __post_init__(self) -> None:
        if len(self.support) == 0 or len(self.query) == 0:
            raise ValueError("tasks require non-empty support and query sets")


@dataclass
class TaskSampler:
    """Samples batches of tasks from a materialized training set.

    Parameters
    ----------
    dataset:
        The fused, feature-mapped training data (:math:`D_{train}`).
    support_size:
        Frames per support set (1,000 in the paper's full-scale setup).
    query_size:
        Frames per query set (1,000 in the paper).
    tasks_per_batch:
        Tasks per meta-iteration (32 in the paper).
    """

    dataset: ArrayDataset
    support_size: int = 64
    query_size: int = 64
    tasks_per_batch: int = 8

    def __post_init__(self) -> None:
        if len(self.dataset) == 0:
            raise ValueError("cannot sample tasks from an empty dataset")
        if self.support_size < 1 or self.query_size < 1:
            raise ValueError("support_size and query_size must be >= 1")
        if self.tasks_per_batch < 1:
            raise ValueError("tasks_per_batch must be >= 1")

    def sample_task(self, rng: np.random.Generator) -> Task:
        """Sample one task (uniform sampling with replacement when needed)."""
        support = self.dataset.sample(self.support_size, rng)
        query = self.dataset.sample(self.query_size, rng)
        return Task(support=support, query=query)

    def sample_batch(self, rng: np.random.Generator) -> List[Task]:
        """Sample one meta-iteration's batch of tasks."""
        return [self.sample_task(rng) for _ in range(self.tasks_per_batch)]

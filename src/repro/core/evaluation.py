"""Evaluation metrics for pose estimation.

The paper reports the mean absolute error (MAE) of the predicted joint
coordinates, both per axis (Table 1) and averaged (Table 2, Figures 3-4),
always in centimetres.  This module computes those metrics plus per-joint
breakdowns and the convergence statistics ("intersection epoch", epochs to
reach a target MAE) used in Section 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..body.skeleton import JOINT_NAMES, NUM_JOINTS
from ..dataset.loader import ArrayDataset
from .models import PoseCNN

__all__ = [
    "PoseErrorReport",
    "mae_per_axis_cm",
    "mae_cm",
    "per_joint_mae_cm",
    "evaluate_model",
    "epochs_to_reach",
    "intersection_epoch",
]


@dataclass(frozen=True)
class PoseErrorReport:
    """MAE breakdown of a model on one evaluation set (all values in cm)."""

    mae_x: float
    mae_y: float
    mae_z: float
    mae_average: float
    per_joint: Dict[str, float]
    num_samples: int

    def as_row(self) -> Dict[str, float]:
        """Table-friendly dictionary with the paper's column names."""
        return {
            "X (cm)": round(self.mae_x, 2),
            "Y (cm)": round(self.mae_y, 2),
            "Z (cm)": round(self.mae_z, 2),
            "Average (cm)": round(self.mae_average, 2),
        }


def _validate_pair(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"predictions {predictions.shape} and targets {targets.shape} must match"
        )
    if predictions.ndim == 2:
        if predictions.shape[1] % 3 != 0:
            raise ValueError("flattened joint vectors must have length divisible by 3")
        predictions = predictions.reshape(predictions.shape[0], -1, 3)
        targets = targets.reshape(targets.shape[0], -1, 3)
    if predictions.ndim != 3 or predictions.shape[2] != 3:
        raise ValueError(f"expected (batch, joints, 3) arrays, got {predictions.shape}")
    return predictions, targets


def mae_per_axis_cm(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-axis MAE in centimetres, returned as ``[x, y, z]``."""
    predictions, targets = _validate_pair(predictions, targets)
    return 100.0 * np.mean(np.abs(predictions - targets), axis=(0, 1))


def mae_cm(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Average MAE over all joints and axes, in centimetres."""
    return float(mae_per_axis_cm(predictions, targets).mean())


def per_joint_mae_cm(predictions: np.ndarray, targets: np.ndarray) -> Dict[str, float]:
    """MAE of each joint (averaged over axes), in centimetres."""
    predictions, targets = _validate_pair(predictions, targets)
    per_joint = 100.0 * np.mean(np.abs(predictions - targets), axis=(0, 2))
    names = JOINT_NAMES if per_joint.shape[0] == NUM_JOINTS else [
        f"joint_{i}" for i in range(per_joint.shape[0])
    ]
    return {name: float(value) for name, value in zip(names, per_joint)}


def evaluate_model(
    model: PoseCNN, dataset: ArrayDataset, batch_size: int = 256
) -> PoseErrorReport:
    """Evaluate a model on a feature/label dataset and return the MAE report."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    predictions: List[np.ndarray] = []
    with nn.no_grad():
        for start in range(0, len(dataset), batch_size):
            batch = dataset.features[start : start + batch_size]
            predictions.append(model(nn.Tensor(batch)).numpy())
    stacked = np.concatenate(predictions, axis=0)
    axis_mae = mae_per_axis_cm(stacked, dataset.labels)
    return PoseErrorReport(
        mae_x=float(axis_mae[0]),
        mae_y=float(axis_mae[1]),
        mae_z=float(axis_mae[2]),
        mae_average=float(axis_mae.mean()),
        per_joint=per_joint_mae_cm(stacked, dataset.labels),
        num_samples=len(dataset),
    )


def epochs_to_reach(curve: Sequence[float], target: float) -> Optional[int]:
    """First epoch (1-based) at which ``curve`` drops to ``target`` or below.

    Returns ``None`` when the curve never reaches the target — the paper's
    "4x fewer training iterations" claim is computed from this statistic.
    """
    for epoch, value in enumerate(curve, start=1):
        if value <= target:
            return epoch
    return None


def intersection_epoch(
    baseline_curve: Sequence[float], fuse_curve: Sequence[float]
) -> Optional[int]:
    """Epoch at which the baseline first matches FUSE's best MAE.

    This mirrors the "Intersection" rows of Table 2: the paper marks the
    epoch where the baseline's new-data MAE meets the FUSE model's (26 epochs
    for all-layer fine-tuning, against FUSE's ~5-epoch convergence).  The
    statistic is computed as the first epoch at which the baseline curve
    reaches the best value attained anywhere on the FUSE curve; ``None`` when
    the baseline never gets there.
    """
    baseline_curve = list(baseline_curve)
    fuse_curve = list(fuse_curve)
    if not baseline_curve or not fuse_curve:
        return None
    target = float(np.min(np.asarray(fuse_curve, dtype=float)))
    return epochs_to_reach(baseline_curve, target)

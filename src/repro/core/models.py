"""CNN models for mmWave pose estimation.

The baseline model replicates the MARS CNN that the FUSE paper uses for all
its experiments (Section 4.1): two convolution layers with ReLU activations
followed by two fully connected layers of 512 and 57 neurons, about 1.1 M
parameters in total.  The 57 outputs are the x/y/z coordinates of the 19
joints.  The FUSE model is architecturally identical — the paper deliberately
keeps the network fixed so that the gains can be attributed to the input
representation (multi-frame fusion) and the training procedure
(meta-learning) rather than to model capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..dataset.features import FeatureMapBuilder
from ..dataset.sample import LABEL_DIM

__all__ = ["PoseCNNConfig", "PoseCNN", "build_baseline_model", "build_fuse_model"]


@dataclass(frozen=True)
class PoseCNNConfig:
    """Architecture hyper-parameters of the pose-estimation CNN.

    The defaults reproduce the MARS baseline: 16 and 32 convolution filters
    (3x3, stride 1, same padding), a 512-unit hidden FC layer and a
    57-dimensional linear output.
    """

    input_channels: int = 5
    input_height: int = 8
    input_width: int = 8
    conv_channels: Tuple[int, int] = (16, 32)
    kernel_size: int = 3
    hidden_units: int = 512
    output_dim: int = LABEL_DIM
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.input_channels < 1 or self.input_height < 1 or self.input_width < 1:
            raise ValueError("input dimensions must be positive")
        if len(self.conv_channels) < 1:
            raise ValueError("at least one convolution layer is required")
        if self.output_dim < 1:
            raise ValueError("output_dim must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    @classmethod
    def for_feature_builder(cls, builder: FeatureMapBuilder, **overrides) -> "PoseCNNConfig":
        """Create a config whose input shape matches a feature-map builder."""
        channels, height, width = builder.feature_shape
        return cls(input_channels=channels, input_height=height, input_width=width, **overrides)


class PoseCNN(nn.Module):
    """The MARS/FUSE convolutional pose-regression network."""

    def __init__(self, config: Optional[PoseCNNConfig] = None, seed: int = 0) -> None:
        super().__init__()
        self.config = config if config is not None else PoseCNNConfig()
        rng = np.random.default_rng(seed)
        cfg = self.config
        padding = cfg.kernel_size // 2

        layers: list[nn.Module] = []
        in_channels = cfg.input_channels
        for out_channels in cfg.conv_channels:
            layers.append(
                nn.Conv2d(
                    in_channels,
                    out_channels,
                    cfg.kernel_size,
                    stride=1,
                    padding=padding,
                    rng=rng,
                )
            )
            layers.append(nn.ReLU())
            in_channels = out_channels
        layers.append(nn.Flatten())

        flat_features = cfg.conv_channels[-1] * cfg.input_height * cfg.input_width
        layers.append(nn.Linear(flat_features, cfg.hidden_units, rng=rng))
        layers.append(nn.ReLU())
        if cfg.dropout > 0:
            layers.append(nn.Dropout(cfg.dropout, rng=rng))
        layers.append(nn.Linear(cfg.hidden_units, cfg.output_dim, rng=rng))

        self.network = nn.Sequential(*layers)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        if x.ndim != 4:
            raise ValueError(
                f"PoseCNN expects a (batch, channels, height, width) input, got shape {x.shape}"
            )
        expected = (
            self.config.input_channels,
            self.config.input_height,
            self.config.input_width,
        )
        if tuple(x.shape[1:]) != expected:
            raise ValueError(f"PoseCNN expects input shape (B, {expected}), got {x.shape}")
        return self.network(x)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Run inference on a NumPy batch and return ``(B, 57)`` predictions."""
        with nn.no_grad():
            output = self.forward(nn.Tensor(features))
        return output.numpy()

    def predict_joints(self, features: np.ndarray) -> np.ndarray:
        """Run inference and reshape the output to ``(B, 19, 3)`` joints."""
        flat = self.predict(features)
        return flat.reshape(flat.shape[0], -1, 3)

    @property
    def last_layer(self) -> nn.Linear:
        """The final fully connected layer (fine-tuned alone in Figure 4)."""
        return self.network[-1]

    def last_layer_parameters(self) -> list[nn.Parameter]:
        """Parameters of the output layer plus its preceding activation."""
        return self.last_layer.parameters()


def build_baseline_model(
    feature_builder: Optional[FeatureMapBuilder] = None, seed: int = 0, **overrides
) -> PoseCNN:
    """Build the MARS baseline CNN (trained with plain supervised learning)."""
    builder = feature_builder if feature_builder is not None else FeatureMapBuilder()
    config = PoseCNNConfig.for_feature_builder(builder, **overrides)
    return PoseCNN(config, seed=seed)


def build_fuse_model(
    feature_builder: Optional[FeatureMapBuilder] = None, seed: int = 0, **overrides
) -> PoseCNN:
    """Build the FUSE model.

    Architecturally identical to the baseline (the paper keeps the model
    fixed); the difference lies in the multi-frame input representation and
    the meta-learning training procedure.
    """
    return build_baseline_model(feature_builder, seed=seed, **overrides)

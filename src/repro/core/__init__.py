"""``repro.core`` — the FUSE framework (the paper's contribution).

Multi-frame point-cloud fusion (Section 3.2), the MARS baseline CNN, plain
supervised training, meta-learning (Algorithm 1), online fine-tuning
(Section 3.3.3), evaluation metrics and the high-level
:class:`FusePoseEstimator` API.
"""

from .evaluation import (
    PoseErrorReport,
    epochs_to_reach,
    evaluate_model,
    intersection_epoch,
    mae_cm,
    mae_per_axis_cm,
    per_joint_mae_cm,
)
from .finetune import FineTuneConfig, FineTuneResult, FineTuner, finetune_population
from .fusion import FrameFusion, fuse_dataset
from .maml import MetaLearningConfig, MetaTrainer, MetaTrainingHistory
from .models import PoseCNN, PoseCNNConfig, build_baseline_model, build_fuse_model
from .pipeline import FuseConfig, FusePoseEstimator
from .tasks import Task, TaskSampler
from .training import SupervisedTrainer, TrainingConfig, TrainingHistory

__all__ = [
    "FrameFusion",
    "fuse_dataset",
    "PoseCNN",
    "PoseCNNConfig",
    "build_baseline_model",
    "build_fuse_model",
    "TrainingConfig",
    "TrainingHistory",
    "SupervisedTrainer",
    "Task",
    "TaskSampler",
    "MetaLearningConfig",
    "MetaTrainer",
    "MetaTrainingHistory",
    "FineTuneConfig",
    "FineTuneResult",
    "FineTuner",
    "finetune_population",
    "PoseErrorReport",
    "evaluate_model",
    "mae_cm",
    "mae_per_axis_cm",
    "per_joint_mae_cm",
    "epochs_to_reach",
    "intersection_epoch",
    "FuseConfig",
    "FusePoseEstimator",
]

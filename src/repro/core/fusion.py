"""Multi-frame point-cloud fusion (Section 3.2, Equations 2-3).

The first FUSE contribution: because a single mmWave frame contains only tens
of points, the paper fuses ``2M + 1`` consecutive frames into one enriched
representation

.. math::

    F[k] = \\{ f[k-M], \\ldots, f[k], \\ldots, f[k+M] \\}

and uses the centre frame's label as the target.  ``M = 1`` (three frames) is
the paper's recommended setting: Table 1 shows it reduces MAE by 34% while
``M = 2`` (five frames) starts to reintroduce redundancy/blurring and gives
the improvement back.

Fusion operates on labelled datasets and never crosses recording-session
boundaries (a fused frame mixing two different movements would be
physically meaningless).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..radar.pointcloud import PointCloudFrame, merge_frames
from ..dataset.sample import LabelledFrame, PoseDataset

__all__ = ["FrameFusion", "fuse_dataset"]


@dataclass(frozen=True)
class FrameFusion:
    """Fuses ``2M + 1`` consecutive frames around each centre frame.

    Parameters
    ----------
    num_context_frames:
        The meta-parameter ``M`` of Eq. 3.  ``0`` disables fusion (the
        single-frame baseline), ``1`` fuses three frames, ``2`` fuses five.
    boundary:
        How to treat frames near the start/end of a sequence where the full
        window is unavailable: ``"clamp"`` repeats the edge frame (so every
        frame produces a fused sample, keeping dataset sizes identical across
        fusion settings — important for a fair Table 1 comparison) or
        ``"drop"`` discards incomplete windows.
    """

    num_context_frames: int = 1
    boundary: str = "clamp"

    def __post_init__(self) -> None:
        if self.num_context_frames < 0:
            raise ValueError("num_context_frames (M) must be non-negative")
        if self.boundary not in ("clamp", "drop"):
            raise ValueError(f"unknown boundary mode '{self.boundary}'")

    @property
    def window_size(self) -> int:
        """Number of frames fused together (``2M + 1``)."""
        return 2 * self.num_context_frames + 1

    # ------------------------------------------------------------------
    # Frame-level fusion
    # ------------------------------------------------------------------
    def fuse_window(self, frames: Sequence[PointCloudFrame]) -> PointCloudFrame:
        """Fuse an explicit window of frames (Eq. 3 for one ``k``)."""
        if len(frames) == 0:
            raise ValueError("cannot fuse an empty window")
        return merge_frames(frames)

    def fuse_sequence(self, frames: Sequence[PointCloudFrame]) -> List[PointCloudFrame]:
        """Fuse every frame of one recording session with its neighbours."""
        m = self.num_context_frames
        if m == 0:
            return list(frames)
        fused: List[PointCloudFrame] = []
        last = len(frames) - 1
        for index in range(len(frames)):
            if self.boundary == "drop" and (index - m < 0 or index + m > last):
                continue
            window = [
                frames[min(max(neighbour, 0), last)]
                for neighbour in range(index - m, index + m + 1)
            ]
            fused_frame = self.fuse_window(window)
            fused_frame.timestamp = frames[index].timestamp
            fused_frame.frame_index = frames[index].frame_index
            fused.append(fused_frame)
        return fused

    # ------------------------------------------------------------------
    # Dataset-level fusion
    # ------------------------------------------------------------------
    def fuse_labelled(self, samples: Sequence[LabelledFrame]) -> List[LabelledFrame]:
        """Fuse a list of labelled frames belonging to a single sequence.

        The samples are sorted by frame index; each fused sample keeps the
        centre frame's label (the pose at time ``k``), matching Eq. 3.
        """
        ordered = sorted(samples, key=lambda s: s.frame_index)
        m = self.num_context_frames
        if m == 0:
            return list(ordered)
        last = len(ordered) - 1
        fused_samples: List[LabelledFrame] = []
        for index, sample in enumerate(ordered):
            if self.boundary == "drop" and (index - m < 0 or index + m > last):
                continue
            window = [
                ordered[min(max(neighbour, 0), last)].cloud
                for neighbour in range(index - m, index + m + 1)
            ]
            fused_cloud = self.fuse_window(window)
            fused_cloud.timestamp = sample.cloud.timestamp
            fused_cloud.frame_index = sample.cloud.frame_index
            fused_samples.append(sample.with_cloud(fused_cloud))
        return fused_samples

    def fuse_dataset(self, dataset: PoseDataset) -> PoseDataset:
        """Fuse a full dataset, sequence by sequence."""
        if self.num_context_frames == 0:
            return dataset
        by_sequence: Dict[int, List[LabelledFrame]] = {}
        for sample in dataset:
            by_sequence.setdefault(sample.sequence_id, []).append(sample)
        fused = PoseDataset(name=f"{dataset.name}-fused{self.window_size}")
        for sequence_id in sorted(by_sequence):
            fused.extend(self.fuse_labelled(by_sequence[sequence_id]))
        return fused


def fuse_dataset(dataset: PoseDataset, num_context_frames: int = 1) -> PoseDataset:
    """Convenience wrapper: fuse ``dataset`` with ``M = num_context_frames``."""
    return FrameFusion(num_context_frames=num_context_frames).fuse_dataset(dataset)

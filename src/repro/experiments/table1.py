"""Table 1 — MAE of the baseline model under different frame-fusion settings.

The paper trains the baseline CNN three times — on single frames, 3-frame
fusion and 5-frame fusion — with everything else held fixed (default
60/20/20 per-movement split, batch size 128) and reports the per-axis MAE.
The published numbers are 5.5 cm (single), 3.6 cm (3 frames, a 34%
improvement) and 5.5 cm (5 frames), i.e. fusion helps but only up to a
point.  This driver regenerates that table on the synthetic dataset.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.pipeline import FuseConfig, FusePoseEstimator
from ..dataset.splits import per_movement_split
from ..dataset.synthetic import generate_dataset
from ..viz.tables import format_table
from .scale import ExperimentScale, get_scale

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1", "main"]

#: The values published in Table 1 of the paper, for side-by-side comparison.
PAPER_TABLE1 = {
    "single-frame": {"X (cm)": 6.4, "Y (cm)": 3.6, "Z (cm)": 6.5, "Average (cm)": 5.5},
    "fuse 3 frames": {"X (cm)": 4.2, "Y (cm)": 2.5, "Z (cm)": 4.4, "Average (cm)": 3.6},
    "fuse 5 frames": {"X (cm)": 6.9, "Y (cm)": 4.1, "Z (cm)": 5.5, "Average (cm)": 5.5},
}


@dataclass
class Table1Row:
    """One row of Table 1."""

    setting: str
    num_context_frames: int
    mae_x: float
    mae_y: float
    mae_z: float
    mae_average: float


@dataclass
class Table1Result:
    """The regenerated Table 1."""

    rows: List[Table1Row] = field(default_factory=list)
    scale_name: str = "ci"

    def row_for(self, num_context_frames: int) -> Table1Row:
        for row in self.rows:
            if row.num_context_frames == num_context_frames:
                return row
        raise KeyError(f"no row for M={num_context_frames}")

    def improvement_percent(self) -> Optional[float]:
        """Relative MAE improvement of 3-frame fusion over single-frame."""
        try:
            single = self.row_for(0).mae_average
            fused = self.row_for(1).mae_average
        except KeyError:
            return None
        if single <= 0:
            return None
        return 100.0 * (single - fused) / single


def _setting_name(num_context_frames: int) -> str:
    if num_context_frames == 0:
        return "single-frame"
    return f"fuse {2 * num_context_frames + 1} frames"


def run_table1(
    scale: ExperimentScale | str = "ci", verbose: bool = False
) -> Table1Result:
    """Train the baseline under every fusion setting and collect the MAE rows."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    dataset = generate_dataset(scale.dataset, plan=scale.plan)
    split = per_movement_split(dataset)

    result = Table1Result(scale_name=scale.name)
    for num_context_frames in scale.fusion_settings:
        if verbose:
            print(f"[table1] training with M={num_context_frames}")
        estimator = FusePoseEstimator(
            FuseConfig(
                num_context_frames=num_context_frames,
                training=scale.training,
                model_seed=0,
                plan=scale.plan,
            )
        )
        train_arrays = estimator.prepare(split.train)
        test_arrays = estimator.prepare(split.test)
        estimator.fit_supervised(train_arrays, epochs=scale.training.epochs)
        report = estimator.evaluate(test_arrays)
        result.rows.append(
            Table1Row(
                setting=_setting_name(num_context_frames),
                num_context_frames=num_context_frames,
                mae_x=report.mae_x,
                mae_y=report.mae_y,
                mae_z=report.mae_z,
                mae_average=report.mae_average,
            )
        )
        if verbose:
            print(f"[table1] M={num_context_frames}: {report.as_row()}")
    return result


def format_table1(result: Table1Result, include_paper: bool = True) -> str:
    """Render the regenerated Table 1 (optionally with the paper's values)."""
    headers = ["setting", "X (cm)", "Y (cm)", "Z (cm)", "Average (cm)"]
    rows = [
        [row.setting, row.mae_x, row.mae_y, row.mae_z, row.mae_average] for row in result.rows
    ]
    text = format_table(
        headers,
        rows,
        title=f"Table 1 (measured, scale={result.scale_name}): "
        "MAE of the baseline model under different frame fusion settings",
    )
    improvement = result.improvement_percent()
    if improvement is not None:
        text += f"\n3-frame fusion improvement over single-frame: {improvement:.1f}% (paper: 34%)"
    if include_paper:
        paper_rows = [
            [name, values["X (cm)"], values["Y (cm)"], values["Z (cm)"], values["Average (cm)"]]
            for name, values in PAPER_TABLE1.items()
        ]
        text += "\n\n" + format_table(headers, paper_rows, title="Table 1 (paper)")
    return text


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.experiments.table1``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", help="experiment scale preset (paper/ci/smoke)")
    args = parser.parse_args(argv)
    result = run_table1(args.scale, verbose=True)
    print(format_table1(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

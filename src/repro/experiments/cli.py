"""Unified command-line interface: experiment drivers and the serving front-end.

Installed as the ``fuse-experiment`` console script::

    fuse-experiment table1 --scale ci
    fuse-experiment table2 --scale ci
    fuse-experiment figure2
    fuse-experiment all --scale smoke
    fuse-experiment table1 --scale ci --workers 4   # sharded generation/features

    fuse-experiment fuse-serve --unix /tmp/fuse.sock --shards 4
    fuse-experiment fuse-serve --host 127.0.0.1 --port 8707 --backend inproc
    fuse-experiment fuse-serve --host 127.0.0.1 --port 0 --max-in-flight 64

``--workers`` threads a multi-process :class:`repro.runtime.ExecutionPlan`
through the selected scale: dataset generation and bulk feature building
shard over a process pool, with bitwise-identical results (per-work-item
seeding), so reproductions only get faster, never different.

``fuse-serve`` (also installed as its own ``fuse-serve`` console script)
trains a small estimator on synthetic data, stands up a
:class:`repro.serve.ProcessShardedPoseServer` — one worker process per
serving shard — and exposes it through the asyncio socket front-end
(:class:`repro.serve.PoseFrontend`), speaking the pipelined protocol v2 by
default (``--protocol 1`` restores strict request/reply;
``--max-in-flight`` bounds per-connection pipelining).  Once the socket is
bound a ``[fuse-serve] ready ...`` line reports the actual address — with
``--port 0`` that is the kernel-assigned port, so drivers wait for the
line instead of sleeping.  The wire protocol is specified in
``docs/serving.md``; ``examples/serving_frontend.py`` drives it end to end.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import figure2, figure3, figure4, table1, table2
from .scale import SCALE_NAMES, ExperimentScale, get_scale

__all__ = ["main", "router_main", "serve_main"]

_EXPERIMENTS = ("table1", "table2", "figure2", "figure3", "figure4")


def _run_one(name: str, scale: ExperimentScale) -> str:
    if name == "table1":
        return table1.format_table1(table1.run_table1(scale, verbose=True))
    if name == "table2":
        return table2.format_table2(table2.run_table2(scale, verbose=True))
    if name == "figure2":
        return figure2.format_figure2(figure2.run_figure2(scale))
    if name == "figure3":
        return figure3.format_figure3(figure3.run_figure3(scale, verbose=True))
    if name == "figure4":
        return figure4.format_figure4(figure4.run_figure4(scale, verbose=True))
    raise KeyError(f"unknown experiment '{name}'")


def _add_experiment_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="ci",
        choices=SCALE_NAMES,
        help="experiment scale preset (default: ci)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for shardable stages (default: 1; results are "
        "bitwise independent of this knob)",
    )


def _add_scheduling_policy_options(group) -> None:
    """Deadline / admission flags shared by fuse-serve and fuse-router."""
    group.add_argument(
        "--interactive-budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="latency budget of the 'interactive' traffic class "
        "(default: --max-delay-ms)",
    )
    group.add_argument(
        "--bulk-budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="latency budget of the 'bulk' traffic class "
        "(default: 10x the interactive budget)",
    )
    group.add_argument(
        "--rate-limit-per-user",
        type=float,
        default=None,
        metavar="RPS",
        help="per-user token-bucket refill rate at the front door; "
        "requests beyond it are shed with a retry_after_ms error frame "
        "(default: no rate limit)",
    )
    group.add_argument(
        "--rate-limit-burst",
        type=float,
        default=None,
        metavar="TOKENS",
        help="token-bucket burst capacity per user (default: 8)",
    )
    group.add_argument(
        "--retry-after-ms",
        type=float,
        default=None,
        metavar="MS",
        help="minimum retry hint attached to shed/rejected requests "
        "(default: 25)",
    )


def _scheduling_from_args(args: argparse.Namespace):
    """A SchedulingPolicy from the CLI flags, or None for the defaults.

    None keeps ServeConfig's derived policy (interactive = --max-delay-ms,
    bulk = 10x, no rate limit) so the flagless CLI behaves exactly as
    before the scheduling flags existed.
    """
    flags = (
        args.interactive_budget_ms,
        args.bulk_budget_ms,
        args.rate_limit_per_user,
        args.rate_limit_burst,
        args.retry_after_ms,
    )
    if all(value is None for value in flags):
        return None
    from ..serve import SchedulingPolicy, TrafficClass

    interactive = (
        args.interactive_budget_ms
        if args.interactive_budget_ms is not None
        else args.max_delay_ms
    )
    bulk = args.bulk_budget_ms if args.bulk_budget_ms is not None else interactive * 10.0
    overrides = {}
    if args.rate_limit_per_user is not None:
        overrides["rate_limit_per_user"] = args.rate_limit_per_user
    if args.rate_limit_burst is not None:
        overrides["rate_limit_burst"] = args.rate_limit_burst
    if args.retry_after_ms is not None:
        overrides["retry_after_ms"] = args.retry_after_ms
    return SchedulingPolicy(
        classes=(
            TrafficClass("interactive", interactive),
            TrafficClass("bulk", bulk),
        ),
        **overrides,
    )


def _add_serve_options(parser: argparse.ArgumentParser) -> None:
    binding = parser.add_argument_group("socket binding")
    binding.add_argument(
        "--unix", metavar="PATH", default=None, help="serve on a Unix-domain socket"
    )
    binding.add_argument(
        "--host", default=None, help="serve on TCP (default 127.0.0.1 when --unix is absent)"
    )
    binding.add_argument(
        "--port", type=int, default=8707, help="TCP port (default: 8707; 0 picks a free port)"
    )

    sharding = parser.add_argument_group("shard layout")
    sharding.add_argument(
        "--shards", type=int, default=2, help="serving shards / worker processes (default: 2)"
    )
    sharding.add_argument(
        "--backend",
        choices=("process", "inproc"),
        default="process",
        help="run shards in worker processes (default) or in the front-end process",
    )
    sharding.add_argument(
        "--kernel-backend",
        metavar="NAME",
        default=None,
        help="numeric kernel backend from the repro.nn.backend registry "
        "(e.g. 'reference', 'fast'; default: the process default, "
        "REPRO_KERNEL_BACKEND or 'reference')",
    )

    scheduling = parser.add_argument_group("micro-batch scheduling")
    scheduling.add_argument("--max-batch-size", type=int, default=32)
    scheduling.add_argument("--max-delay-ms", type=float, default=5.0)
    scheduling.add_argument("--max-queue-depth", type=int, default=256)
    _add_scheduling_policy_options(scheduling)

    wire = parser.add_argument_group("wire protocol")
    wire.add_argument(
        "--max-in-flight",
        type=int,
        default=32,
        help="pipelined requests served concurrently per connection "
        "(protocol v2; default: 32)",
    )
    wire.add_argument(
        "--protocol",
        type=int,
        choices=(1, 2),
        default=2,
        help="highest wire-protocol generation to speak (1 = strict "
        "request/reply, 2 = pipelined/streaming/batched; default: 2)",
    )

    adaptation = parser.add_argument_group("per-user adaptation")
    adaptation.add_argument(
        "--adapter-scope",
        choices=("all", "last", "lora"),
        default=None,
        help="per-user adaptation scope: full network, last layer, or "
        "low-rank factors (default: the serving default, 'all')",
    )
    adaptation.add_argument(
        "--adapter-rank",
        type=int,
        default=None,
        help="low-rank factor rank for --adapter-scope lora (default: 4)",
    )
    adaptation.add_argument(
        "--adapter-spill-dir",
        metavar="DIR",
        default=None,
        help="directory for warm-tier adapter spill files; adapted users "
        "survive shard-process restarts when set",
    )

    model = parser.add_argument_group("estimator bootstrap")
    model.add_argument(
        "--train-seconds",
        type=float,
        default=9.0,
        help="seconds of synthetic data per subject/movement pair (default: 9.0)",
    )
    model.add_argument("--train-epochs", type=int, default=3)
    model.add_argument("--seed", type=int, default=5)

    faults = parser.add_argument_group("fault injection (chaos testing)")
    faults.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="JSON fault schedule (repro.serve.FaultPlan) injected into the "
        "serving tier: worker crashes, corrupted/truncated wire frames, "
        "reply latency, blackholes and spill corruption fire at scripted "
        "occurrences (tests and chaos drills only)",
    )

    parser.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="honour the protocol's 'shutdown' message (examples and tests)",
    )


def _run_serve(args: argparse.Namespace) -> int:
    """Train a small estimator, start the shard backend and serve sockets."""
    import asyncio

    from ..core import FuseConfig, FusePoseEstimator
    from ..core.training import TrainingConfig
    from ..dataset.synthetic import SyntheticDatasetConfig, generate_dataset
    from ..serve import (
        AdapterPolicy,
        FaultPlan,
        PoseFrontend,
        ProcessShardedPoseServer,
        ServeConfig,
        ShardedPoseServer,
    )
    from ..serve.cli_utils import format_ready_line

    if args.shards < 1:
        return _fail("--shards must be >= 1")
    if args.max_in_flight < 1:
        return _fail("--max-in-flight must be >= 1")
    if args.unix is not None and args.host is not None:
        return _fail("--unix and --host are mutually exclusive")
    if args.adapter_rank is not None and args.adapter_scope != "lora":
        return _fail("--adapter-rank requires --adapter-scope lora")

    adapter = None
    if any(
        value is not None
        for value in (args.adapter_scope, args.adapter_rank, args.adapter_spill_dir)
    ):
        try:
            adapter = AdapterPolicy(
                scope=args.adapter_scope if args.adapter_scope is not None else "all",
                rank=args.adapter_rank if args.adapter_rank is not None else 4,
                spill_dir=args.adapter_spill_dir,
            )
        except ValueError as error:
            return _fail(str(error))

    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError, KeyError) as error:
            return _fail(f"could not load --fault-plan {args.fault_plan}: {error}")

    try:
        config = ServeConfig(
            max_batch_size=args.max_batch_size,
            max_delay_ms=args.max_delay_ms,
            max_queue_depth=args.max_queue_depth,
            adapter=adapter,
            kernel_backend=args.kernel_backend,
            scheduling=_scheduling_from_args(args),
            fault_plan=fault_plan,
        )
    except ValueError as error:
        return _fail(str(error))

    dataset = generate_dataset(
        SyntheticDatasetConfig(
            subject_ids=(1, 2),
            movement_names=("squat", "right_limb_extension"),
            seconds_per_pair=args.train_seconds,
            seed=args.seed,
        )
    )
    estimator = FusePoseEstimator(
        FuseConfig(
            num_context_frames=1,
            training=TrainingConfig(epochs=args.train_epochs, batch_size=128),
        )
    )
    print(f"[fuse-serve] training on {len(dataset)} synthetic frames...", flush=True)
    estimator.fit_supervised(estimator.prepare(dataset))

    if args.backend == "process":
        server = ProcessShardedPoseServer(estimator, num_shards=args.shards, config=config)
    else:
        server = ShardedPoseServer(estimator, num_shards=args.shards, config=config)

    async def run() -> None:
        frontend = PoseFrontend(
            server,
            host=None if args.unix is not None else (args.host or "127.0.0.1"),
            port=args.port,
            unix_path=args.unix,
            max_in_flight=args.max_in_flight,
            protocol=args.protocol,
            allow_remote_shutdown=args.allow_remote_shutdown,
        )
        await frontend.start()
        where = frontend.address
        print(
            f"[fuse-serve] {args.shards} {args.backend} shard(s) listening on {where} "
            f"(protocol v{args.protocol}, max in-flight {args.max_in_flight})",
            flush=True,
        )
        # A parseable readiness line carrying the *bound* address — with
        # ``--port 0`` the kernel picks the port, so e2e drivers wait for
        # this line instead of sleeping or polling
        # (repro.serve.cli_utils.parse_ready_line is the matching parser).
        if args.unix is not None:
            print(format_ready_line("fuse-serve", path=where), flush=True)
        else:
            print(format_ready_line("fuse-serve", host=where[0], port=where[1]), flush=True)
        try:
            await frontend.serve_until_closed()
        finally:
            print(
                f"[fuse-serve] served {frontend.requests_served} requests over "
                f"{frontend.connections_served} connection(s)",
                flush=True,
            )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("[fuse-serve] interrupted, shutting down", flush=True)
    finally:
        if hasattr(server, "close"):
            server.close()
    return 0


def _add_router_options(parser: argparse.ArgumentParser) -> None:
    binding = parser.add_argument_group("socket binding")
    binding.add_argument(
        "--unix", metavar="PATH", default=None, help="serve on a Unix-domain socket"
    )
    binding.add_argument(
        "--host", default=None, help="serve on TCP (default 127.0.0.1 when --unix is absent)"
    )
    binding.add_argument(
        "--port", type=int, default=8717, help="TCP port (default: 8717; 0 picks a free port)"
    )

    fleet = parser.add_argument_group("backend fleet")
    fleet.add_argument(
        "--backend",
        metavar="NAME=ENDPOINT",
        action="append",
        default=None,
        help="attach a running fuse-serve backend (ENDPOINT is host:port or "
        "a Unix socket path); repeatable",
    )
    fleet.add_argument(
        "--spawn",
        type=int,
        default=0,
        metavar="N",
        help="spawn N local fuse-serve backends on Unix sockets and attach "
        "them (they train the same seeded estimator, so replicas agree "
        "bitwise)",
    )
    fleet.add_argument(
        "--vnodes", type=int, default=128, help="virtual nodes per backend (default: 128)"
    )

    health = parser.add_argument_group("health checking")
    health.add_argument("--health-interval", type=float, default=1.0, metavar="SECONDS")
    health.add_argument("--health-timeout", type=float, default=1.0, metavar="SECONDS")
    health.add_argument(
        "--health-failures",
        type=int,
        default=3,
        help="consecutive failed pings before failover (default: 3)",
    )
    health.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request forwarding timeout; a timed-out backend counts a "
        "health-probe failure (brownout detection; default: no timeout)",
    )

    faults = parser.add_argument_group("fault injection (chaos testing)")
    faults.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help="JSON fault schedule (repro.serve.FaultPlan) injected into the "
        "router tier (tests and chaos drills only)",
    )

    wire = parser.add_argument_group("wire protocol")
    wire.add_argument(
        "--max-in-flight",
        type=int,
        default=32,
        help="pipelined requests served concurrently per connection (default: 32)",
    )
    wire.add_argument(
        "--push-credits",
        type=int,
        default=256,
        help="per-connection push flow-control budget (default: 256)",
    )

    spawned = parser.add_argument_group("spawned backends (with --spawn)")
    spawned.add_argument(
        "--shards", type=int, default=2, help="serving shards per spawned backend (default: 2)"
    )
    spawned.add_argument("--max-batch-size", type=int, default=32)
    spawned.add_argument("--max-delay-ms", type=float, default=5.0)
    spawned.add_argument("--max-queue-depth", type=int, default=256)
    _add_scheduling_policy_options(spawned)
    spawned.add_argument("--train-seconds", type=float, default=9.0)
    spawned.add_argument("--train-epochs", type=int, default=3)
    spawned.add_argument("--seed", type=int, default=5)
    spawned.add_argument(
        "--kernel-backend",
        metavar="NAME",
        default=None,
        help="numeric kernel backend forwarded to every spawned fuse-serve "
        "backend (e.g. 'reference', 'fast')",
    )

    parser.add_argument(
        "--allow-remote-shutdown",
        action="store_true",
        help="honour the protocol's 'shutdown' message (examples and tests)",
    )


def _run_router(args: argparse.Namespace) -> int:
    """Attach (or spawn) the backend fleet and route one cluster socket."""
    import asyncio
    import os
    import subprocess
    import tempfile

    from ..serve import BackendSpec, FaultPlan, PoseRouter, maybe_injector
    from ..serve.cli_utils import format_ready_line, wait_for_ready

    if args.unix is not None and args.host is not None:
        return _fail("--unix and --host are mutually exclusive", prog="fuse-router")
    if args.request_timeout is not None and args.request_timeout <= 0:
        return _fail("--request-timeout must be positive", prog="fuse-router")
    fault_injector = None
    if args.fault_plan is not None:
        try:
            fault_injector = maybe_injector(FaultPlan.load(args.fault_plan))
        except (OSError, ValueError, KeyError) as error:
            return _fail(
                f"could not load --fault-plan {args.fault_plan}: {error}",
                prog="fuse-router",
            )
    if args.spawn < 0:
        return _fail("--spawn must be >= 0", prog="fuse-router")
    if not args.spawn and not args.backend:
        return _fail(
            "no backends: give --backend NAME=ENDPOINT and/or --spawn N",
            prog="fuse-router",
        )
    if args.kernel_backend is not None:
        from ..nn import backend as _kernel_backends

        if args.kernel_backend not in _kernel_backends.available_backends():
            return _fail(
                f"unknown kernel backend '{args.kernel_backend}'; registered "
                f"backends: {', '.join(sorted(_kernel_backends.available_backends()))}",
                prog="fuse-router",
            )

    specs: list = []
    procs: list = []
    try:
        if args.spawn:
            spawn_dir = tempfile.mkdtemp(prefix="fuse-router-")
            for index in range(args.spawn):
                sock = os.path.join(spawn_dir, f"backend-{index}.sock")
                command = [
                    sys.executable,
                    "-m",
                    "repro.experiments.cli",
                    "fuse-serve",
                    "--unix",
                    sock,
                    "--shards",
                    str(args.shards),
                    "--max-batch-size",
                    str(args.max_batch_size),
                    "--max-delay-ms",
                    str(args.max_delay_ms),
                    "--max-queue-depth",
                    str(args.max_queue_depth),
                    "--train-seconds",
                    str(args.train_seconds),
                    "--train-epochs",
                    str(args.train_epochs),
                    # One shared seed: every replica trains the identical
                    # estimator, so failover/migration stay bitwise.
                    "--seed",
                    str(args.seed),
                ]
                if args.kernel_backend is not None:
                    command += ["--kernel-backend", args.kernel_backend]
                for flag, value in (
                    ("--interactive-budget-ms", args.interactive_budget_ms),
                    ("--bulk-budget-ms", args.bulk_budget_ms),
                    ("--rate-limit-per-user", args.rate_limit_per_user),
                    ("--rate-limit-burst", args.rate_limit_burst),
                    ("--retry-after-ms", args.retry_after_ms),
                ):
                    if value is not None:
                        command += [flag, str(value)]
                procs.append(
                    subprocess.Popen(command, stdout=subprocess.PIPE, text=True)
                )
            for index, proc in enumerate(procs):
                address = wait_for_ready(proc.stdout)
                specs.append(
                    BackendSpec(name=f"backend-{index}", unix_path=address.path)
                )
                print(
                    f"[fuse-router] spawned backend-{index} on {address.endpoint}",
                    flush=True,
                )
        for entry in args.backend or []:
            name, sep, endpoint = entry.partition("=")
            if not sep or not name or not endpoint:
                return _fail(
                    f"--backend expects NAME=ENDPOINT, got {entry!r}", prog="fuse-router"
                )
            specs.append(BackendSpec.from_endpoint(name, endpoint))

        async def run() -> None:
            router = PoseRouter(
                specs,
                host=None if args.unix is not None else (args.host or "127.0.0.1"),
                port=args.port,
                unix_path=args.unix,
                vnodes=args.vnodes,
                max_in_flight=args.max_in_flight,
                push_credits=args.push_credits,
                health_interval_s=args.health_interval,
                health_timeout_s=args.health_timeout,
                health_failures=args.health_failures,
                request_timeout_s=args.request_timeout,
                fault_injector=fault_injector,
                allow_remote_shutdown=args.allow_remote_shutdown,
            )
            await router.start()
            where = router.address
            print(
                f"[fuse-router] routing {len(specs)} backend(s): "
                + ", ".join(spec.name for spec in specs),
                flush=True,
            )
            if args.unix is not None:
                print(format_ready_line("fuse-router", path=where), flush=True)
            else:
                print(
                    format_ready_line("fuse-router", host=where[0], port=where[1]),
                    flush=True,
                )
            try:
                await router.serve_until_closed()
            finally:
                print(
                    f"[fuse-router] routed {router.frames_routed} frame(s), "
                    f"{router.users_failed_over} failover(s), "
                    f"{router.users_migrated} migration(s)",
                    flush=True,
                )

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("[fuse-router] interrupted, shutting down", flush=True)
        return 0
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _fail(message: str, prog: str = "fuse-serve") -> int:
    print(f"{prog}: {message}", file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``fuse-experiment`` console script."""
    parser = argparse.ArgumentParser(
        prog="fuse-experiment",
        description="Regenerate the tables and figures of the FUSE paper (DAC 2022), "
        "or launch the serving front-end.",
    )
    commands = parser.add_subparsers(dest="command", required=True, metavar="command")
    for name in _EXPERIMENTS:
        _add_experiment_options(
            commands.add_parser(name, help=f"regenerate {name} of the paper")
        )
    _add_experiment_options(commands.add_parser("all", help="run every experiment"))
    _add_serve_options(
        commands.add_parser(
            "fuse-serve",
            help="launch the asyncio socket front-end over process-per-shard serving",
        )
    )
    _add_router_options(
        commands.add_parser(
            "fuse-router",
            help="route one cluster socket across N fuse-serve backends "
            "(consistent hashing, failover, live migration)",
        )
    )
    args = parser.parse_args(argv)

    if args.command == "fuse-serve":
        return _run_serve(args)
    if args.command == "fuse-router":
        return _run_router(args)

    if args.workers < 1:
        parser.error("--workers must be >= 1")
    scale = get_scale(args.scale)
    if args.workers != 1:
        scale = scale.with_workers(args.workers)
    names = _EXPERIMENTS if args.command == "all" else (args.command,)
    for name in names:
        print(f"\n===== {name} (scale={args.scale}, workers={args.workers}) =====\n")
        print(_run_one(name, scale))
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``fuse-serve`` console script (a thin alias)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    return main(["fuse-serve", *argv])


def router_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``fuse-router`` console script (a thin alias)."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    return main(["fuse-router", *argv])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

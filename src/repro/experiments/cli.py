"""Unified command-line interface for the experiment drivers.

Installed as the ``fuse-experiment`` console script::

    fuse-experiment table1 --scale ci
    fuse-experiment table2 --scale ci
    fuse-experiment figure2
    fuse-experiment figure3
    fuse-experiment figure4
    fuse-experiment all --scale smoke
    fuse-experiment table1 --scale ci --workers 4   # sharded generation/features

``--workers`` threads a multi-process :class:`repro.runtime.ExecutionPlan`
through the selected scale: dataset generation and bulk feature building
shard over a process pool, with bitwise-identical results (per-work-item
seeding), so reproductions only get faster, never different.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from . import figure2, figure3, figure4, table1, table2
from .scale import SCALE_NAMES, ExperimentScale, get_scale

__all__ = ["main"]

_EXPERIMENTS = ("table1", "table2", "figure2", "figure3", "figure4")


def _run_one(name: str, scale: ExperimentScale) -> str:
    if name == "table1":
        return table1.format_table1(table1.run_table1(scale, verbose=True))
    if name == "table2":
        return table2.format_table2(table2.run_table2(scale, verbose=True))
    if name == "figure2":
        return figure2.format_figure2(figure2.run_figure2(scale))
    if name == "figure3":
        return figure3.format_figure3(figure3.run_figure3(scale, verbose=True))
    if name == "figure4":
        return figure4.format_figure4(figure4.run_figure4(scale, verbose=True))
    raise KeyError(f"unknown experiment '{name}'")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``fuse-experiment`` console script."""
    parser = argparse.ArgumentParser(
        prog="fuse-experiment",
        description="Regenerate the tables and figures of the FUSE paper (DAC 2022).",
    )
    parser.add_argument(
        "experiment",
        choices=(*_EXPERIMENTS, "all"),
        help="which table/figure to regenerate ('all' runs every experiment)",
    )
    parser.add_argument(
        "--scale",
        default="ci",
        choices=SCALE_NAMES,
        help="experiment scale preset (default: ci)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for shardable stages (default: 1; results are "
        "bitwise independent of this knob)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    scale = get_scale(args.scale)
    if args.workers != 1:
        scale = scale.with_workers(args.workers)
    names = _EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        print(f"\n===== {name} (scale={args.scale}, workers={args.workers}) =====\n")
        print(_run_one(name, scale))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

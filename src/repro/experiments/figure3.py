"""Figure 3 — MAE vs fine-tuning epoch when fine-tuning **all layers**.

Panel (a) tracks the MAE on the original training distribution (forgetting),
panel (b) the MAE on the new user/movement data (adaptation).  The paper's
observations, which the benchmark asserts in shape:

* the baseline starts lower on the original data (it was fit to it) but its
  original-data error climbs steadily as it adapts — catastrophic forgetting;
* FUSE starts higher (it is optimized for adaptability, not fit) but reaches
  a low new-data MAE within ~5 epochs and keeps its original-data MAE stable;
* the baseline needs ~26 epochs (paper) to match FUSE on the new data.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..core.evaluation import intersection_epoch
from ..viz.tables import format_curve
from .adaptation import AdaptationResult, run_adaptation
from .scale import ExperimentScale

__all__ = ["run_figure3", "format_figure_curves", "format_figure3", "main"]

#: Key values read off the paper's Figure 3.
PAPER_FIGURE3 = {
    "baseline_initial_original": 6.7,
    "fuse_initial_original": 12.4,
    "fuse_new_after_5_epochs": 6.0,
    "baseline_new_after_5_epochs": 9.0,
    "intersection_epoch": 26,
}


def run_figure3(
    scale: ExperimentScale | str = "ci", use_cache: bool = True, verbose: bool = False
) -> AdaptationResult:
    """Run (or reuse) the adaptation experiment that backs Figure 3."""
    return run_adaptation(scale, use_cache=use_cache, verbose=verbose)


def format_figure_curves(result: AdaptationResult, scope: str, figure_name: str) -> str:
    """Shared text rendering for Figures 3 and 4."""
    baseline = result.model_curves(scope, "baseline")
    fuse = result.model_curves(scope, "fuse")
    crossover = intersection_epoch(baseline.new_curve()[1:], fuse.new_curve()[1:])
    lines: List[str] = [
        f"{figure_name} (measured, scale={result.scale_name}, fine-tune scope='{scope}')",
        result.split_description,
        "",
        "(a) original data",
        format_curve("  baseline original-data MAE (cm)", baseline.original_curve()),
        format_curve("  FUSE     original-data MAE (cm)", fuse.original_curve()),
        "",
        "(b) new data",
        format_curve("  baseline new-data MAE (cm)", baseline.new_curve()),
        format_curve("  FUSE     new-data MAE (cm)", fuse.new_curve()),
        "",
        f"intersection epoch (baseline matches FUSE on new data): "
        f"{crossover if crossover is not None else 'not reached'}",
        f"adaptation speedup vs 5-epoch budget: "
        f"{result.adaptation_speedup(scope) or float('nan'):.1f}x",
        f"forgetting after 50 epochs: baseline {result.forgetting(scope, 'baseline'):+.1f} cm, "
        f"FUSE {result.forgetting(scope, 'fuse'):+.1f} cm",
    ]
    return "\n".join(lines)


def format_figure3(result: AdaptationResult) -> str:
    """Render the Figure 3 curves (all-layer fine-tuning)."""
    return format_figure_curves(result, scope="all", figure_name="Figure 3")


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.experiments.figure3``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", help="experiment scale preset (paper/ci/smoke)")
    args = parser.parse_args(argv)
    result = run_figure3(args.scale, verbose=True)
    print(format_figure3(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Shared runner for the adaptation experiments (Table 2, Figures 3-4).

Section 4.3 of the paper compares two models on the worst-case leave-out
split (user 4 and the "right limb extension" movement excluded from
training):

* **baseline** — the MARS CNN on single-frame input, trained with plain
  supervised learning on :math:`D_{train}`;
* **FUSE** — the same CNN on fused (3-frame) input, meta-trained with
  Algorithm 1.

Both deployed models are then fine-tuned on the small online set (200 frames
in the paper) and evaluated after every epoch on (a) the held-back original
data — measuring forgetting — and (b) the remaining new-scenario frames —
measuring adaptation.  The experiment is run twice: fine-tuning all layers
(Figure 3) and only the last FC layer (Figure 4); Table 2 summarizes both.

Offline training is done once per scale and reused across the two
fine-tuning scopes (the fine-tuning step restores the trained weights before
each run), which keeps the benchmark wall-clock manageable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.evaluation import epochs_to_reach, intersection_epoch
from ..core.finetune import FineTuneConfig, FineTuneResult, FineTuner
from ..core.maml import MetaTrainer
from ..core.models import PoseCNN
from ..core.pipeline import FuseConfig, FusePoseEstimator
from ..core.training import SupervisedTrainer
from ..dataset.loader import ArrayDataset
from ..dataset.splits import AdaptationSplit, leave_out_split
from ..dataset.synthetic import generate_dataset
from .scale import ExperimentScale, get_scale

__all__ = ["ModelCurves", "AdaptationResult", "run_adaptation", "clear_cache"]


@dataclass
class ModelCurves:
    """Fine-tuning curves of one model under one fine-tuning scope."""

    finetune: FineTuneResult
    initial_original_mae: float
    initial_new_mae: float

    def original_curve(self) -> list[float]:
        """Original-data MAE per epoch, starting at epoch 0 (before tuning)."""
        return self.finetune.curve_with_initial("original")

    def new_curve(self) -> list[float]:
        """New-data MAE per epoch, starting at epoch 0 (before tuning)."""
        return self.finetune.curve_with_initial("new")


@dataclass
class AdaptationResult:
    """Everything Table 2 and Figures 3-4 need."""

    scale_name: str
    split_description: str
    curves: Dict[str, Dict[str, ModelCurves]] = field(default_factory=dict)
    # curves[scope][model] with scope in {"all", "last"} and
    # model in {"baseline", "fuse"}.

    def model_curves(self, scope: str, model: str) -> ModelCurves:
        return self.curves[scope][model]

    # ------------------------------------------------------------------
    # Table 2 statistics
    # ------------------------------------------------------------------
    def summary_rows(self, scope: str, snapshot_epochs: tuple[int, int] = (5, 50)) -> list[dict]:
        """Rows mirroring Table 2 for one fine-tuning scope."""
        baseline = self.curves[scope]["baseline"]
        fuse = self.curves[scope]["fuse"]
        early, late = snapshot_epochs
        crossover = intersection_epoch(baseline.new_curve()[1:], fuse.new_curve()[1:])
        rows = []
        for label, epoch in (
            (f"{early} epochs", early),
            ("Intersection", crossover if crossover is not None else late),
            (f"{late} epochs", late),
        ):
            rows.append(
                {
                    "snapshot": label,
                    "baseline_original": baseline.finetune.mae_at_epoch("original", epoch),
                    "baseline_new": baseline.finetune.mae_at_epoch("new", epoch),
                    "fuse_original": fuse.finetune.mae_at_epoch("original", epoch),
                    "fuse_new": fuse.finetune.mae_at_epoch("new", epoch),
                }
            )
        return rows

    def adaptation_speedup(self, scope: str, epoch_budget: int = 5) -> Optional[float]:
        """How many times longer the baseline needs to match FUSE at ``epoch_budget``.

        The paper's headline "4x faster" claim: FUSE reaches its 5-epoch MAE
        on the new data; the statistic is the ratio of the baseline's
        epochs-to-match over FUSE's budget.
        """
        baseline = self.curves[scope]["baseline"]
        fuse = self.curves[scope]["fuse"]
        fuse_curve = fuse.new_curve()
        target = min(fuse_curve[1 : epoch_budget + 1])
        baseline_epochs = epochs_to_reach(baseline.new_curve()[1:], target)
        if baseline_epochs is None:
            return None
        return baseline_epochs / float(epoch_budget)

    def forgetting(self, scope: str, model: str, epoch: int = 50) -> float:
        """Increase of original-data MAE after ``epoch`` fine-tuning epochs (cm)."""
        curves = self.curves[scope][model]
        series = curves.original_curve()
        epoch = min(epoch, len(series) - 1)
        return series[epoch] - series[0]


# In-process cache so Table 2 / Figure 3 / Figure 4 drivers (and their
# benchmarks) share one offline-training run per scale.
_RESULT_CACHE: Dict[str, AdaptationResult] = {}


def clear_cache() -> None:
    """Drop cached adaptation results (used by tests)."""
    _RESULT_CACHE.clear()


def _prepare_arrays(
    estimator: FusePoseEstimator, split: AdaptationSplit
) -> Dict[str, ArrayDataset]:
    """Fuse + featurize every partition of the adaptation split."""
    return {
        "train": estimator.prepare(split.train),
        "finetune": estimator.prepare(split.finetune),
        "new": estimator.prepare(split.evaluation),
        "original": estimator.prepare(split.original_eval),
    }


def _finetune_from(
    model: PoseCNN,
    trained_state: Dict[str, np.ndarray],
    config: FineTuneConfig,
    arrays: Dict[str, ArrayDataset],
) -> FineTuneResult:
    """Restore offline-trained weights and fine-tune on the adaptation set."""
    model.load_state_dict(trained_state)
    tuner = FineTuner(model, config)
    return tuner.finetune(
        arrays["finetune"],
        evaluation_sets={"original": arrays["original"], "new": arrays["new"]},
    )


def run_adaptation(
    scale: ExperimentScale | str = "ci",
    use_cache: bool = True,
    verbose: bool = False,
) -> AdaptationResult:
    """Run (or fetch) the full adaptation experiment for one scale."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    # plan.vectorized selects which (deliberately distinct) dataset the
    # generator produces, so it is part of the result's identity; the
    # plan's scheduling half (workers/shards) is not.
    cache_key = (
        f"{scale.name}/{scale.dataset}/{scale.finetune_frames}"
        f"/vectorized={scale.plan.vectorized}"
    )
    if use_cache and cache_key in _RESULT_CACHE:
        return _RESULT_CACHE[cache_key]

    dataset = generate_dataset(scale.dataset, plan=scale.plan)
    split = leave_out_split(dataset, finetune_frames=scale.finetune_frames)

    # ------------------------------------------------------------------
    # Offline training
    # ------------------------------------------------------------------
    baseline_estimator = FusePoseEstimator(
        FuseConfig(
            num_context_frames=0, training=scale.training, model_seed=0, plan=scale.plan
        )
    )
    baseline_arrays = _prepare_arrays(baseline_estimator, split)
    if verbose:
        print(f"[adaptation] offline supervised training ({scale.training.epochs} epochs)")
    SupervisedTrainer(baseline_estimator.model, scale.training).fit(baseline_arrays["train"])
    baseline_state = baseline_estimator.model.state_dict()

    fuse_estimator = FusePoseEstimator(
        FuseConfig(num_context_frames=1, meta=scale.meta, model_seed=1, plan=scale.plan)
    )
    fuse_arrays = _prepare_arrays(fuse_estimator, split)
    if verbose:
        print(f"[adaptation] offline meta-training ({scale.meta.meta_iterations} iterations)")
    MetaTrainer(fuse_estimator.model, scale.meta, plan=scale.plan).meta_train(
        fuse_arrays["train"]
    )
    fuse_state = fuse_estimator.model.state_dict()

    # ------------------------------------------------------------------
    # Online fine-tuning, both scopes
    # ------------------------------------------------------------------
    result = AdaptationResult(scale_name=scale.name, split_description=split.describe())
    scope_configs = {"all": scale.finetune_all, "last": scale.finetune_last}
    for scope, finetune_config in scope_configs.items():
        if verbose:
            print(f"[adaptation] fine-tuning scope '{scope}'")
        baseline_result = _finetune_from(
            baseline_estimator.model, baseline_state, finetune_config, baseline_arrays
        )
        fuse_result = _finetune_from(
            fuse_estimator.model, fuse_state, finetune_config, fuse_arrays
        )
        result.curves[scope] = {
            "baseline": ModelCurves(
                finetune=baseline_result,
                initial_original_mae=baseline_result.initial_mae_cm["original"],
                initial_new_mae=baseline_result.initial_mae_cm["new"],
            ),
            "fuse": ModelCurves(
                finetune=fuse_result,
                initial_original_mae=fuse_result.initial_mae_cm["original"],
                initial_new_mae=fuse_result.initial_mae_cm["new"],
            ),
        }

    if use_cache:
        _RESULT_CACHE[cache_key] = result
    return result

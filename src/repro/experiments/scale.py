"""Experiment scale presets.

Every experiment driver accepts an :class:`ExperimentScale` that controls the
dataset size and training budget:

* ``paper`` — matches Section 4.1 of the paper (≈40 k frames, 150 epochs,
  20 000 meta-iterations).  Provided for completeness; on a laptop CPU this
  takes many hours.
* ``ci`` — the default for the benchmark harness: a few thousand frames and
  tens of epochs.  Preserves the orderings and crossover behaviour that the
  paper's tables and figures demonstrate while running in minutes.
* ``smoke`` — minutes-to-seconds scale used by the unit tests; only checks
  that the experiment plumbing runs end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.finetune import FineTuneConfig
from ..core.maml import MetaLearningConfig
from ..core.training import TrainingConfig
from ..dataset.synthetic import SyntheticDatasetConfig
from ..engine.plan import BatchPlan

__all__ = ["ExperimentScale", "get_scale", "SCALE_NAMES"]


@dataclass(frozen=True)
class ExperimentScale:
    """A bundle of dataset and training budgets used by experiment drivers.

    ``plan`` is the :class:`repro.engine.BatchPlan` (a façade over
    :class:`repro.runtime.ExecutionPlan`) the drivers hand to the estimator
    stack *and* to dataset generation; override it
    (``with_overrides(plan=...)``) to force the per-frame reference path, a
    different radar backend, a different cache policy — or, via
    :meth:`with_workers`, a multi-process run — without touching the
    drivers.
    """

    name: str
    dataset: SyntheticDatasetConfig
    training: TrainingConfig
    meta: MetaLearningConfig
    finetune_all: FineTuneConfig
    finetune_last: FineTuneConfig
    finetune_frames: int = 200
    fusion_settings: tuple[int, ...] = (0, 1, 2)
    plan: BatchPlan = field(default_factory=BatchPlan)

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    def with_workers(self, workers: int) -> "ExperimentScale":
        """Return a copy whose plan shards work over ``workers`` processes.

        Sharded stages are bitwise identical to serial ones (per-work-item
        seeding), so this changes reproduction wall clock, never results.
        """
        return self.with_overrides(plan=replace(self.plan, workers=workers))


def _paper_scale() -> ExperimentScale:
    return ExperimentScale(
        name="paper",
        dataset=SyntheticDatasetConfig(seconds_per_pair=100.0),
        training=TrainingConfig(epochs=150, batch_size=128),
        meta=MetaLearningConfig.paper_scale(),
        finetune_all=FineTuneConfig(epochs=50, scope="all"),
        finetune_last=FineTuneConfig(epochs=50, scope="last"),
        finetune_frames=200,
    )


def _ci_scale() -> ExperimentScale:
    return ExperimentScale(
        name="ci",
        dataset=SyntheticDatasetConfig(seconds_per_pair=12.0),
        training=TrainingConfig(epochs=30, batch_size=128),
        meta=MetaLearningConfig(
            meta_iterations=200,
            tasks_per_batch=4,
            support_size=48,
            query_size=48,
            meta_lr=5e-4,
            # The paper's 20,000-iteration budget is impractical at CI scale;
            # a short supervised warm start stands in for the bulk of it (see
            # MetaLearningConfig docs and DESIGN.md).
            warmstart_epochs=10,
        ),
        finetune_all=FineTuneConfig(epochs=50, scope="all"),
        finetune_last=FineTuneConfig(epochs=50, scope="last"),
        finetune_frames=60,
    )


def _smoke_scale() -> ExperimentScale:
    return ExperimentScale(
        name="smoke",
        dataset=SyntheticDatasetConfig(
            subject_ids=(1, 4),
            movement_names=("squat", "right_limb_extension"),
            seconds_per_pair=3.0,
        ),
        training=TrainingConfig(epochs=3, batch_size=64),
        meta=MetaLearningConfig(
            meta_iterations=5, tasks_per_batch=2, support_size=16, query_size=16
        ),
        finetune_all=FineTuneConfig(epochs=3, scope="all"),
        finetune_last=FineTuneConfig(epochs=3, scope="last"),
        finetune_frames=20,
        fusion_settings=(0, 1),
    )


_SCALES = {
    "paper": _paper_scale,
    "ci": _ci_scale,
    "smoke": _smoke_scale,
}

SCALE_NAMES = tuple(_SCALES)


def get_scale(name: str = "ci") -> ExperimentScale:
    """Look up a scale preset by name."""
    if name not in _SCALES:
        raise KeyError(f"unknown scale '{name}'; valid scales: {', '.join(SCALE_NAMES)}")
    return _SCALES[name]()

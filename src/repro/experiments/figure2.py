"""Figure 2 — single-frame vs multi-frame point-cloud comparison.

The paper's Figure 2 contrasts (a) an RGB frame of a squat, (b) the
corresponding single mmWave point-cloud frame, (c) the RGB residual frame and
(d) the proposed multi-frame point cloud, arguing that fusion makes the body
shape visible again.  Without an RGB camera the reproduction focuses on the
radar half of the figure: it renders the single-frame and fused point clouds
as ASCII density maps (front view) and reports the quantitative density /
coverage statistics that the visual argument rests on.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..body.motion import MotionSynthesizer
from ..body.skeleton import JOINT_INDEX
from ..body.subjects import default_subjects
from ..body.surface import BodyScatteringModel
from ..core.fusion import FrameFusion
from ..engine.plan import BatchPlan
from ..engine.radar import BatchedRadarEngine
from ..radar.pointcloud import PointCloudFrame
from ..viz.render import RenderConfig, occupancy_grid, render_point_cloud
from ..viz.tables import format_table
from .scale import ExperimentScale, get_scale

__all__ = ["Figure2Result", "run_figure2", "format_figure2", "main"]


@dataclass
class Figure2Result:
    """The frames and statistics behind the Figure 2 comparison."""

    single_frame: PointCloudFrame
    fused_frame: PointCloudFrame
    single_points: float
    fused_points: float
    single_coverage: float
    fused_coverage: float
    upper_body_single: int
    upper_body_fused: int

    def enrichment_factor(self) -> float:
        """How many times more points the fused representation contains."""
        if self.single_points == 0:
            return float("inf")
        return self.fused_points / self.single_points


def _coverage(frame: PointCloudFrame, config: RenderConfig) -> float:
    """Fraction of render cells that contain at least one point."""
    grid = occupancy_grid(frame, config)
    return float(np.mean(grid > 0))


def _upper_body_points(frame: PointCloudFrame, shoulder_height: float) -> int:
    """Number of points above the subject's shoulder-ish height."""
    if frame.num_points == 0:
        return 0
    return int(np.sum(frame.points[:, 2] >= shoulder_height))


def run_figure2(
    scale: ExperimentScale | str = "ci",
    movement: str = "squat",
    num_context_frames: int = 1,
    frame_index: int = 25,
    seed: int = 11,
    plan: Optional[BatchPlan] = None,
) -> Figure2Result:
    """Generate the squat sequence and build the single vs fused comparison.

    The radar stage runs through the batched execution engine; pass
    ``plan=BatchPlan.reference()`` to reproduce the historical per-frame
    loop (the throughput benchmark compares the two).
    """
    scale = get_scale(scale) if isinstance(scale, str) else scale
    plan = plan if plan is not None else scale.plan
    subject = default_subjects()[0]
    rng = np.random.default_rng(seed)

    synthesizer = MotionSynthesizer(frame_rate=scale.dataset.frame_rate)
    trajectory = synthesizer.synthesize(subject, movement, duration=8.0, rng=rng)
    scattering = BodyScatteringModel(
        points_per_segment=scale.dataset.points_per_segment,
        reflectivity=subject.reflectivity,
    )
    engine = BatchedRadarEngine(plan=plan)
    pipeline = engine.make_pipeline(
        scale.dataset.radar_backend, config=scale.dataset.radar_config
    )
    sequence = engine.point_cloud_sequence(scattering, trajectory, pipeline, rng)

    frame_index = min(frame_index, len(sequence) - 1)
    fusion = FrameFusion(num_context_frames=num_context_frames)
    fused_frames = fusion.fuse_sequence(list(sequence))

    single = sequence[frame_index]
    fused = fused_frames[frame_index]
    render_config = RenderConfig()
    shoulder_height = trajectory.positions[frame_index, JOINT_INDEX["spine_shoulder"], 2]

    counts = sequence.point_counts()
    fused_counts = np.array([frame.num_points for frame in fused_frames])
    return Figure2Result(
        single_frame=single,
        fused_frame=fused,
        single_points=float(counts.mean()),
        fused_points=float(fused_counts.mean()),
        single_coverage=_coverage(single, render_config),
        fused_coverage=_coverage(fused, render_config),
        upper_body_single=_upper_body_points(single, shoulder_height),
        upper_body_fused=_upper_body_points(fused, shoulder_height),
    )


def format_figure2(result: Figure2Result) -> str:
    """Render the Figure 2 comparison as ASCII panels plus a statistics table."""
    panels = [
        render_point_cloud(result.single_frame, title="(b) single-frame point cloud"),
        "",
        render_point_cloud(result.fused_frame, title="(d) proposed multi-frame point cloud"),
        "",
        format_table(
            ["statistic", "single-frame", "multi-frame"],
            [
                ["mean points per frame", result.single_points, result.fused_points],
                ["front-view cell coverage", result.single_coverage, result.fused_coverage],
                [
                    "points above shoulder height",
                    float(result.upper_body_single),
                    float(result.upper_body_fused),
                ],
            ],
            title="Figure 2 (measured): density statistics",
        ),
        f"enrichment factor: {result.enrichment_factor():.1f}x "
        "(paper argument: the multi-frame cloud captures the upper-body shape that a single frame misses)",
    ]
    return "\n".join(panels)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.experiments.figure2``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", help="experiment scale preset (paper/ci/smoke)")
    parser.add_argument("--movement", default="squat", help="movement to visualize")
    parser.add_argument("--context", type=int, default=1, help="fusion parameter M")
    args = parser.parse_args(argv)
    result = run_figure2(args.scale, movement=args.movement, num_context_frames=args.context)
    print(format_figure2(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Figure 4 — MAE vs fine-tuning epoch when fine-tuning **only the last layer**.

Same protocol as Figure 3 but only the final fully connected layer (and its
activation) is updated online.  The paper's findings, asserted in shape by
the benchmark:

* the pattern matches Figure 3 (FUSE adapts within a few epochs, the baseline
  needs ~16 epochs and forgets the original data);
* last-layer fine-tuning adapts more slowly and to a higher error than
  all-layer fine-tuning for both models, because the frozen feature extractor
  cannot adjust to the new user's body shape.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .adaptation import AdaptationResult, run_adaptation
from .figure3 import format_figure_curves
from .scale import ExperimentScale

__all__ = ["run_figure4", "format_figure4", "main"]

#: Key values read off the paper's Figure 4.
PAPER_FIGURE4 = {
    "fuse_new_after_5_epochs": 8.3,
    "baseline_new_after_5_epochs": 9.6,
    "intersection_epoch": 16,
}


def run_figure4(
    scale: ExperimentScale | str = "ci", use_cache: bool = True, verbose: bool = False
) -> AdaptationResult:
    """Run (or reuse) the adaptation experiment that backs Figure 4."""
    return run_adaptation(scale, use_cache=use_cache, verbose=verbose)


def format_figure4(result: AdaptationResult) -> str:
    """Render the Figure 4 curves (last-layer fine-tuning)."""
    return format_figure_curves(result, scope="last", figure_name="Figure 4")


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.experiments.figure4``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", help="experiment scale preset (paper/ci/smoke)")
    args = parser.parse_args(argv)
    result = run_figure4(args.scale, verbose=True)
    print(format_figure4(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Table 2 — MAE comparison between baseline and FUSE during fine-tuning.

The paper reports, for both fine-tuning scopes (all layers / last layer
only), the MAE of the baseline and FUSE models on the original data and on
the new data after 5 epochs, at the "intersection" epoch (where the
baseline's new-data MAE first matches FUSE's) and after 50 epochs.  The
qualitative claims encoded in that table:

* FUSE reaches a low new-data MAE within ~5 epochs;
* the baseline needs several times more epochs to match it
  (26 for all layers / 16 for the last layer in the paper);
* the baseline pays for its adaptation by forgetting the original data,
  while FUSE's original-data MAE stays roughly flat.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from ..viz.tables import format_table
from .adaptation import AdaptationResult, run_adaptation
from .scale import ExperimentScale

__all__ = ["PAPER_TABLE2", "run_table2", "format_table2", "main"]

#: Paper values (cm): [scope][snapshot][model_data].
PAPER_TABLE2 = {
    "all": {
        "5 epochs": {"baseline_original": 6.4, "baseline_new": 9.0, "fuse_original": 7.6, "fuse_new": 6.0},
        "Intersection": {"baseline_original": 10.6, "baseline_new": 4.6, "fuse_original": 6.6, "fuse_new": 4.3},
        "50 epochs": {"baseline_original": 18.7, "baseline_new": 2.0, "fuse_original": 6.4, "fuse_new": 3.9},
    },
    "last": {
        "5 epochs": {"baseline_original": 6.5, "baseline_new": 9.6, "fuse_original": 9.0, "fuse_new": 8.3},
        "Intersection": {"baseline_original": 7.2, "baseline_new": 7.1, "fuse_original": 8.2, "fuse_new": 7.0},
        "50 epochs": {"baseline_original": 31.0, "baseline_new": 3.9, "fuse_original": 7.8, "fuse_new": 6.0},
    },
}

#: Intersection epochs reported in the paper.
PAPER_INTERSECTION_EPOCHS = {"all": 26, "last": 16}


def run_table2(
    scale: ExperimentScale | str = "ci", use_cache: bool = True, verbose: bool = False
) -> AdaptationResult:
    """Run (or reuse) the adaptation experiment that backs Table 2."""
    return run_adaptation(scale, use_cache=use_cache, verbose=verbose)


def format_table2(result: AdaptationResult, include_paper: bool = True) -> str:
    """Render Table 2 for both fine-tuning scopes."""
    headers = [
        "snapshot",
        "baseline original",
        "baseline new",
        "FUSE original",
        "FUSE new",
    ]
    sections: List[str] = []
    for scope, scope_label in (("all", "All layers"), ("last", "Last layer")):
        rows = [
            [
                row["snapshot"],
                row["baseline_original"],
                row["baseline_new"],
                row["fuse_original"],
                row["fuse_new"],
            ]
            for row in result.summary_rows(scope)
        ]
        sections.append(
            format_table(
                headers,
                rows,
                title=f"Table 2 (measured, scale={result.scale_name}) — fine-tune {scope_label}",
            )
        )
        speedup = result.adaptation_speedup(scope)
        if speedup is not None:
            sections.append(
                f"Adaptation speed: baseline needs ~{speedup:.1f}x more epochs than FUSE's "
                f"5-epoch budget to reach the same new-data MAE (paper: ~{PAPER_INTERSECTION_EPOCHS[scope] / 5:.1f}x)"
            )
        sections.append(
            "Forgetting after 50 epochs (original-data MAE increase): "
            f"baseline {result.forgetting(scope, 'baseline'):+.1f} cm, "
            f"FUSE {result.forgetting(scope, 'fuse'):+.1f} cm"
        )
        if include_paper:
            paper_rows = [
                [
                    snapshot,
                    values["baseline_original"],
                    values["baseline_new"],
                    values["fuse_original"],
                    values["fuse_new"],
                ]
                for snapshot, values in PAPER_TABLE2[scope].items()
            ]
            sections.append(
                format_table(headers, paper_rows, title=f"Table 2 (paper) — fine-tune {scope_label}")
            )
        sections.append("")
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point: ``python -m repro.experiments.table2``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="ci", help="experiment scale preset (paper/ci/smoke)")
    args = parser.parse_args(argv)
    result = run_table2(args.scale, verbose=True)
    print(format_table2(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``repro.experiments`` — drivers that regenerate the paper's evaluation.

The experiments layer's contract: every table and figure of Section 4 is a
pure function of an :class:`ExperimentScale` preset — no hidden state, so
``smoke`` / ``ci`` / ``paper`` runs differ only in size, and a preset
threaded with workers (:meth:`ExperimentScale.with_workers`) produces
bitwise-identical numbers while sharding the data stages over processes.

Public entry points:

* ``run_table1`` / ``run_table2`` / ``run_figure2`` / ``run_figure3`` /
  ``run_figure4`` with their ``format_*`` twins — one pair per artefact of
  the paper;
* :func:`run_adaptation` — the shared fine-tuning curve runner behind
  Table 2 and Figures 3/4;
* :func:`get_scale` / :data:`SCALE_NAMES` — the scale presets;
* :mod:`repro.experiments.cli` — the ``fuse-experiment`` console script,
  which also hosts the ``fuse-serve`` serving front-end launcher.
"""

from .adaptation import AdaptationResult, ModelCurves, run_adaptation
from .figure2 import Figure2Result, format_figure2, run_figure2
from .figure3 import format_figure3, run_figure3
from .figure4 import format_figure4, run_figure4
from .scale import SCALE_NAMES, ExperimentScale, get_scale
from .table1 import Table1Result, Table1Row, format_table1, run_table1
from .table2 import format_table2, run_table2

__all__ = [
    "ExperimentScale",
    "get_scale",
    "SCALE_NAMES",
    "run_table1",
    "format_table1",
    "Table1Result",
    "Table1Row",
    "run_table2",
    "format_table2",
    "run_adaptation",
    "AdaptationResult",
    "ModelCurves",
    "run_figure2",
    "format_figure2",
    "Figure2Result",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
]

"""``repro.experiments`` — drivers that regenerate the paper's evaluation.

One module per table/figure of Section 4 plus the shared adaptation runner,
the scale presets and a unified CLI (``fuse-experiment``).
"""

from .adaptation import AdaptationResult, ModelCurves, run_adaptation
from .figure2 import Figure2Result, format_figure2, run_figure2
from .figure3 import format_figure3, run_figure3
from .figure4 import format_figure4, run_figure4
from .scale import SCALE_NAMES, ExperimentScale, get_scale
from .table1 import Table1Result, Table1Row, format_table1, run_table1
from .table2 import format_table2, run_table2

__all__ = [
    "ExperimentScale",
    "get_scale",
    "SCALE_NAMES",
    "run_table1",
    "format_table1",
    "Table1Result",
    "Table1Row",
    "run_table2",
    "format_table2",
    "run_adaptation",
    "AdaptationResult",
    "ModelCurves",
    "run_figure2",
    "format_figure2",
    "Figure2Result",
    "run_figure3",
    "format_figure3",
    "run_figure4",
    "format_figure4",
]

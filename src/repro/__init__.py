"""FUSE — Fast and Scalable Human Pose Estimation using mmWave Point Cloud.

A from-scratch reproduction of the DAC 2022 paper by An & Ogras, including
every substrate it depends on:

* :mod:`repro.nn` — NumPy neural-network framework (autograd, CNN layers,
  Adam, L1 loss),
* :mod:`repro.radar` — FMCW mmWave radar simulator (TI IWR1443-like) and
  point-cloud generation,
* :mod:`repro.body` — 19-joint kinematic body model with the ten MARS
  rehabilitation movements,
* :mod:`repro.dataset` — synthetic MARS-like dataset generation, splits and
  feature maps,
* :mod:`repro.core` — the FUSE framework itself: multi-frame fusion,
  meta-learning, fine-tuning, evaluation,
* :mod:`repro.runtime` — the shared execution-policy layer
  (:class:`repro.runtime.ExecutionPlan`): worker pools, shard layout,
  deterministic per-shard seeding and result merging, consulted by every
  compute layer,
* :mod:`repro.engine` — the vectorized batched execution engine
  (:class:`repro.engine.BatchPlan`, a façade over the runtime plan) driving
  the radar, feature and meta-learning hot paths,
* :mod:`repro.serve` — the streaming multi-user serving layer
  (:class:`repro.serve.PoseServer` / :class:`repro.serve.ShardedPoseServer`
  / :class:`repro.serve.ProcessShardedPoseServer`): per-user sessions,
  cross-user micro-batching, per-user adaptation at scale, multi-shard
  placement in one process or one worker process per shard, and the asyncio
  socket front-end (:class:`repro.serve.PoseFrontend`),
* :mod:`repro.viz` — point-cloud rendering and result tables,
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation section, plus the ``fuse-experiment`` /
  ``fuse-serve`` command-line interfaces.

``docs/architecture.md`` walks the layer diagram and the data flow between
these packages.
"""

from . import body, core, dataset, engine, nn, radar, runtime, serve

__version__ = "0.5.0"

__all__ = [
    "nn",
    "radar",
    "body",
    "dataset",
    "core",
    "engine",
    "runtime",
    "serve",
    "__version__",
]

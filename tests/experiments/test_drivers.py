"""End-to-end smoke tests for the experiment drivers (smoke scale).

These do not validate the paper's quantitative claims — that is the
benchmark harness's job at CI scale — they verify that every driver runs end
to end, produces well-formed results and renders its report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import adaptation, figure2, figure3, figure4, table1, table2
from repro.experiments.scale import get_scale


@pytest.fixture(scope="module")
def smoke_scale():
    return get_scale("smoke")


@pytest.fixture(scope="module")
def smoke_adaptation(smoke_scale):
    adaptation.clear_cache()
    return adaptation.run_adaptation(smoke_scale)


class TestTable1Driver:
    @pytest.fixture(scope="class")
    def result(self, smoke_scale):
        return table1.run_table1(smoke_scale)

    def test_rows_cover_requested_settings(self, result, smoke_scale):
        assert [row.num_context_frames for row in result.rows] == list(smoke_scale.fusion_settings)

    def test_mae_values_positive_and_finite(self, result):
        for row in result.rows:
            for value in (row.mae_x, row.mae_y, row.mae_z, row.mae_average):
                assert np.isfinite(value) and value > 0

    def test_average_consistent_with_axes(self, result):
        for row in result.rows:
            assert row.mae_average == pytest.approx(
                np.mean([row.mae_x, row.mae_y, row.mae_z]), abs=1e-6
            )

    def test_row_lookup_and_improvement(self, result):
        assert result.row_for(0).setting == "single-frame"
        assert result.improvement_percent() is not None

    def test_format_contains_measured_and_paper_tables(self, result):
        text = table1.format_table1(result)
        assert "Table 1 (measured" in text
        assert "Table 1 (paper)" in text
        assert "single-frame" in text


class TestAdaptationDriver:
    def test_both_scopes_and_models_present(self, smoke_adaptation):
        assert set(smoke_adaptation.curves) == {"all", "last"}
        for scope in ("all", "last"):
            assert set(smoke_adaptation.curves[scope]) == {"baseline", "fuse"}

    def test_curve_lengths_match_epochs(self, smoke_adaptation, smoke_scale):
        curves = smoke_adaptation.model_curves("all", "baseline")
        assert len(curves.new_curve()) == smoke_scale.finetune_all.epochs + 1
        assert len(curves.original_curve()) == smoke_scale.finetune_all.epochs + 1

    def test_summary_rows_structure(self, smoke_adaptation):
        rows = smoke_adaptation.summary_rows("all", snapshot_epochs=(1, 3))
        assert [row["snapshot"] for row in rows] == ["1 epochs", "Intersection", "3 epochs"]
        for row in rows:
            for key in ("baseline_original", "baseline_new", "fuse_original", "fuse_new"):
                assert np.isfinite(row[key])

    def test_forgetting_statistic_finite(self, smoke_adaptation):
        assert np.isfinite(smoke_adaptation.forgetting("all", "baseline"))
        assert np.isfinite(smoke_adaptation.forgetting("all", "fuse"))

    def test_cache_returns_same_object(self, smoke_adaptation, smoke_scale):
        again = adaptation.run_adaptation(smoke_scale)
        assert again is smoke_adaptation

    def test_table2_formatting(self, smoke_adaptation):
        text = table2.format_table2(smoke_adaptation)
        assert "Table 2 (measured" in text
        assert "All layers" in text and "Last layer" in text

    def test_figure3_formatting(self, smoke_adaptation):
        text = figure3.format_figure3(smoke_adaptation)
        assert "Figure 3" in text
        assert "original data" in text and "new data" in text

    def test_figure4_formatting(self, smoke_adaptation):
        text = figure4.format_figure4(smoke_adaptation)
        assert "Figure 4" in text
        assert "scope='last'" in text


class TestFigure2Driver:
    @pytest.fixture(scope="class")
    def result(self, smoke_scale):
        return figure2.run_figure2(smoke_scale, frame_index=10)

    def test_fused_frame_denser_than_single(self, result):
        assert result.fused_points > 1.5 * result.single_points
        assert result.fused_coverage >= result.single_coverage
        assert result.enrichment_factor() > 1.5

    def test_upper_body_coverage_improves(self, result):
        assert result.upper_body_fused >= result.upper_body_single

    def test_formatting(self, result):
        text = figure2.format_figure2(result)
        assert "single-frame point cloud" in text
        assert "multi-frame point cloud" in text
        assert "enrichment factor" in text

"""Tests for experiment scale presets."""

from __future__ import annotations

import pytest

from repro.experiments.scale import SCALE_NAMES, ExperimentScale, get_scale


class TestScalePresets:
    def test_all_presets_constructible(self):
        for name in SCALE_NAMES:
            scale = get_scale(name)
            assert isinstance(scale, ExperimentScale)
            assert scale.name == name

    def test_paper_scale_matches_section_41(self):
        scale = get_scale("paper")
        assert scale.dataset.expected_frames == 40_000
        assert scale.training.epochs == 150
        assert scale.training.batch_size == 128
        assert scale.meta.meta_iterations == 20_000
        assert scale.meta.tasks_per_batch == 32
        assert scale.finetune_frames == 200

    def test_ci_scale_is_much_smaller_than_paper(self):
        paper, ci = get_scale("paper"), get_scale("ci")
        assert ci.dataset.expected_frames < paper.dataset.expected_frames / 5
        assert ci.meta.meta_iterations < paper.meta.meta_iterations / 50

    def test_smoke_scale_is_tiny(self):
        smoke = get_scale("smoke")
        assert smoke.dataset.expected_frames < 300
        assert smoke.training.epochs <= 5

    def test_fusion_settings_cover_table1(self):
        assert get_scale("ci").fusion_settings == (0, 1, 2)

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("enormous")

    def test_with_overrides(self):
        scale = get_scale("smoke").with_overrides(finetune_frames=5)
        assert scale.finetune_frames == 5
        assert scale.name == "smoke"

    def test_default_is_ci(self):
        assert get_scale().name == "ci"

"""Tests for the ``fuse-experiment`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import cli


class TestCli:
    def test_figure2_smoke(self, capsys):
        exit_code = cli.main(["figure2", "--scale", "smoke"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "figure2" in captured
        assert "multi-frame point cloud" in captured

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table9"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure2", "--scale", "galactic"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["--help"])
        text = capsys.readouterr().out
        for name in ("table1", "table2", "figure2", "figure3", "figure4"):
            assert name in text


class TestServeCli:
    """Argument wiring of fuse-serve (fail-fast paths: no training runs)."""

    def test_serve_help_lists_protocol_flags(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fuse-serve", "--help"])
        text = capsys.readouterr().out
        assert "--max-in-flight" in text
        assert "--protocol" in text
        assert "--port" in text

    def test_invalid_shards_fails_fast(self, capsys):
        assert cli.main(["fuse-serve", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_invalid_window_fails_fast(self, capsys):
        assert cli.main(["fuse-serve", "--max-in-flight", "0"]) == 2
        assert "--max-in-flight" in capsys.readouterr().err

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fuse-serve", "--protocol", "3"])

    def test_unix_and_host_mutually_exclusive(self, capsys):
        exit_code = cli.main(["fuse-serve", "--unix", "/tmp/x.sock", "--host", "::1"])
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

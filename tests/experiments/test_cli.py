"""Tests for the ``fuse-experiment`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments import cli


class TestCli:
    def test_figure2_smoke(self, capsys):
        exit_code = cli.main(["figure2", "--scale", "smoke"])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "figure2" in captured
        assert "multi-frame point cloud" in captured

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table9"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure2", "--scale", "galactic"])

    def test_help_lists_experiments(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["--help"])
        text = capsys.readouterr().out
        for name in ("table1", "table2", "figure2", "figure3", "figure4"):
            assert name in text

"""Numerical equivalence of the batched engine and the per-frame/per-task paths.

The batched execution engine reorganizes the computation — it must not
change the answers.  These tests pin every vectorized stage to its reference
twin: the deterministic stages (signal chain, feature maps, meta-learning,
fine-tuning) must agree within floating-point reduction tolerance, and the
stochastic geometric backend must agree in distribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import MotionSynthesizer
from repro.body.subjects import default_subjects
from repro.body.surface import BodyScatteringModel
from repro.core.finetune import FineTuneConfig, FineTuner, finetune_population
from repro.core.maml import MetaLearningConfig, MetaTrainer
from repro.core.models import PoseCNN
from repro.dataset.features import FeatureMapBuilder
from repro.dataset.loader import ArrayDataset
from repro.dataset.synthetic import SyntheticDatasetConfig, SyntheticDatasetGenerator
from repro.engine import BatchPlan, BatchedRadarEngine
from repro.radar import (
    GeometricPipeline,
    RadarConfig,
    SceneBatch,
    SignalChainPipeline,
    ca_cfar_2d,
    ca_cfar_2d_batch,
    range_doppler_processing,
    range_doppler_processing_batch,
    scene_batch_from_world,
)
from repro.radar.pointcloud import PointCloudFrame
from repro.radar.signal_chain import RadarDataCube


@pytest.fixture(scope="module")
def radar_config() -> RadarConfig:
    return RadarConfig.low_resolution()


@pytest.fixture(scope="module")
def world_batch(radar_config):
    """Random world-frame scatterer arrays for a small frame batch."""
    rng = np.random.default_rng(7)
    frames, slots = 5, 40
    positions = rng.uniform([-1.0, 1.2, 0.0], [1.0, 3.8, 2.1], size=(frames, slots, 3))
    velocities = rng.normal(0.0, 0.6, size=(frames, slots, 3))
    rcs = rng.uniform(0.05, 3.0, size=(frames, slots))
    return scene_batch_from_world(positions, velocities, rcs, radar_config)


class TestSignalChainEquivalence:
    def test_batched_pipeline_matches_per_frame(self, radar_config, world_batch):
        """Noise-free batched signal chain == per-frame, point for point."""
        rng = np.random.default_rng(0)
        pipeline = SignalChainPipeline(config=radar_config, add_noise=False)
        sequential = [
            pipeline.process_scene(world_batch.scene(i), rng)
            for i in range(len(world_batch))
        ]
        batched = pipeline.process_batch(world_batch, rng).to_frames()
        assert len(sequential) == len(batched)
        for frame_seq, frame_bat in zip(sequential, batched):
            assert frame_seq.points.shape == frame_bat.points.shape
            np.testing.assert_allclose(frame_seq.points, frame_bat.points, atol=1e-8)

    def test_range_doppler_batch_matches_per_frame(self, radar_config, world_batch):
        rng = np.random.default_rng(1)
        from repro.radar import synthesize_data_cube_batch

        cubes = synthesize_data_cube_batch(
            world_batch, radar_config, rng=rng, add_noise=True
        )
        spectra, power = range_doppler_processing_batch(cubes, radar_config)
        for index in range(len(world_batch)):
            reference = range_doppler_processing(
                RadarDataCube(samples=cubes[index], config=radar_config)
            )
            np.testing.assert_allclose(spectra[index], reference.spectrum, atol=1e-9)
            np.testing.assert_allclose(power[index], reference.power, atol=1e-9)

    def test_cfar_batch_matches_per_frame(self, rng):
        power = rng.gamma(1.0, 1.0, size=(4, 32, 24))
        power[1, 10, 12] = 400.0
        power[3, 5, 3] = 250.0
        batched = ca_cfar_2d_batch(power)
        for index in range(power.shape[0]):
            np.testing.assert_array_equal(batched[index], ca_cfar_2d(power[index]))


class TestGeometricBatch:
    def test_batch_statistics_match_sequential(self, radar_config):
        """Batched geometric generation matches the per-frame path in distribution."""
        subject = default_subjects()[0]
        scattering = BodyScatteringModel(points_per_segment=5)
        synthesizer = MotionSynthesizer(frame_rate=10.0)
        trajectory = synthesizer.synthesize(
            subject, "squat", duration=12.0, rng=np.random.default_rng(3)
        )
        pipeline = GeometricPipeline(config=radar_config)
        engine_vec = BatchedRadarEngine(plan=BatchPlan(batch_size=32))
        engine_ref = BatchedRadarEngine(plan=BatchPlan.reference())

        vec = engine_vec.point_cloud_sequence(
            scattering, trajectory, pipeline, np.random.default_rng(5)
        )
        ref = engine_ref.point_cloud_sequence(
            scattering, trajectory, pipeline, np.random.default_rng(5)
        )
        assert len(vec) == len(ref) == trajectory.num_frames
        mean_vec = vec.mean_points_per_frame()
        mean_ref = ref.mean_points_per_frame()
        assert mean_vec > 0 and mean_ref > 0
        # Same detection model, different draw order: sparsity within 25%.
        assert abs(mean_vec - mean_ref) / mean_ref < 0.25

    def test_batch_deterministic_given_seed(self, radar_config, world_batch):
        pipeline = GeometricPipeline(config=radar_config)
        first = pipeline.process_batch(world_batch, np.random.default_rng(11))
        second = pipeline.process_batch(world_batch, np.random.default_rng(11))
        np.testing.assert_array_equal(first.points, second.points)
        np.testing.assert_array_equal(first.offsets, second.offsets)


class TestFeatureBatchEquivalence:
    @pytest.fixture(scope="class")
    def ragged_frames(self):
        rng = np.random.default_rng(13)
        frames = []
        for _ in range(23):
            count = int(rng.integers(0, 110))
            points = np.column_stack(
                [
                    rng.uniform(-1.3, 1.3, count),
                    rng.uniform(0.4, 4.6, count),
                    rng.uniform(-0.1, 2.3, count),
                    rng.normal(0.0, 1.0, count),
                    rng.uniform(-8.0, 38.0, count),
                ]
            ) if count else np.zeros((0, 5))
            frames.append(PointCloudFrame(points))
        return frames

    @pytest.mark.parametrize(
        "layout,sort_axis",
        [
            ("projection", "spatial"),
            ("sorted", "spatial"),
            ("sorted", "intensity"),
            ("sorted", "none"),
        ],
    )
    def test_vectorized_matches_reference(self, ragged_frames, layout, sort_axis):
        builder = FeatureMapBuilder(layout=layout, sort_axis=sort_axis)
        vectorized = builder.build_batch(ragged_frames)
        reference = builder.build_batch(ragged_frames, vectorized=False)
        np.testing.assert_allclose(vectorized, reference, atol=1e-10)

    def test_vectorized_matches_per_frame_build(self, ragged_frames):
        builder = FeatureMapBuilder()
        vectorized = builder.build_batch(ragged_frames)
        for index, frame in enumerate(ragged_frames):
            np.testing.assert_allclose(vectorized[index], builder.build(frame), atol=1e-10)

    def test_empty_batch(self):
        builder = FeatureMapBuilder()
        assert builder.build_batch([]).shape == (0, 5, 8, 8)


class TestDatasetGenerationPaths:
    def test_vectorized_dataset_same_shape_and_sparsity(self):
        config = SyntheticDatasetConfig(
            subject_ids=(1,),
            movement_names=("squat",),
            seconds_per_pair=6.0,
            seed=123,
        )
        generator = SyntheticDatasetGenerator(config)
        sequential = generator.generate(vectorized=False)
        vectorized = generator.generate(vectorized=True)
        assert len(sequential) == len(vectorized) == config.expected_frames
        mean_seq = np.mean([s.cloud.num_points for s in sequential])
        mean_vec = np.mean([s.cloud.num_points for s in vectorized])
        assert mean_seq > 0 and mean_vec > 0
        assert abs(mean_vec - mean_seq) / mean_seq < 0.25
        # Labels are RNG-order independent up to the motion synthesis, which
        # both paths share draw-for-draw.
        np.testing.assert_allclose(sequential[0].joints, vectorized[0].joints)


class TestMetaLearningEquivalence:
    @pytest.fixture(scope="class")
    def array_data(self):
        rng = np.random.default_rng(21)
        return ArrayDataset(rng.normal(size=(256, 5, 8, 8)), rng.normal(size=(256, 57)))

    @pytest.mark.parametrize("algorithm", ["fomaml", "reptile"])
    def test_batched_meta_training_matches_sequential(self, array_data, algorithm):
        config = MetaLearningConfig(
            meta_iterations=4,
            tasks_per_batch=3,
            support_size=24,
            query_size=24,
            inner_steps=2,
            algorithm=algorithm,
        )
        sequential_model = PoseCNN(seed=2)
        batched_model = PoseCNN(seed=2)
        history_seq = MetaTrainer(
            sequential_model, config, plan=BatchPlan.reference()
        ).meta_train(array_data)
        history_bat = MetaTrainer(batched_model, config, plan=BatchPlan()).meta_train(
            array_data
        )
        for p_seq, p_bat in zip(sequential_model.parameters(), batched_model.parameters()):
            np.testing.assert_allclose(p_seq.data, p_bat.data, atol=1e-8)
        np.testing.assert_allclose(history_seq.query_loss, history_bat.query_loss, atol=1e-8)
        np.testing.assert_allclose(
            history_seq.support_loss, history_bat.support_loss, atol=1e-8
        )


class TestFineTunePopulation:
    def test_population_matches_sequential_finetuner(self):
        def make_dataset(count, seed):
            rng = np.random.default_rng(seed)
            return ArrayDataset(rng.normal(size=(count, 5, 8, 8)), rng.normal(size=(count, 57)))

        models = [PoseCNN(seed=s) for s in (0, 1)]
        adaptation = [make_dataset(48, 100 + s) for s in range(2)]
        evaluations = [
            {"new": make_dataset(32, 200 + s), "original": make_dataset(32, 300 + s)}
            for s in range(2)
        ]
        config = FineTuneConfig(epochs=4, scope="all", optimizer="sgd", batch_size=16)

        reference_models = [model.clone() for model in models]
        reference = [
            FineTuner(model, config).finetune(data, evaluation_sets=evals)
            for model, data, evals in zip(reference_models, adaptation, evaluations)
        ]
        population = finetune_population(
            models, adaptation, evaluation_sets=evaluations, config=config
        )
        for model_ref, model_pop in zip(reference_models, models):
            for p_ref, p_pop in zip(model_ref.parameters(), model_pop.parameters()):
                np.testing.assert_allclose(p_ref.data, p_pop.data, atol=1e-8)
        for result_ref, result_pop in zip(reference, population):
            np.testing.assert_allclose(
                result_ref.train_loss, result_pop.train_loss, atol=1e-8
            )
            for name in result_ref.curves:
                np.testing.assert_allclose(
                    result_ref.curves[name], result_pop.curves[name], atol=1e-6
                )

    def test_population_rejects_mismatched_inputs(self):
        rng = np.random.default_rng(0)
        data = ArrayDataset(rng.normal(size=(16, 5, 8, 8)), rng.normal(size=(16, 57)))
        with pytest.raises(ValueError):
            finetune_population([PoseCNN(seed=0)], [])
        with pytest.raises(ValueError):
            finetune_population(
                [PoseCNN(seed=0)], [data], config=FineTuneConfig(scope="last")
            )
        with pytest.raises(ValueError):
            finetune_population(
                [PoseCNN(seed=0)], [data], config=FineTuneConfig(optimizer="adam")
            )


class TestSceneBatchInterop:
    def test_round_trip_through_scenes(self, world_batch):
        scenes = world_batch.scenes()
        packed = SceneBatch.from_scenes(scenes)
        for index, scene in enumerate(scenes):
            count = len(scene)
            np.testing.assert_allclose(
                packed.positions[index, :count], scene.positions()
            )
            assert packed.valid[index, :count].all()
            assert not packed.valid[index, count:].any()

    def test_fov_mask_matches_scene_filter(self, radar_config, world_batch):
        mask = world_batch.fov_mask(radar_config)
        for index in range(len(world_batch)):
            filtered = world_batch.scene(index).within_field_of_view(radar_config)
            assert mask[index].sum() == len(filtered)

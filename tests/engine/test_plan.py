"""Validation tests of the :class:`repro.engine.BatchPlan`."""

from __future__ import annotations

import pytest

from repro.engine import BatchPlan


def test_default_plan_is_vectorized_with_cache():
    plan = BatchPlan()
    assert plan.vectorized
    assert plan.batch_size >= 1
    assert plan.cache_policy == "memory"
    assert plan.backend is None


def test_reference_plan_disables_vectorization_and_cache():
    plan = BatchPlan.reference()
    assert not plan.vectorized
    assert plan.cache_policy == "none"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"batch_size": 0},
        {"cache_policy": "disk"},
        {"cache_capacity": 0},
        {"backend": "quantum"},
    ],
)
def test_invalid_plans_rejected(kwargs):
    with pytest.raises(ValueError):
        BatchPlan(**kwargs)


def test_plan_is_hashable_and_frozen():
    plan = BatchPlan()
    assert hash(plan) == hash(BatchPlan())
    with pytest.raises(AttributeError):
        plan.batch_size = 2

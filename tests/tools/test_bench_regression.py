"""Tests of the CI benchmark-trending script (``scripts/bench_regression.py``)."""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parents[2] / "scripts" / "bench_regression.py"

spec = importlib.util.spec_from_file_location("bench_regression", _SCRIPT)
bench_regression = importlib.util.module_from_spec(spec)
# Register before executing: the script's dataclasses resolve their module
# through sys.modules at class-creation time.
sys.modules[spec.name] = bench_regression
spec.loader.exec_module(bench_regression)


class TestThroughputFigures:
    def test_extracts_only_throughput_keys(self):
        payload = {
            "radar": {"batched_fps": 100.0, "frames": 300, "speedup": 4.0},
            "meta": {"sequential_tps": 2.0, "note": "text"},
            "serve": {"throughput_fps": 9.0},
        }
        figures = bench_regression.throughput_figures(payload)
        assert figures == {
            "radar.batched_fps": 100.0,
            "meta.sequential_tps": 2.0,
            "serve.throughput_fps": 9.0,
        }

    def test_handles_lists(self):
        payload = {"runs": [{"fps": 10.0}, {"fps": 20.0}]}
        figures = bench_regression.throughput_figures(payload)
        assert figures == {"runs[0].fps": 10.0, "runs[1].fps": 20.0}


class TestCompare:
    def test_within_threshold_passes(self):
        baseline = {"bench": {"batched_fps": 100.0}}
        fresh = {"bench": {"batched_fps": 75.0}}
        assert bench_regression.compare(baseline, fresh, threshold=0.30) == []

    def test_beyond_threshold_fails(self):
        baseline = {"bench": {"batched_fps": 100.0}}
        fresh = {"bench": {"batched_fps": 60.0}}
        regressions = bench_regression.compare(baseline, fresh, threshold=0.30)
        assert len(regressions) == 1
        assert regressions[0].path == "bench.batched_fps"
        assert regressions[0].drop == pytest.approx(0.40)

    def test_improvements_and_new_figures_pass(self):
        baseline = {"bench": {"batched_fps": 100.0}}
        fresh = {"bench": {"batched_fps": 500.0}, "extra": {"fps": 1.0}}
        assert bench_regression.compare(baseline, fresh, threshold=0.30) == []

    def test_removed_figures_do_not_crash(self):
        baseline = {"bench": {"batched_fps": 100.0}}
        assert bench_regression.compare(baseline, {}, threshold=0.30) == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            bench_regression.compare({}, {}, threshold=1.5)


class TestMissingFromFresh:
    def test_missing_section_reported_readably(self):
        baseline = {"serving": {"batched_fps": 10.0}, "radar": {"fps": 5.0}}
        fresh = {"radar": {"fps": 5.0}}
        problems = bench_regression.missing_from_fresh(baseline, fresh)
        assert len(problems) == 1
        assert "section 'serving'" in problems[0]
        assert "missing from the current run" in problems[0]

    def test_missing_figure_inside_surviving_section_reported(self):
        baseline = {"serving": {"batched_fps": 10.0, "sharded_fps": 20.0}}
        fresh = {"serving": {"batched_fps": 10.0}}
        problems = bench_regression.missing_from_fresh(baseline, fresh)
        assert problems == [
            "throughput figure 'serving.sharded_fps' exists in the baseline "
            "but is missing from the current run"
        ]

    def test_missing_section_not_double_reported_per_figure(self):
        baseline = {"serving": {"batched_fps": 10.0, "sharded_fps": 20.0}}
        problems = bench_regression.missing_from_fresh(baseline, {})
        assert len(problems) == 1

    def test_identical_payloads_report_nothing(self):
        payload = {"serving": {"batched_fps": 10.0}, "note": "text"}
        assert bench_regression.missing_from_fresh(payload, dict(payload)) == []

    def test_new_fresh_sections_are_fine(self):
        baseline = {"serving": {"batched_fps": 10.0}}
        fresh = {"serving": {"batched_fps": 10.0}, "frontend": {"fps": 1.0}}
        assert bench_regression.missing_from_fresh(baseline, fresh) == []


class TestMain:
    def test_missing_baseline_section_fails_with_readable_error(
        self, tmp_path, capsys
    ):
        """A section in the committed baseline but not in the fresh run must
        fail the gate with a message, not blow up with a KeyError."""
        repo = tmp_path / "repo"
        repo.mkdir()

        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=repo,
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                    "HOME": str(tmp_path),
                },
            )

        bench = repo / "BENCH_x.json"
        bench.write_text(
            json.dumps({"serving": {"batched_fps": 100.0}, "radar": {"fps": 5.0}})
        )
        git("init", "-q")
        git("add", "BENCH_x.json")
        git("commit", "-qm", "baseline")

        import os

        cwd = os.getcwd()
        os.chdir(repo)
        try:
            bench.write_text(json.dumps({"radar": {"fps": 5.0}}))
            assert bench_regression.main(["BENCH_x.json"]) == 1
        finally:
            os.chdir(cwd)
        captured = capsys.readouterr()
        assert "section 'serving'" in captured.err
        assert "missing from the current run" in captured.err
    def test_end_to_end_against_git_baseline(self, tmp_path):
        """Full run inside a scratch git repository."""
        repo = tmp_path / "repo"
        repo.mkdir()

        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=repo,
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                    "HOME": str(tmp_path),
                },
            )

        bench = repo / "BENCH_x.json"
        bench.write_text(json.dumps({"bench": {"batched_fps": 100.0}}))
        git("init", "-q")
        git("add", "BENCH_x.json")
        git("commit", "-qm", "baseline")

        import os

        cwd = os.getcwd()
        os.chdir(repo)
        try:
            bench.write_text(json.dumps({"bench": {"batched_fps": 90.0}}))
            assert bench_regression.main(["BENCH_x.json"]) == 0
            bench.write_text(json.dumps({"bench": {"batched_fps": 10.0}}))
            assert bench_regression.main(["BENCH_x.json"]) == 1
        finally:
            os.chdir(cwd)

    def test_missing_fresh_file_is_skipped(self, tmp_path, capsys):
        import os

        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            assert bench_regression.main(["BENCH_missing.json"]) == 0
        finally:
            os.chdir(cwd)
        assert "missing" in capsys.readouterr().out


class TestHistory:
    def test_history_baseline_is_per_figure_median(self):
        snapshots = [
            {"bench": {"batched_fps": 100.0}},
            {"bench": {"batched_fps": 300.0}},
            {"bench": {"batched_fps": 200.0, "other_fps": 50.0}},
        ]
        baseline = bench_regression.history_baseline(snapshots)
        assert baseline["bench.batched_fps"] == 200.0
        assert baseline["bench.other_fps"] == 50.0

    def test_history_baseline_even_window_averages_the_middle(self):
        snapshots = [
            {"bench": {"batched_fps": 100.0}},
            {"bench": {"batched_fps": 200.0}},
        ]
        baseline = bench_regression.history_baseline(snapshots)
        assert baseline["bench.batched_fps"] == 150.0

    def test_append_and_prune_rolling_window(self, tmp_path):
        for run in range(5):
            bench_regression.append_history(
                tmp_path,
                "BENCH_x.json",
                {"bench": {"batched_fps": float(run)}},
                run_id=f"run-{run:03d}",
                window=3,
            )
        directory = bench_regression.history_dir_for(tmp_path, "BENCH_x.json")
        names = sorted(p.name for p in directory.glob("*.json"))
        assert names == ["run-002.json", "run-003.json", "run-004.json"]
        snapshots = bench_regression.load_history(tmp_path, "BENCH_x.json")
        assert [s["bench"]["batched_fps"] for s in snapshots] == [2.0, 3.0, 4.0]

    def test_torn_snapshot_is_ignored(self, tmp_path):
        bench_regression.append_history(
            tmp_path, "BENCH_x.json", {"bench": {"fps": 1.0}}, run_id="a", window=5
        )
        directory = bench_regression.history_dir_for(tmp_path, "BENCH_x.json")
        (directory / "b.json").write_text("{ torn")
        assert len(bench_regression.load_history(tmp_path, "BENCH_x.json")) == 1

    def test_invalid_window(self, tmp_path):
        with pytest.raises(ValueError):
            bench_regression.append_history(tmp_path, "BENCH_x.json", {}, "a", window=0)

    def test_main_trends_against_history_median(self, tmp_path):
        """No git baseline: only the history window gates the run."""
        import os

        history = tmp_path / "history"
        for run, fps in enumerate([100.0, 110.0, 120.0]):
            bench_regression.append_history(
                history,
                "BENCH_y.json",
                {"bench": {"batched_fps": fps}},
                run_id=f"run-{run:03d}",
                window=10,
            )
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            fresh = tmp_path / "BENCH_y.json"
            fresh.write_text(json.dumps({"bench": {"batched_fps": 95.0}}))
            assert (
                bench_regression.main(
                    ["--history", str(history), "--run-id", "run-100", "BENCH_y.json"]
                )
                == 0
            )
            fresh.write_text(json.dumps({"bench": {"batched_fps": 10.0}}))
            assert (
                bench_regression.main(
                    ["--history", str(history), "--run-id", "run-101", "BENCH_y.json"]
                )
                == 1
            )
        finally:
            os.chdir(cwd)
        # Both runs were appended to the window regardless of pass/fail; the
        # snapshot names carry a chronological timestamp prefix plus the id.
        names = sorted(
            p.name
            for p in bench_regression.history_dir_for(history, "BENCH_y.json").glob("*.json")
        )
        assert any(name.endswith("-run-100.json") for name in names)
        assert any(name.endswith("-run-101.json") for name in names)

    def test_default_run_id_is_sortable_timestamp(self):
        run_id = bench_regression.default_run_id()
        assert len(run_id) == 16 and run_id.endswith("Z")


class TestContextGuard:
    """Sections measured under different cpu_count/backend are never compared."""

    def test_matching_context_stays_comparable(self):
        baseline = {"bench": {"batched_fps": 100.0, "cpu_count": 4, "backend": "fast"}}
        fresh = {"bench": {"batched_fps": 10.0, "cpu_count": 4, "backend": "fast"}}
        pruned_baseline, pruned_fresh, notices = bench_regression.split_comparable(
            baseline, fresh
        )
        assert notices == []
        assert len(bench_regression.compare(pruned_baseline, pruned_fresh, 0.3)) == 1

    def test_cpu_count_mismatch_prunes_the_section(self):
        baseline = {"bench": {"batched_fps": 100.0, "cpu_count": 1}}
        fresh = {"bench": {"batched_fps": 10.0, "cpu_count": 4}}
        pruned_baseline, pruned_fresh, notices = bench_regression.split_comparable(
            baseline, fresh
        )
        assert "bench" not in pruned_baseline and "bench" not in pruned_fresh
        assert len(notices) == 1
        assert "cpu_count: 1 -> 4" in notices[0]
        assert bench_regression.compare(pruned_baseline, pruned_fresh, 0.3) == []

    def test_backend_mismatch_prunes_the_section(self):
        baseline = {"bench": {"fps": 100.0, "cpu_count": 4, "backend": "reference"}}
        fresh = {"bench": {"fps": 10.0, "cpu_count": 4, "backend": "fast"}}
        _, _, notices = bench_regression.split_comparable(baseline, fresh)
        assert len(notices) == 1
        assert "backend: reference -> fast" in notices[0]

    def test_context_appearing_on_one_side_only_prunes(self):
        """A section that gained a backend field was re-measured differently."""
        baseline = {"bench": {"fps": 100.0, "cpu_count": 2}}
        fresh = {"bench": {"fps": 10.0, "cpu_count": 2, "backend": "fast"}}
        pruned_baseline, _, notices = bench_regression.split_comparable(baseline, fresh)
        assert "bench" not in pruned_baseline
        assert "backend: ? -> fast" in notices[0]

    def test_contextless_sections_always_compare(self):
        baseline = {"bench": {"fps": 100.0}}
        fresh = {"bench": {"fps": 10.0}}
        _, _, notices = bench_regression.split_comparable(baseline, fresh)
        assert notices == []

    def test_pruned_section_is_not_reported_missing(self):
        baseline = {
            "bench": {"fps": 100.0, "cpu_count": 1},
            "other": {"fps": 5.0},
        }
        fresh = {
            "bench": {"fps": 10.0, "cpu_count": 4},
            "other": {"fps": 5.0},
        }
        pruned_baseline, pruned_fresh, _ = bench_regression.split_comparable(
            baseline, fresh
        )
        assert bench_regression.missing_from_fresh(pruned_baseline, pruned_fresh) == []

    def test_sections_missing_entirely_are_left_for_the_missing_check(self):
        baseline = {"bench": {"fps": 100.0, "cpu_count": 1}}
        pruned_baseline, _, notices = bench_regression.split_comparable(baseline, {})
        assert notices == [] and "bench" in pruned_baseline

    def test_main_refuses_cross_context_comparison(self, tmp_path, capsys):
        """End to end: a 4-core run never gates against a 1-core baseline."""
        repo = tmp_path / "repo"
        repo.mkdir()

        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=repo,
                check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t",
                    "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t",
                    "GIT_COMMITTER_EMAIL": "t@t",
                    "PATH": "/usr/bin:/bin:/usr/local/bin",
                    "HOME": str(tmp_path),
                },
            )

        bench = repo / "BENCH_x.json"
        bench.write_text(
            json.dumps({"bench": {"batched_fps": 100.0, "cpu_count": 1}})
        )
        git("init", "-q")
        git("add", "BENCH_x.json")
        git("commit", "-qm", "baseline")

        import os

        cwd = os.getcwd()
        os.chdir(repo)
        try:
            # A huge drop, but on a different machine shape: must pass.
            bench.write_text(
                json.dumps({"bench": {"batched_fps": 1.0, "cpu_count": 4}})
            )
            assert bench_regression.main(["BENCH_x.json"]) == 0
            # The same drop under the same context: must fail.
            bench.write_text(
                json.dumps({"bench": {"batched_fps": 1.0, "cpu_count": 1}})
            )
            assert bench_regression.main(["BENCH_x.json"]) == 1
        finally:
            os.chdir(cwd)
        captured = capsys.readouterr()
        assert "machine context differs" in captured.out
        assert "cpu_count: 1 -> 4" in captured.out

    def test_history_trend_skips_mismatched_snapshots(self, tmp_path, capsys):
        import os

        history = tmp_path / "history"
        # Two old snapshots from a 1-core runner, one from a 4-core runner.
        for run, (fps, cores) in enumerate([(100.0, 1), (110.0, 1), (5000.0, 4)]):
            bench_regression.append_history(
                history,
                "BENCH_y.json",
                {"bench": {"batched_fps": fps, "cpu_count": cores}},
                run_id=f"run-{run:03d}",
                window=10,
            )
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            fresh = tmp_path / "BENCH_y.json"
            # 95 fps on 1 core: healthy vs the 1-core median (105), and the
            # 4-core outlier is pruned instead of poisoning the median.
            fresh.write_text(
                json.dumps({"bench": {"batched_fps": 95.0, "cpu_count": 1}})
            )
            assert (
                bench_regression.main(
                    ["--history", str(history), "--run-id", "run-100", "BENCH_y.json"]
                )
                == 0
            )
        finally:
            os.chdir(cwd)
        assert "machine context differs" in capsys.readouterr().out

"""Hot/warm/cold adapter lifecycle: budgets, spill, promotion, restart.

The lifecycle contract: demotion and promotion round-trip losslessly (a
promoted user's parameters are bitwise what was demoted), tier traffic is
observable through :class:`ServeMetrics`, and — because spill files are
written through at adaptation time — adapter state survives a shard-process
crash and restart.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.loader import ArrayDataset
from repro.dataset.sample import PoseDataset
from repro.serve import (
    AdapterPolicy,
    AdapterRegistry,
    PoseServer,
    ServeConfig,
    ServeMetrics,
    ShardCrashed,
    adaptation_split,
    user_streams_from_dataset,
)
from repro.serve.sharded import ProcessShardedPoseServer


@pytest.fixture(scope="module")
def calibration_sets(estimator, serve_dataset):
    arrays = estimator.prepare(serve_dataset[:32])
    return {
        f"user-{index}": ArrayDataset(
            arrays.features[index * 8 : (index + 1) * 8],
            arrays.labels[index * 8 : (index + 1) * 8],
        )
        for index in range(4)
    }


def _params_of(registry, users):
    return {
        user: [p.copy() for p in registry.parameters_for(user)] for user in users
    }


class TestTierBudgets:
    def test_demotion_and_promotion_round_trip_losslessly(
        self, estimator, calibration_sets, tmp_path
    ):
        policy = AdapterPolicy(
            scope="last", epochs=1, hot_capacity=2, spill_dir=tmp_path / "spill"
        )
        registry = AdapterRegistry(estimator.model, policy=policy)
        registry.adapt_many(calibration_sets)
        users = list(calibration_sets)
        before = _params_of(registry, users)

        sizes = registry.tier_sizes()
        assert sizes == {"hot": 2, "warm": 2, "cold": 0}
        # The oldest users were demoted; touching them promotes losslessly.
        for user in users:
            for a, b in zip(before[user], registry.parameters_for(user)):
                np.testing.assert_array_equal(a, b)

    def test_lru_order_governs_demotion(self, estimator, calibration_sets, tmp_path):
        policy = AdapterPolicy(
            scope="last", epochs=1, hot_capacity=3, spill_dir=tmp_path / "spill"
        )
        registry = AdapterRegistry(estimator.model, policy=policy)
        registry.adapt_many(calibration_sets)  # 4 users, last one demoted a peer
        users = list(calibration_sets)
        hot_before = [u for u in users if u in registry._params]
        # Serve the least-recently-used hot user, then adapt a new batch of
        # the demoted one: the untouched hot users age out first.
        registry.gather([hot_before[0]])
        assert registry.tier_sizes()["hot"] == 3

    def test_without_spill_dir_demotion_goes_cold(self, estimator, calibration_sets):
        policy = AdapterPolicy(scope="last", epochs=1, hot_capacity=2)
        registry = AdapterRegistry(estimator.model, policy=policy)
        registry.adapt_many(calibration_sets)
        sizes = registry.tier_sizes()
        assert sizes["hot"] == 2 and sizes["warm"] == 0 and sizes["cold"] == 2
        cold_user = next(iter(registry._cold))
        assert cold_user not in registry
        with pytest.raises(KeyError):
            registry.gather([cold_user])

    def test_warm_capacity_drops_coldest_and_unlinks_spill(
        self, estimator, calibration_sets, tmp_path
    ):
        policy = AdapterPolicy(
            scope="last",
            epochs=1,
            hot_capacity=1,
            warm_capacity=1,
            spill_dir=tmp_path / "spill",
        )
        registry = AdapterRegistry(estimator.model, policy=policy)
        registry.adapt_many(calibration_sets)
        sizes = registry.tier_sizes()
        assert sizes["hot"] == 1 and sizes["warm"] == 1
        assert sizes["cold"] == len(calibration_sets) - 2
        # Exactly hot + warm spill files remain on disk.
        assert len(list((tmp_path / "spill").glob("user-*.npz"))) == 2

    def test_remove_clears_every_tier_and_the_spill_file(
        self, estimator, calibration_sets, tmp_path
    ):
        policy = AdapterPolicy(scope="last", epochs=1, spill_dir=tmp_path / "spill")
        registry = AdapterRegistry(estimator.model, policy=policy)
        user = next(iter(calibration_sets))
        registry.adapt_user(user, calibration_sets[user])
        assert len(list((tmp_path / "spill").glob("user-*.npz"))) == 1
        assert registry.remove(user)
        assert user not in registry
        assert list((tmp_path / "spill").glob("user-*.npz")) == []
        assert not registry.remove(user)


class TestTierMetrics:
    def test_access_and_demotion_counters(self, estimator, calibration_sets, tmp_path):
        metrics = ServeMetrics()
        policy = AdapterPolicy(
            scope="last", epochs=1, hot_capacity=2, spill_dir=tmp_path / "spill"
        )
        registry = AdapterRegistry(estimator.model, policy=policy, metrics=metrics)
        registry.adapt_many(calibration_sets)  # 4 users -> 2 warm demotions
        users = list(calibration_sets)

        hot_user = [u for u in users if u in registry._params][0]
        warm_user = [u for u in users if u in registry._warm][0]
        registry.gather([hot_user])
        registry.gather([warm_user])  # promotes, demoting another hot user

        snapshot = metrics.snapshot()
        assert snapshot["adapter_demotions_warm"] >= 2
        assert snapshot["adapter_hot_hits"] == 1
        assert snapshot["adapter_warm_hits"] == 1
        assert snapshot["adapter_cold_misses"] == 0
        assert metrics.adapter_tier_hit_rate == 1.0

    def test_cold_miss_recorded_distinctly(self, estimator, calibration_sets):
        metrics = ServeMetrics()
        policy = AdapterPolicy(scope="last", epochs=1, hot_capacity=1)
        registry = AdapterRegistry(estimator.model, policy=policy, metrics=metrics)
        registry.adapt_many(calibration_sets)
        cold_user = next(iter(registry._cold))
        with pytest.raises(KeyError):
            registry.gather([cold_user])
        snapshot = metrics.snapshot()
        assert snapshot["adapter_cold_misses"] == 1
        assert snapshot["adapter_demotions_cold"] == len(calibration_sets) - 1
        assert metrics.adapter_tier_hit_rate == 0.0

    def test_prometheus_exposes_tier_counters_and_hit_rate(self):
        metrics = ServeMetrics()
        metrics.record_adapter_access("hot")
        metrics.record_adapter_access("cold")
        metrics.record_adapter_demotion("warm")
        text = metrics.to_prometheus()
        assert "fuse_serve_adapter_hot_hits_total 1" in text
        assert "fuse_serve_adapter_cold_misses_total 1" in text
        assert "fuse_serve_adapter_demotions_warm_total 1" in text
        assert "fuse_serve_adapter_tier_hit_rate 0.5" in text

    def test_unknown_tier_rejected(self):
        metrics = ServeMetrics()
        with pytest.raises(ValueError):
            metrics.record_adapter_access("lukewarm")
        with pytest.raises(ValueError):
            metrics.record_adapter_demotion("hot")

    def test_server_snapshot_reports_tier_gauges(self, estimator, calibration_sets):
        server = PoseServer(
            estimator, ServeConfig(), policy=AdapterPolicy(scope="last", epochs=1)
        )
        user = next(iter(calibration_sets))
        server.registry.adapt_user(user, calibration_sets[user])
        snapshot = server.metrics_snapshot()
        assert snapshot["adapter_tier_hot"] == 1
        assert snapshot["adapter_tier_warm"] == 0
        assert snapshot["adapter_tier_cold"] == 0


class TestRestartReattach:
    def test_new_registry_reattaches_spilled_users_losslessly(
        self, estimator, calibration_sets, tmp_path
    ):
        policy = AdapterPolicy(scope="last", epochs=1, spill_dir=tmp_path / "spill")
        first = AdapterRegistry(estimator.model, policy=policy)
        first.adapt_many(calibration_sets)
        users = list(calibration_sets)
        before = _params_of(first, users)

        second = AdapterRegistry(estimator.model, policy=policy)
        assert second.tier_sizes()["warm"] == len(users)
        for user in users:
            assert user in second
            for a, b in zip(before[user], second.parameters_for(user)):
                np.testing.assert_array_equal(a, b)

    def test_reattach_validates_policy_compatibility(
        self, estimator, calibration_sets, tmp_path
    ):
        spill = tmp_path / "spill"
        first = AdapterRegistry(
            estimator.model,
            policy=AdapterPolicy(scope="lora", rank=4, epochs=1, spill_dir=spill),
        )
        user = next(iter(calibration_sets))
        first.adapt_user(user, calibration_sets[user])
        with pytest.raises(ValueError, match="rank-4"):
            AdapterRegistry(
                estimator.model,
                policy=AdapterPolicy(scope="lora", rank=8, epochs=1, spill_dir=spill),
            )

    @pytest.mark.slow
    def test_shard_process_restart_keeps_adapted_users(
        self, estimator, serve_dataset, tmp_path
    ):
        """PR-4 follow-up: a crashed shard's restart re-attaches its spill
        directory, so previously adapted users keep their personal
        parameters — post-restart predictions are bitwise what they were
        before the crash."""
        streams = user_streams_from_dataset(serve_dataset, num_users=6, frames_per_user=8)
        calibration, serving = adaptation_split(streams, adaptation_frames=6)
        policy = AdapterPolicy(
            scope="lora", rank=2, epochs=1, spill_dir=tmp_path / "spill"
        )
        with ProcessShardedPoseServer(
            estimator,
            num_shards=2,
            config=ServeConfig(max_batch_size=4),
            policy=policy,
        ) as server:
            user = next(iter(serving))
            dataset = PoseDataset(name="calibration")
            dataset.extend(calibration[user])
            server.adapt_user(user, dataset)
            before = server.submit(user, serving[user][0].cloud)

            victim = server.shard_index(user)
            server.workers[victim]._process.kill()
            with pytest.raises(ShardCrashed):
                server.submit(user, serving[user][0].cloud)
            assert server.restarts == 1

            after = server.submit(user, serving[user][0].cloud)
            np.testing.assert_array_equal(before, after)

"""Backend-selection plumbing: config -> server -> shard pickle -> CLI.

The kernel-backend choice must survive every hand-off of the serving stack:
``ServeConfig`` validation, ``PoseServer`` kernel construction, the
``ShardFactory`` pickle boundary that worker processes are built from, the
``REPRO_KERNEL_BACKEND`` environment default, and the ``--kernel-backend``
CLI flags — and the fast backend must preserve the batched-vs-unbatched
bitwise replay guarantee the serving tier is built on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.nn import backend as kb
from repro.serve import PoseServer, ServeConfig, replay_users, user_streams_from_dataset
from repro.serve.worker import ShardFactory


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    monkeypatch.delenv(kb.ENV_VAR, raising=False)
    yield
    kb.set_default_backend(None)


class TestServeConfigValidation:
    def test_default_is_deferred(self):
        assert ServeConfig().kernel_backend is None

    def test_registered_names_accepted(self):
        for name in kb.available_backends():
            assert ServeConfig(kernel_backend=name).kernel_backend == name

    def test_unknown_name_rejected_with_registry_listing(self):
        with pytest.raises(ValueError, match="unknown kernel backend 'warp'"):
            ServeConfig(kernel_backend="warp")
        with pytest.raises(ValueError, match="reference"):
            ServeConfig(kernel_backend="warp")


class TestServerWiring:
    def test_explicit_config_selects_the_kernel_backend(self, estimator):
        server = PoseServer(estimator, ServeConfig(kernel_backend="fast"))
        assert server.kernel.backend_name == "fast"
        assert isinstance(server.kernel.backend, kb.FastBackend)

    def test_default_config_follows_the_process_default(self, estimator):
        assert PoseServer(estimator, ServeConfig()).kernel.backend_name == "reference"

    def test_env_var_feeds_the_default_path(self, estimator, monkeypatch):
        monkeypatch.setenv(kb.ENV_VAR, "fast")
        assert PoseServer(estimator, ServeConfig()).kernel.backend_name == "fast"

    def test_explicit_config_beats_env_var(self, estimator, monkeypatch):
        monkeypatch.setenv(kb.ENV_VAR, "fast")
        server = PoseServer(estimator, ServeConfig(kernel_backend="reference"))
        assert server.kernel.backend_name == "reference"


class TestShardFactoryPickleBoundary:
    def test_selection_survives_the_worker_pickle_boundary(self, estimator):
        factory = ShardFactory(estimator, ServeConfig(kernel_backend="fast"))
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.config.kernel_backend == "fast"
        server = clone.build(shard_index=0)
        assert server.kernel.backend_name == "fast"

    def test_deferred_selection_resolves_in_the_worker(self, estimator, monkeypatch):
        """A ``None`` config defers to whatever default the worker process has."""
        factory = ShardFactory(estimator, ServeConfig())
        clone = pickle.loads(pickle.dumps(factory))
        monkeypatch.setenv(kb.ENV_VAR, "fast")
        assert clone.build().kernel.backend_name == "fast"


class TestCliFlag:
    def test_serve_flag_rejects_unknown_backend_before_training(self, capsys):
        from repro.experiments import cli

        assert cli.main(["fuse-serve", "--kernel-backend", "warp"]) == 2
        captured = capsys.readouterr()
        assert "unknown kernel backend 'warp'" in captured.err
        # Fail-fast: the estimator bootstrap never started.
        assert "training on" not in captured.out

    def test_router_flag_rejects_unknown_backend(self, capsys):
        from repro.experiments import cli

        exit_code = cli.main(
            ["fuse-router", "--spawn", "1", "--kernel-backend", "warp"]
        )
        assert exit_code == 2
        assert "unknown kernel backend 'warp'" in capsys.readouterr().err

    def test_serve_help_documents_the_flag(self, capsys):
        from repro.experiments import cli

        with pytest.raises(SystemExit):
            cli.main(["fuse-serve", "--help"])
        assert "--kernel-backend" in capsys.readouterr().out


class TestFastBackendReplay:
    def test_batched_replay_bitwise_identical_to_unbatched(self, estimator, serve_dataset):
        """The batch-invariance guarantee holds within the fast backend too."""
        streams = user_streams_from_dataset(serve_dataset, num_users=12, frames_per_user=3)
        batched = PoseServer(
            estimator, ServeConfig(max_batch_size=8, gemm_block=8, kernel_backend="fast")
        )
        unbatched = PoseServer(
            estimator, ServeConfig(max_batch_size=1, gemm_block=8, kernel_backend="fast")
        )
        result_batched = replay_users(batched, streams)
        result_unbatched = replay_users(unbatched, streams)
        for user in streams:
            np.testing.assert_array_equal(
                result_batched.predictions[user], result_unbatched.predictions[user]
            )

    def test_fast_replay_matches_reference_numerically(self, estimator, serve_dataset):
        streams = user_streams_from_dataset(serve_dataset, num_users=6, frames_per_user=3)
        fast = replay_users(
            PoseServer(estimator, ServeConfig(gemm_block=8, kernel_backend="fast")), streams
        )
        reference = replay_users(
            PoseServer(estimator, ServeConfig(gemm_block=8, kernel_backend="reference")),
            streams,
        )
        for user in streams:
            np.testing.assert_allclose(
                fast.predictions[user],
                reference.predictions[user],
                rtol=1e-9,
                atol=1e-12,
            )

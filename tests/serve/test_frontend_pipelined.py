"""Protocol v2 front-end tests: pipelining, streaming, batching, downgrade.

The serving semantics are pinned by the server/shard suites; these tests
cover what the v2 socket layer owns: out-of-order reply correlation,
duplicate/unknown request ids, the enqueue/ticket/push streaming path
(remote traffic actually forms micro-batches), batched submits over the
contiguous ndarray block, graceful v1 downgrade, oversized-batch rejection,
bounded in-flight windows, connect retry — and the acceptance property:
a replay over the pipelined path is bitwise identical to in-process
serving.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncPoseClient,
    PoseFrontend,
    PoseServer,
    ProcessShardedPoseServer,
    ServeConfig,
    user_streams_from_dataset,
)
from repro.serve.transport import CODEC_JSON, encode_message, read_message, write_message

from .conftest import make_frame

#: a deadline long enough that only batch-full/explicit flushes fire during
#: a test (keeps batch formation deterministic on slow CI containers)
LAZY = ServeConfig(max_batch_size=8, max_delay_ms=10_000.0)


def run_scenario(backend, scenario, tmp_path, **frontend_kwargs):
    """Start a Unix-socket front-end, run ``scenario(client, frontend)``."""

    async def body():
        path = str(tmp_path / "fuse.sock")
        frontend = PoseFrontend(backend, unix_path=path, **frontend_kwargs)
        await frontend.start()
        try:
            async with AsyncPoseClient() as client:
                await client.connect_unix(path)
                return await scenario(client, frontend)
        finally:
            await frontend.stop()

    return asyncio.run(body())


@pytest.fixture()
def backend(estimator):
    return PoseServer(estimator, LAZY)


class TestCorrelation:
    def test_pipelined_requests_resolve_out_of_order(self, backend, tmp_path):
        """A slow submit and fast pings in flight together: the pings'
        replies overtake the submit's, and every future still resolves to
        its own request via the id."""

        async def scenario(client, frontend):
            frame = make_frame(np.random.default_rng(0))
            submit = asyncio.ensure_future(client.submit("alice", frame))
            pongs = await asyncio.gather(*(client.ping() for _ in range(4)))
            assert pongs == [True] * 4
            joints = await submit
            assert joints.shape == (19, 3)

        run_scenario(backend, scenario, tmp_path)

    def test_duplicate_inflight_id_rejected(self, backend, tmp_path):
        async def scenario(client, frontend):
            # Two raw requests with the same id, no reads in between: the
            # second must be answered with an error carrying that id.
            writer = client._writer
            reader = client._reader
            client._reader_task.cancel()
            await asyncio.sleep(0)
            slow = {
                "type": "submit",
                "user": "bob",
                "id": 7,
                "frame": {"points": make_frame(np.random.default_rng(1)).points},
            }
            await write_message(writer, slow, CODEC_JSON)
            await write_message(writer, {"type": "ping", "id": 7}, CODEC_JSON)
            replies = [(await read_message(reader))[0] for _ in range(2)]
            by_type = {reply["type"]: reply for reply in replies}
            assert set(by_type) == {"error", "prediction"}
            assert by_type["error"]["id"] == 7
            assert "already in flight" in by_type["error"]["detail"]

        run_scenario(backend, scenario, tmp_path)

    def test_unmatched_push_is_counted_not_fatal(self):
        client = AsyncPoseClient()
        client._route({"type": "prediction", "ticket": 999, "joints": 1, "pushed": True})
        client._route({"type": "pong"})  # id-less reply with nothing pending
        assert client.unmatched_replies == 2

    def test_non_scalar_request_id_rejected(self, backend, tmp_path):
        async def scenario(client, frontend):
            writer, reader = client._writer, client._reader
            client._reader_task.cancel()
            await asyncio.sleep(0)
            await write_message(writer, {"type": "ping", "id": [1, 2]}, CODEC_JSON)
            reply = (await read_message(reader))[0]
            assert reply["type"] == "error"
            assert "int or str" in reply["detail"]

        run_scenario(backend, scenario, tmp_path)


class TestV1Downgrade:
    def test_idless_requests_keep_strict_request_reply(self, backend, tmp_path):
        """A v1 client (no ids) gets in-order replies without ids."""

        async def scenario(client, frontend):
            writer, reader = client._writer, client._reader
            client._reader_task.cancel()
            await asyncio.sleep(0)
            await write_message(writer, {"type": "ping"}, CODEC_JSON)
            await write_message(writer, {"type": "metrics"}, CODEC_JSON)
            first = (await read_message(reader))[0]
            second = (await read_message(reader))[0]
            assert first["type"] == "pong" and "id" not in first
            assert second["type"] == "metrics_report" and "id" not in second

        run_scenario(backend, scenario, tmp_path)

    def test_v1_frontend_rejects_v2_messages(self, backend, tmp_path):
        async def scenario(client, frontend):
            with pytest.raises(RuntimeError, match="requires protocol v2"):
                await client.flush()
            # ping is a v2 liveness frame: a v1 front-end rejects it with a
            # correlated error instead of hanging up.
            with pytest.raises(RuntimeError, match="requires protocol v2"):
                await client.ping()
            hello = await client.hello()
            assert hello["protocol"] == 1
            assert hello["protocols"] == [1]
            # ids are ignored in v1 mode, replies still correlate FIFO —
            # the connection survived the rejected frames above.
            rng = np.random.default_rng(7)
            assert (await client.submit("v1-user", make_frame(rng))).shape == (19, 3)

        run_scenario(backend, scenario, tmp_path, protocol=1)

    def test_idless_enqueue_rejected(self, backend, tmp_path):
        """enqueue cannot work without an id: the ticket IS the id."""

        async def scenario(client, frontend):
            writer, reader = client._writer, client._reader
            client._reader_task.cancel()
            await asyncio.sleep(0)
            message = {
                "type": "enqueue",
                "user": "carol",
                "frame": {"points": make_frame(np.random.default_rng(2)).points},
            }
            await write_message(writer, message, CODEC_JSON)
            reply = (await read_message(reader))[0]
            assert reply["type"] == "error"
            assert "requires a request id" in reply["detail"]

        run_scenario(backend, scenario, tmp_path)


class TestStreaming:
    def test_remote_enqueues_form_micro_batches(self, estimator, tmp_path):
        """The point of the streaming path: concurrent remote clients fill
        the cross-user micro-batcher instead of flushing singletons."""
        backend = PoseServer(estimator, LAZY)

        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(backend, unix_path=path)
            await frontend.start()
            try:

                async def one(user):
                    rng = np.random.default_rng(abs(hash(user)) % 2**32)
                    frames = [make_frame(rng) for _ in range(4)]
                    async with AsyncPoseClient() as client:
                        await client.connect_unix(path)
                        return await client.stream(user, frames, max_in_flight=4)

                results = await asyncio.gather(*(one(f"user-{i}") for i in range(4)))
                assert all(j.shape == (19, 3) for user in results for j in user)
                assert frontend.predictions_pushed == 16
            finally:
                await frontend.stop()

        asyncio.run(body())
        assert backend.metrics.max_batch_seen == 8  # real cross-user batches

    def test_poll_deadline_resolves_tickets_without_client_flush(self, estimator, tmp_path):
        """The background poller applies max_delay to remote streams."""
        backend = PoseServer(estimator, ServeConfig(max_batch_size=64, max_delay_ms=1.0))

        async def scenario(client, frontend):
            future = await client.enqueue("dave", make_frame(np.random.default_rng(3)))
            joints = await asyncio.wait_for(future, timeout=5.0)
            assert np.asarray(joints["joints"]).shape == (19, 3)

        run_scenario(backend, scenario, tmp_path)

    def test_reused_id_with_outstanding_ticket_rejected(self, backend, tmp_path):
        async def scenario(client, frontend):
            await client.enqueue("gail", make_frame(np.random.default_rng(7)))
            # Force the same id for a second enqueue while the first ticket
            # is still unresolved: the ledger must not be overwritten.
            client._next_id -= 1
            with pytest.raises(RuntimeError, match="still outstanding"):
                await client.enqueue("gail", make_frame(np.random.default_rng(8)))
            await client.flush()

        run_scenario(backend, scenario, tmp_path)

    def test_stream_settles_every_ticket_under_drops(self, estimator, tmp_path):
        """Dropped frames mid-stream must not abandon later predictions:
        every ticket settles, successes stay retrievable."""
        backend = PoseServer(
            estimator,
            ServeConfig(max_batch_size=64, max_queue_depth=2, max_delay_ms=10_000.0),
        )
        rng = np.random.default_rng(13)
        frames = [make_frame(rng) for _ in range(5)]

        async def scenario(client, frontend):
            mixed = await client.stream(
                "kate", frames, max_in_flight=5, return_errors=True
            )
            with pytest.raises(RuntimeError, match="dropped"):
                await client.stream("kate", frames, max_in_flight=5)
            return mixed

        mixed = run_scenario(backend, scenario, tmp_path)
        served = [r for r in mixed if isinstance(r, np.ndarray)]
        dropped = [r for r in mixed if isinstance(r, Exception)]
        assert len(served) == 2 and len(dropped) == 3  # drop_oldest kept the tail
        assert all(j.shape == (19, 3) for j in served)

    def test_explicit_flush_resolves_partial_batch(self, backend, tmp_path):
        async def scenario(client, frontend):
            future = await client.enqueue("erin", make_frame(np.random.default_rng(4)))
            assert not future.done()
            produced = await client.flush()
            assert produced == 1
            assert (await future)["ticket"] is not None

        run_scenario(backend, scenario, tmp_path)


class TestBatchedSubmits:
    def test_submit_batch_matches_individual_submits_bitwise(
        self, estimator, tmp_path
    ):
        rng = np.random.default_rng(5)
        items = [(f"user-{i % 3}", make_frame(rng)) for i in range(9)]
        reference_server = PoseServer(estimator, LAZY)
        expected = [reference_server.submit(user, frame) for user, frame in items]
        backend = PoseServer(estimator, LAZY)

        async def scenario(client, frontend):
            return await client.submit_batch(items)

        served = run_scenario(backend, scenario, tmp_path)
        for over_wire, direct in zip(served, expected):
            np.testing.assert_array_equal(over_wire, direct)
        # One wire frame coalesced the whole cohort into real micro-batches.
        assert backend.metrics.max_batch_seen == 8

    def test_batch_then_pipelined_submit_keeps_frame_order(self, estimator, tmp_path):
        """A submit_batch immediately followed by pipelined submits for the
        same user must enqueue in arrival order: the batch's fan-out tasks
        claim their shard slots at dispatch time, so a later request that
        reaches its shard lock without suspending cannot overtake them
        (fusion is order-dependent, so a reorder would change the bits)."""
        rng = np.random.default_rng(11)
        frames = [make_frame(rng) for _ in range(6)]
        reference_server = PoseServer(estimator, LAZY)
        expected = [reference_server.submit("heidi", frame) for frame in frames]
        backend = PoseServer(estimator, LAZY)

        async def scenario(client, frontend):
            batch = asyncio.ensure_future(
                client.submit_batch([("heidi", frame) for frame in frames[:3]])
            )
            await asyncio.sleep(0)  # the batch is dispatched, fan-out pending
            tail = [
                asyncio.ensure_future(client.submit("heidi", frame))
                for frame in frames[3:]
            ]
            first = await batch
            rest = await asyncio.gather(*tail)
            return list(first) + list(rest)

        served = run_scenario(backend, scenario, tmp_path)
        for over_wire, direct in zip(served, expected):
            np.testing.assert_array_equal(over_wire, direct)

    def test_malformed_batch_reports_error(self, backend, tmp_path):
        async def scenario(client, frontend):
            with pytest.raises(RuntimeError, match="equally sized"):
                await client.request(
                    {"type": "submit_batch", "users": ["a", "b"], "frames": {"points": []}}
                )
            assert await client.ping()

        run_scenario(backend, scenario, tmp_path)

    def test_mid_batch_rejection_reports_per_frame_errors(self, estimator, tmp_path):
        """Backpressure inside a submit_batch: admitted frames answer,
        rejected frames carry their own error slots."""
        backend = PoseServer(
            estimator,
            ServeConfig(max_batch_size=64, max_queue_depth=2, overflow="reject"),
        )
        rng = np.random.default_rng(12)
        items = [(f"user-{i}", make_frame(rng)) for i in range(5)]

        async def scenario(client, frontend):
            return await client.submit_batch(items, return_errors=True)

        results = run_scenario(backend, scenario, tmp_path)
        served = [r for r in results if isinstance(r, np.ndarray)]
        failed = [r for r in results if isinstance(r, Exception)]
        assert len(served) == 2 and all(j.shape == (19, 3) for j in served)
        assert len(failed) == 3 and all("QueueFull" in str(e) for e in failed)

    def test_replies_use_the_codec_of_their_own_request(self, backend, tmp_path):
        """Pipelined replies must not inherit the codec of the most recent
        frame on the connection."""
        from repro.serve.transport import CODEC_MSGPACK, available_codecs

        if CODEC_MSGPACK not in available_codecs():
            pytest.skip("msgpack not installed")
        raw = transport_frames = []

        async def scenario(client, frontend):
            writer, reader = client._writer, client._reader
            client._reader_task.cancel()
            await asyncio.sleep(0)
            slow = {
                "type": "submit",
                "user": "ivan",
                "id": 1,
                "frame": {"points": make_frame(np.random.default_rng(9)).points},
            }
            await write_message(writer, slow, CODEC_MSGPACK)
            await write_message(writer, {"type": "ping", "id": 2}, CODEC_JSON)
            for _ in range(2):
                message, codec = await read_message(reader)
                raw.append((message["type"], codec))

        run_scenario(backend, scenario, tmp_path)
        assert dict(transport_frames) == {"pong": CODEC_JSON, "prediction": CODEC_MSGPACK}

    def test_oversized_batched_frame_closes_connection_with_error(
        self, backend, tmp_path
    ):
        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(backend, unix_path=path, max_frame_bytes=2048)
            await frontend.start()
            try:
                reader, writer = await asyncio.open_unix_connection(path)
                from repro.serve.transport import ArrayBlock

                big = {
                    "type": "submit_batch",
                    "id": 1,
                    "users": list(range(8)),
                    "frames": {"points": ArrayBlock([np.zeros((64, 5))] * 8)},
                }
                writer.write(encode_message(big, CODEC_JSON))
                await writer.drain()
                reply = await read_message(reader)
                assert reply is not None and reply[0]["type"] == "error"
                assert "FrameTooLarge" in reply[0]["error"]
                assert await reader.read() == b""  # server hung up
                writer.close()
                await writer.wait_closed()
                assert frontend.protocol_errors == 1
            finally:
                await frontend.stop()

        asyncio.run(body())


class TestFifoShardLock:
    """The ordering primitive behind pipelined dispatch: queue positions
    are taken synchronously, so a task that suspends between dispatch and
    enqueue (submit_batch's fan-out) keeps its arrival-order slot."""

    def test_claims_grant_in_claim_order_across_suspensions(self):
        from repro.serve.frontend import _FifoShardLock

        async def body():
            lock = _FifoShardLock()
            order = []

            async def late_runner(claim, name):
                await asyncio.sleep(0.01)  # suspend before acquiring (the race)
                async with lock.held(claim):
                    order.append(name)

            async def eager_runner(name):
                async with lock.held(lock.claim()):
                    order.append(name)

            first = lock.claim()  # claimed before the eager task exists
            await asyncio.gather(late_runner(first, "first"), eager_runner("second"))
            assert order == ["first", "second"]

        asyncio.run(body())

    def test_cancelled_waiter_does_not_wedge_the_queue(self):
        from repro.serve.frontend import _FifoShardLock

        async def body():
            lock = _FifoShardLock()
            head = lock.claim()
            waiting = asyncio.ensure_future(lock.acquire(lock.claim()))
            await asyncio.sleep(0)
            waiting.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiting
            async with lock.held(head):
                pass
            # The abandoned claim was skipped; the lock is free again.
            async with lock.held(lock.claim()):
                pass

        asyncio.run(body())


class TestInFlightWindow:
    def test_window_bounds_concurrent_dispatch(self, estimator, tmp_path):
        """With max_in_flight=1 the server serves strictly one at a time
        even when the client pipelines aggressively."""
        backend = PoseServer(estimator, LAZY)

        async def scenario(client, frontend):
            frames = [make_frame(np.random.default_rng(6)) for _ in range(6)]
            results = await client.submit_many("frank", frames, max_in_flight=6)
            assert len(results) == 6
            assert frontend.requests_served == 6

        run_scenario(backend, scenario, tmp_path, max_in_flight=1)

    def test_invalid_window_rejected(self, backend):
        with pytest.raises(ValueError, match="max_in_flight"):
            PoseFrontend(backend, unix_path="unused", max_in_flight=0)


class TestFaultContainment:
    def test_unframeable_reply_answers_with_correlated_error(self, backend, tmp_path):
        """A reply that encodes past max_frame_bytes must come back as an
        error frame with the request's id — never a silent blackhole that
        leaves the client hanging."""

        async def body():
            path = str(tmp_path / "fuse.sock")
            # A 4-point submit fits in 512 bytes; the (19, 3) prediction
            # reply does not.
            frontend = PoseFrontend(backend, unix_path=path, max_frame_bytes=512)
            await frontend.start()
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_unix(path)
                    with pytest.raises(RuntimeError, match="FrameTooLarge"):
                        await asyncio.wait_for(
                            client.submit(
                                "judy", make_frame(np.random.default_rng(10), count=4)
                            ),
                            timeout=5.0,
                        )
                    assert await client.ping()  # connection stayed usable

            finally:
                await frontend.stop()

        asyncio.run(body())

    def test_requests_after_reader_death_fail_fast(self, backend, tmp_path):
        """Once the client's read loop dies (a reply exceeded its frame
        limit), further requests must raise instead of awaiting forever."""

        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(backend, unix_path=path)
            await frontend.start()
            try:
                async with AsyncPoseClient(max_frame_bytes=64) as client:
                    await client.connect_unix(path)
                    with pytest.raises((RuntimeError, ConnectionError)):
                        await asyncio.wait_for(client.hello(), timeout=5.0)
                    with pytest.raises(ConnectionError, match="broken"):
                        await client.ping()
            finally:
                await frontend.stop()

        asyncio.run(body())


class TestConnectRetry:
    def test_retry_connects_once_listener_appears(self, backend, tmp_path):
        async def body():
            path = str(tmp_path / "late.sock")
            frontend = PoseFrontend(backend, unix_path=path)

            async def connect():
                async with AsyncPoseClient() as client:
                    await client.connect_unix(path, retries=8, backoff_s=0.02)
                    return await client.ping()

            async def bind_later():
                await asyncio.sleep(0.1)
                await frontend.start()

            try:
                pinged, _ = await asyncio.gather(connect(), bind_later())
                assert pinged
            finally:
                await frontend.stop()

        asyncio.run(body())

    def test_retries_are_bounded(self, tmp_path):
        async def body():
            with pytest.raises(ConnectionError, match="3 attempt"):
                async with AsyncPoseClient() as client:
                    await client.connect_unix(
                        str(tmp_path / "absent.sock"), retries=2, backoff_s=0.01
                    )

        asyncio.run(body())


class TestPipelinedReplayEquivalence:
    """The acceptance property: pipelining/streaming/batching over the
    socket never changes a prediction — bitwise equal to in-process
    serving."""

    @pytest.fixture(scope="class")
    def streams(self, serve_dataset):
        return user_streams_from_dataset(serve_dataset, num_users=8, frames_per_user=5)

    @pytest.fixture(scope="class")
    def reference(self, estimator, streams):
        server = PoseServer(estimator, LAZY)
        return {
            user: [server.submit(user, sample.cloud) for sample in stream]
            for user, stream in streams.items()
        }

    def _assert_matches_reference(self, reference, streams, results):
        for (user, stream), predictions in zip(streams.items(), results):
            assert len(predictions) == len(stream)
            for expected, actual in zip(reference[user], predictions):
                np.testing.assert_array_equal(expected, actual)

    def test_streamed_replay_bitwise_identical_to_in_process(
        self, estimator, streams, reference, tmp_path
    ):
        backend = PoseServer(estimator, LAZY)

        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(backend, unix_path=path)
            await frontend.start()
            try:

                async def one(user, stream):
                    async with AsyncPoseClient() as client:
                        await client.connect_unix(path)
                        return await client.stream(
                            user, [sample.cloud for sample in stream], max_in_flight=4
                        )

                return await asyncio.gather(
                    *(one(user, stream) for user, stream in streams.items())
                )
            finally:
                await frontend.stop()

        self._assert_matches_reference(reference, streams, asyncio.run(body()))

    def test_pipelined_replay_through_shard_processes_bitwise_identical(
        self, estimator, streams, reference, tmp_path
    ):
        """The deployment shape: pipelined submits + batched submits into
        process-per-shard serving, still bitwise equal to one in-process
        server."""

        async def body():
            path = str(tmp_path / "fuse.sock")
            with ProcessShardedPoseServer(estimator, num_shards=2, config=LAZY) as server:
                frontend = PoseFrontend(server, unix_path=path)
                await frontend.start()
                try:

                    async def one(user, stream):
                        async with AsyncPoseClient() as client:
                            await client.connect_unix(path)
                            return await client.submit_many(
                                user,
                                [sample.cloud for sample in stream],
                                max_in_flight=4,
                            )

                    pipelined = await asyncio.gather(
                        *(one(user, stream) for user, stream in streams.items())
                    )

                    # The same replay again as per-tick batched submits (the
                    # sessions differ per replay, so use a fresh cohort of
                    # user ids mapped onto the same frames).
                    async with AsyncPoseClient() as client:
                        await client.connect_unix(path)
                        batched = {user: [] for user in streams}
                        for tick in range(max(len(s) for s in streams.values())):
                            items = [
                                (f"again-{user}", stream[tick].cloud)
                                for user, stream in streams.items()
                                if tick < len(stream)
                            ]
                            predictions = await client.submit_batch(items)
                            for (tagged_user, _), joints in zip(items, predictions):
                                batched[tagged_user[len("again-"):]].append(joints)
                    return pipelined, list(batched.values())
                finally:
                    await frontend.stop()

        pipelined, batched = asyncio.run(body())
        self._assert_matches_reference(reference, streams, pipelined)
        self._assert_matches_reference(reference, streams, batched)


class TestReconnect:
    def test_kill_and_reconnect_resumes_with_hello_replay(self, backend, tmp_path):
        """Restart the front-end under a reconnecting client: the next
        request redials, replays the hello, and serving continues with the
        server's session state (same backend object) intact."""
        path = str(tmp_path / "fuse.sock")

        async def body():
            frontend = PoseFrontend(backend, unix_path=path)
            await frontend.start()
            async with AsyncPoseClient(reconnect=True) as client:
                await client.connect_unix(path)
                hello = await client.hello()
                assert hello["protocol"] == 2
                rng = np.random.default_rng(21)
                first = await client.submit("rita", make_frame(rng))
                assert first.shape == (19, 3)

                await frontend.stop()  # the client's reader dies with it
                for _ in range(200):
                    if client._reader_task.done():
                        break
                    await asyncio.sleep(0.01)
                replacement = PoseFrontend(backend, unix_path=path)
                await replacement.start()
                try:
                    second = await client.submit("rita", make_frame(rng))
                    assert second.shape == (19, 3)
                    assert client.reconnects == 1
                    # the negotiated fields were refreshed by the replayed hello
                    assert client._hello_done
                finally:
                    await replacement.stop()

        asyncio.run(body())

    def test_reconnect_is_opt_in(self, backend, tmp_path):
        async def body():
            frontend = PoseFrontend(backend, unix_path=(path := str(tmp_path / "f.sock")))
            await frontend.start()
            async with AsyncPoseClient() as client:
                await client.connect_unix(path)
                await client.submit("sam", make_frame(np.random.default_rng(0)))
                await frontend.stop()
                with pytest.raises(ConnectionError):
                    await client.submit("sam", make_frame(np.random.default_rng(1)))
                assert client.reconnects == 0

        asyncio.run(body())

    def test_dead_target_exhausts_redial_retries(self, backend, tmp_path):
        async def body():
            frontend = PoseFrontend(backend, unix_path=(path := str(tmp_path / "f.sock")))
            await frontend.start()
            async with AsyncPoseClient(reconnect=True) as client:
                await client.connect_unix(path, retries=2, backoff_s=0.01)
                await client.ping()
                await frontend.stop()  # nothing ever comes back
                with pytest.raises((ConnectionError, OSError)):
                    await client.ping()

        asyncio.run(body())


class TestPushFlowControl:
    def test_default_frontend_advertises_no_budget(self, backend, tmp_path):
        async def scenario(client, frontend):
            hello = await client.hello()
            assert hello["push_credits"] is None

        run_scenario(backend, scenario, tmp_path)

    def test_pushes_defer_until_credits_granted(self, backend, tmp_path):
        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(backend, unix_path=path, push_credits=1)
            await frontend.start()
            try:
                async with AsyncPoseClient(auto_credits=False) as client:
                    await client.connect_unix(path)
                    await client.hello()
                    rng = np.random.default_rng(31)
                    futures = [
                        await client.enqueue("tess", make_frame(rng))
                        for _ in range(3)
                    ]
                    produced = await client.flush()
                    assert produced == 3
                    # budget 1: one push crosses, two wait server-side
                    await asyncio.wait(futures, timeout=0.3)
                    assert sum(f.done() for f in futures) == 1
                    (conn,) = frontend._connections
                    assert len(conn.deferred) == 2

                    available = await client.grant_credits(2)
                    assert available == 0  # the deferred pushes drained it
                    pushes = await asyncio.gather(*futures)
                    assert all(
                        np.asarray(push["joints"]).shape == (19, 3)
                        for push in pushes
                    )
            finally:
                await frontend.stop()

        asyncio.run(body())

    def test_auto_grants_keep_a_long_stream_flowing(self, backend, tmp_path):
        """With a tiny budget and auto credits on (the default), the client
        replenishes at half budget and an 8-frame stream fully resolves."""

        async def scenario(client, frontend):
            await client.hello()
            rng = np.random.default_rng(32)
            futures = []
            for _ in range(8):
                futures.append(await client.enqueue("uma", make_frame(rng)))
                await client.flush()
            pushes = await asyncio.gather(*futures)
            assert len(pushes) == 8
            assert all(push["pushed"] for push in pushes)

        run_scenario(backend, scenario, tmp_path, push_credits=2)

    def test_negative_grant_rejected(self, backend, tmp_path):
        async def scenario(client, frontend):
            with pytest.raises(RuntimeError, match="grant"):
                await client.grant_credits(-1)

        run_scenario(backend, scenario, tmp_path, push_credits=1)

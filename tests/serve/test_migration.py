"""Live user migration: export/import round-trips are bitwise, validated.

The property everything else builds on: moving a user between two
same-weight servers (export the session ring + adapter archive, import on
the destination) leaves the user's *next* prediction bitwise identical to
never having moved.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.loader import ArrayDataset
from repro.serve import (
    AdapterPolicy,
    MigrationError,
    PoseServer,
    ProcessShardedPoseServer,
    ServeConfig,
    SessionMirror,
    ShardedPoseServer,
)
from repro.serve.migration import USER_STATE_VERSION, validate_user_state

from .conftest import make_frame

LAZY = ServeConfig(max_batch_size=8, max_delay_ms=10_000.0)


def feed(server, user, count, seed=0):
    """Stream ``count`` frames for ``user``; returns the prediction list."""
    rng = np.random.default_rng(seed)
    return [server.submit(user, make_frame(rng)) for _ in range(count)]


@pytest.fixture()
def calibration(estimator, serve_dataset):
    arrays = estimator.prepare(serve_dataset[:8])
    return ArrayDataset(arrays.features, arrays.labels)


class TestExportImportRoundTrip:
    def test_moved_user_predicts_bitwise_identically(self, estimator):
        source = PoseServer(estimator, LAZY)
        stayed = PoseServer(estimator, LAZY)
        target = PoseServer(estimator, LAZY)

        feed(source, "alice", 4, seed=1)
        feed(stayed, "alice", 4, seed=1)

        state = source.export_user("alice", forget=True)
        assert source.sessions.get("alice") is None
        target.import_user(state)

        rng_a, rng_b = np.random.default_rng(9), np.random.default_rng(9)
        for _ in range(3):
            moved = target.submit("alice", make_frame(rng_a))
            reference = stayed.submit("alice", make_frame(rng_b))
            np.testing.assert_array_equal(moved, reference)

    def test_adapter_moves_with_the_user(self, estimator, calibration):
        policy = AdapterPolicy(scope="last", epochs=2)
        source = PoseServer(estimator, LAZY, policy=policy)
        stayed = PoseServer(estimator, LAZY, policy=policy)
        target = PoseServer(estimator, LAZY, policy=policy)

        source.adapt_user("alice", calibration)
        stayed.adapt_user("alice", calibration)
        feed(source, "alice", 2, seed=2)
        feed(stayed, "alice", 2, seed=2)

        state = source.export_user("alice", forget=True)
        target.import_user(state)
        assert "alice" in target.registry.user_ids
        assert "alice" not in source.registry.user_ids

        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        np.testing.assert_array_equal(
            target.submit("alice", make_frame(rng_a)),
            stayed.submit("alice", make_frame(rng_b)),
        )

    def test_export_without_state_is_none(self, estimator):
        assert PoseServer(estimator, LAZY).export_user("ghost") is None

    def test_forget_false_keeps_the_source_serving(self, estimator):
        server = PoseServer(estimator, LAZY)
        feed(server, "alice", 2)
        server.export_user("alice", forget=False)
        assert server.sessions.get("alice") is not None

    def test_state_survives_wire_style_byte_round_trip(self, estimator):
        """The adapter travels as uint8 ndarray (JSON/msgpack carry no raw
        bytes); importing from the array form must equal the bytes form."""
        policy = AdapterPolicy(scope="last", epochs=1)
        source = PoseServer(estimator, LAZY, policy=policy)
        rng = np.random.default_rng(0)
        source.submit("bob", make_frame(rng))
        state = source.export_user("bob")
        assert state["adapter"] is None  # never adapted: session only
        assert isinstance(state["session"]["points"][0], np.ndarray)


class TestShardedDelegation:
    def test_sharded_server_routes_export_to_the_users_shard(self, estimator):
        sharded = ShardedPoseServer(estimator, num_shards=2, config=LAZY)
        reference = PoseServer(estimator, LAZY)
        feed(sharded, "carol", 3, seed=4)
        feed(reference, "carol", 3, seed=4)
        state = sharded.export_user("carol", forget=True)
        importer = ShardedPoseServer(estimator, num_shards=2, config=LAZY)
        importer.import_user(state)
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        np.testing.assert_array_equal(
            importer.submit("carol", make_frame(rng_a)),
            reference.submit("carol", make_frame(rng_b)),
        )

    def test_process_sharded_export_crosses_the_pickle_boundary(self, estimator):
        server = ProcessShardedPoseServer(estimator, num_shards=1, config=LAZY)
        try:
            feed(server, "dave", 2, seed=6)
            state = server.export_user("dave")
            assert state is not None and state["user"] == "dave"
            validate_user_state(state)
            server.import_user(state)  # idempotent restore onto itself
        finally:
            server.close()


class TestValidation:
    def make_state(self, **overrides):
        state = {
            "version": USER_STATE_VERSION,
            "user": "alice",
            "session": {
                "frames_seen": 1,
                "points": [np.zeros((4, 5))],
                "timestamps": [0.0],
                "frame_indices": [0],
            },
            "adapter": None,
        }
        state.update(overrides)
        return state

    def test_valid_state_passes(self):
        validate_user_state(self.make_state())

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"version": 99}, "version"),
            ({"user": None}, "user"),
            ({"user": True}, "user"),
            ({"session": None}, "neither session nor adapter"),
            ({"session": {"frames_seen": 1}}, "missing keys"),
            ({"adapter": np.zeros(3)}, "uint8"),
        ],
    )
    def test_malformed_states_raise(self, overrides, match):
        with pytest.raises(MigrationError, match=match):
            validate_user_state(self.make_state(**overrides))

    def test_non_dict_rejected(self):
        with pytest.raises(MigrationError, match="must be a dict"):
            validate_user_state([1, 2, 3])

    def test_ring_length_mismatch_rejected(self):
        state = self.make_state()
        state["session"]["timestamps"] = [0.0, 1.0]
        with pytest.raises(MigrationError, match="disagree in length"):
            validate_user_state(state)

    def test_context_window_mismatch_refused(self, estimator):
        server = PoseServer(estimator, LAZY)
        state = self.make_state()
        state["session"]["num_context_frames"] = 7
        with pytest.raises(MigrationError, match="num_context_frames"):
            server.import_user(state)


class TestSessionMirror:
    def test_mirror_restores_a_bitwise_ring(self, estimator):
        """Frames observed by the mirror restore a ring equal to the dead
        backend's: predictions after restore match an unbroken server."""
        unbroken = PoseServer(estimator, LAZY)
        mirror = SessionMirror(capacity=8)
        rng = np.random.default_rng(7)
        for index in range(4):
            frame = make_frame(rng)
            unbroken.submit("erin", frame)
            mirror.observe("erin", frame.points, frame.timestamp, frame.frame_index)

        replacement = PoseServer(estimator, LAZY)
        replacement.import_user(mirror.user_state("erin"))
        rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
        np.testing.assert_array_equal(
            replacement.submit("erin", make_frame(rng_a)),
            unbroken.submit("erin", make_frame(rng_b)),
        )

    def test_capacity_bounds_the_ring(self):
        mirror = SessionMirror(capacity=2)
        for index in range(5):
            mirror.observe("u", np.full((1, 5), index, dtype=float), float(index), index)
        state = mirror.user_state("u")
        assert state["session"]["frames_seen"] == 5
        assert [int(p[0, 0]) for p in state["session"]["points"]] == [3, 4]

    def test_lru_bounds_users(self):
        mirror = SessionMirror(capacity=2, max_users=2)
        for user in ("a", "b", "c"):
            mirror.observe(user, np.zeros((1, 5)), 0.0, 0)
        assert "a" not in mirror and len(mirror) == 2

    def test_forget_and_missing_user(self):
        mirror = SessionMirror()
        mirror.observe("u", np.zeros((1, 5)), 0.0, 0)
        mirror.forget("u")
        assert mirror.user_state("u") is None

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            SessionMirror(capacity=0)
        with pytest.raises(ValueError):
            SessionMirror(max_users=0)

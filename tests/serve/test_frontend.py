"""Socket front-end tests: end-to-end serving over Unix and TCP sockets.

The front-end is transport glue — the serving semantics are pinned by the
server/shard suites — so these tests focus on what the socket layer owns:
request routing to the backend, per-connection request/reply framing,
error reporting (malformed submits, framing faults) and shutdown.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import AsyncPoseClient, PoseFrontend, PoseServer, ServeConfig
from repro.serve.transport import CODEC_JSON, encode_message

from .conftest import make_frame


@pytest.fixture()
def backend(estimator):
    # An in-process server: the frontend serializes it through one executor
    # thread, so the fast tier needs no worker processes here.
    return PoseServer(estimator, ServeConfig(max_batch_size=1, gemm_block=8))


def run_frontend_scenario(backend, scenario, **frontend_kwargs):
    """Start a Unix-socket front-end, run ``scenario(client)``, tear down."""

    async def body(tmp_path):
        path = str(tmp_path / "fuse.sock")
        frontend = PoseFrontend(backend, unix_path=path, **frontend_kwargs)
        await frontend.start()
        try:
            async with AsyncPoseClient() as client:
                await client.connect_unix(path)
                return await scenario(client, frontend)
        finally:
            await frontend.stop()

    return body


class TestUnixSocketServing:
    def test_submit_matches_direct_backend_call(self, backend, estimator, tmp_path):
        rng = np.random.default_rng(7)
        frames = [make_frame(rng) for _ in range(3)]
        reference_server = PoseServer(
            estimator, ServeConfig(max_batch_size=1, gemm_block=8)
        )
        expected = [reference_server.submit("alice", frame) for frame in frames]

        async def scenario(client, frontend):
            return [await client.submit("alice", frame) for frame in frames]

        served = asyncio.run(run_frontend_scenario(backend, scenario)(tmp_path))
        for over_wire, direct in zip(served, expected):
            np.testing.assert_array_equal(over_wire, direct)

    def test_hello_ping_metrics_prometheus(self, backend, tmp_path):
        async def scenario(client, frontend):
            hello = await client.hello()
            assert hello["protocol"] == 2
            assert hello["protocols"] == [1, 2]
            assert CODEC_JSON in hello["codecs"]
            assert await client.ping()
            await client.submit("bob", make_frame(np.random.default_rng(0)))
            metrics = await client.metrics()
            assert metrics["completed"] == 1
            text = await client.prometheus()
            assert text.startswith("# HELP")
            assert frontend.requests_served >= 4

        asyncio.run(run_frontend_scenario(backend, scenario)(tmp_path))

    def test_concurrent_connections_all_answered(self, backend, tmp_path):
        async def scenario(_, frontend):
            async def one_user(user):
                async with AsyncPoseClient() as client:
                    await client.connect_unix(frontend.unix_path)
                    rng = np.random.default_rng(hash(user) % 2**32)
                    return [await client.submit(user, make_frame(rng)) for _ in range(2)]

            results = await asyncio.gather(*(one_user(f"user-{i}") for i in range(5)))
            assert all(joints.shape == (19, 3) for user in results for joints in user)
            assert frontend.connections_served >= 6

        asyncio.run(run_frontend_scenario(backend, scenario)(tmp_path))

    def test_remote_shutdown_when_enabled(self, backend, tmp_path):
        async def scenario(client, frontend):
            await client.shutdown()
            await asyncio.wait_for(frontend.serve_until_closed(), timeout=5)

        asyncio.run(
            run_frontend_scenario(backend, scenario, allow_remote_shutdown=True)(tmp_path)
        )

    def test_remote_shutdown_refused_by_default(self, backend, tmp_path):
        async def scenario(client, frontend):
            with pytest.raises(RuntimeError, match="shutdown is disabled"):
                await client.shutdown()
            assert await client.ping()  # connection stayed up

        asyncio.run(run_frontend_scenario(backend, scenario)(tmp_path))


class TestUnixSocketLifecycle:
    def test_socket_path_is_reusable_after_stop_and_after_stale_exit(
        self, backend, tmp_path
    ):
        """stop() unlinks the socket; start() clears a stale one."""

        async def body():
            path = str(tmp_path / "fuse.sock")
            import os

            for _ in range(2):  # clean restart on the same path
                frontend = PoseFrontend(backend, unix_path=path)
                await frontend.start()
                assert os.path.exists(path)
                await frontend.stop()
                assert not os.path.exists(path)

            # A stale socket left by a listener that never ran stop().
            crashed = PoseFrontend(backend, unix_path=path)
            await crashed.start()
            crashed._listener.close()
            await crashed._listener.wait_closed()
            crashed._listener = None  # skip stop()'s unlink: the file stays
            assert os.path.exists(path)
            fresh = PoseFrontend(backend, unix_path=path)
            await fresh.start()
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_unix(path)
                    assert await client.ping()
            finally:
                await fresh.stop()

        asyncio.run(body())

    def test_parallelism_defaults(self, backend, estimator, tmp_path):
        """Only a parallel-safe backend gets a multi-thread executor."""
        from repro.serve import ProcessShardedPoseServer, ShardedPoseServer

        assert PoseFrontend(backend, unix_path="unused").parallelism == 1
        sharded = ShardedPoseServer(estimator, num_shards=3)
        assert PoseFrontend(sharded, unix_path="unused").parallelism == 1
        with ProcessShardedPoseServer(estimator, num_shards=2) as process_backed:
            assert PoseFrontend(process_backed, unix_path="unused").parallelism == 2


class TestTcpServing:
    def test_tcp_round_trip_on_ephemeral_port(self, backend):
        async def body():
            frontend = PoseFrontend(backend, host="127.0.0.1", port=0)
            await frontend.start()
            host, port = frontend.address
            assert port != 0
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_tcp(host, port)
                    joints = await client.submit("carol", make_frame(np.random.default_rng(1)))
                    assert joints.shape == (19, 3)
            finally:
                await frontend.stop()

        asyncio.run(body())


class TestErrorPaths:
    def test_malformed_submit_reports_error_and_keeps_connection(self, backend, tmp_path):
        async def scenario(client, frontend):
            with pytest.raises(RuntimeError, match="ProtocolError"):
                await client.request({"type": "submit", "user": "dave"})  # no frame
            assert await client.ping()

        asyncio.run(run_frontend_scenario(backend, scenario)(tmp_path))

    def test_unservable_message_type_reports_error(self, backend, tmp_path):
        async def scenario(client, frontend):
            with pytest.raises(RuntimeError, match="cannot serve"):
                await client.request({"type": "prediction", "user": "x", "joints": 1})
            assert await client.ping()

        asyncio.run(run_frontend_scenario(backend, scenario)(tmp_path))

    def test_oversized_frame_closes_connection_with_error(self, backend, tmp_path):
        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(backend, unix_path=path, max_frame_bytes=512)
            await frontend.start()
            try:
                reader, writer = await asyncio.open_unix_connection(path)
                big = {"type": "submit", "user": "eve", "frame": {"points": np.zeros((500, 5))}}
                writer.write(encode_message(big, CODEC_JSON))
                await writer.drain()
                from repro.serve.transport import read_message

                reply = await read_message(reader)
                assert reply is not None and reply[0]["type"] == "error"
                assert "FrameTooLarge" in reply[0]["error"]
                assert await reader.read() == b""  # server hung up
                writer.close()
                await writer.wait_closed()
                assert frontend.protocol_errors == 1
            finally:
                await frontend.stop()

        asyncio.run(body())

"""The shared ``[prog] ready ...`` line: format/parse round-trips.

``fuse-serve`` prints it, ``fuse-router`` prints it *and* parses it from
spawned backends, the examples and the e2e tests parse it — one public
helper (`repro.serve.cli_utils`) instead of three copied regexes.
"""

from __future__ import annotations

import io

import pytest

from repro.serve import format_ready_line, parse_ready_line, wait_for_ready


class TestRoundTrip:
    def test_tcp(self):
        line = format_ready_line("fuse-serve", host="127.0.0.1", port=8707)
        assert line == "[fuse-serve] ready tcp=127.0.0.1:8707"
        address = parse_ready_line(line)
        assert address is not None
        assert (address.prog, address.kind) == ("fuse-serve", "tcp")
        assert (address.host, address.port) == ("127.0.0.1", 8707)
        assert address.path is None
        assert address.endpoint == "127.0.0.1:8707"

    def test_unix(self):
        line = format_ready_line("fuse-router", path="/tmp/fuse cluster/r.sock")
        # no spaces allowed in the parseable form
        with_space = parse_ready_line(line)
        assert with_space is None

        line = format_ready_line("fuse-router", path="/tmp/fuse.sock")
        address = parse_ready_line(line)
        assert address is not None
        assert (address.prog, address.kind) == ("fuse-router", "unix")
        assert address.path == "/tmp/fuse.sock"
        assert address.endpoint == "/tmp/fuse.sock"

    def test_trailing_newline_tolerated(self):
        assert parse_ready_line("[fuse-serve] ready tcp=localhost:1\n") is not None


class TestParseRejects:
    @pytest.mark.parametrize(
        "line",
        [
            "",
            "[fuse-serve] training on 540 synthetic frames...",
            "[fuse-serve] ready",
            "[fuse-serve] ready tcp=no-port",
            "ready tcp=127.0.0.1:8707",
            "[fuse-serve] ready tcp=127.0.0.1:8707 trailing-garbage",
        ],
    )
    def test_non_ready_lines(self, line):
        assert parse_ready_line(line) is None


class TestFormatValidation:
    def test_tcp_needs_host_and_port(self):
        with pytest.raises(ValueError):
            format_ready_line("fuse-serve", host="127.0.0.1")

    def test_path_wins_over_host(self):
        line = format_ready_line("fuse-serve", host="h", port=1, path="/tmp/x")
        assert parse_ready_line(line).kind == "unix"


class TestWaitForReady:
    def test_skips_progress_lines(self):
        stream = io.StringIO(
            "[fuse-serve] training on 540 synthetic frames...\n"
            "[fuse-serve] 2 process shard(s) listening on /tmp/fuse.sock\n"
            "[fuse-serve] ready unix=/tmp/fuse.sock\n"
        )
        address = wait_for_ready(stream)
        assert address.kind == "unix" and address.path == "/tmp/fuse.sock"

    def test_eof_reports_seen_output(self):
        stream = io.StringIO("some stacktrace line\n")
        with pytest.raises(RuntimeError, match="some stacktrace line"):
            wait_for_ready(stream)

    def test_line_budget_bounds_the_wait(self):
        stream = io.StringIO("noise\n" * 500)
        with pytest.raises(RuntimeError):
            wait_for_ready(stream, max_lines=10)

"""Tests of per-user sessions and streaming fusion windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.pointcloud import PointCloudFrame
from repro.serve import SessionManager, UserSession, streaming_window

from .conftest import make_frame


def frame_with_index(index: int) -> PointCloudFrame:
    points = np.full((2, 5), float(index))
    return PointCloudFrame(points, timestamp=index * 0.1, frame_index=index)


class TestStreamingWindow:
    def test_full_history_gives_causal_clamp(self):
        history = [frame_with_index(i) for i in range(5)]
        window = streaming_window(history, m=1)
        # Offsets -1, 0, +1 around the newest frame; the future offset clamps
        # to the newest frame itself.
        assert [f.frame_index for f in window] == [3, 4, 4]

    def test_short_history_clamps_to_oldest(self):
        history = [frame_with_index(0)]
        window = streaming_window(history, m=2)
        assert [f.frame_index for f in window] == [0, 0, 0, 0, 0]

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            streaming_window([], m=1)


class TestUserSession:
    def test_observe_returns_fused_window(self):
        session = UserSession(user_id="u", num_context_frames=1)
        first = session.observe(frame_with_index(0))
        assert first.num_points == 3 * 2  # the single frame repeated 3x
        second = session.observe(frame_with_index(1))
        # Window [0, 1, 1]: 2 + 2 + 2 points, centre metadata from frame 1.
        assert second.num_points == 6
        assert second.frame_index == 1
        assert second.timestamp == pytest.approx(0.1)

    def test_fusion_disabled_passes_frames_through(self):
        session = UserSession(user_id="u", num_context_frames=0)
        frame = frame_with_index(3)
        assert session.observe(frame) is frame

    def test_ring_is_bounded(self):
        session = UserSession(user_id="u", num_context_frames=1)
        for index in range(10):
            session.observe(frame_with_index(index))
        assert len(session) == 3  # 2M + 1
        assert [f.frame_index for f in session.history] == [7, 8, 9]
        assert session.frames_seen == 10

    def test_matches_offline_clamp_fusion_when_window_available(self, rng):
        """The streaming window for frame k equals the offline clamp window
        of a sequence that ends at k."""
        from repro.core.fusion import FrameFusion

        frames = [make_frame(rng) for _ in range(6)]
        session = UserSession(user_id="u", num_context_frames=1)
        streamed = [session.observe(frame) for frame in frames]
        # Offline, frame k's window is [k-1, k, k+1]; streaming clamps the
        # unavailable future frame to k, exactly as the offline clamp rule
        # does for a sequence that ends at k — so streaming fusion of frame k
        # equals the offline fusion of the prefix ending at k.
        for k in range(1, 6):
            prefix_fused = FrameFusion(num_context_frames=1).fuse_sequence(frames[: k + 1])
            np.testing.assert_array_equal(streamed[k].points, prefix_fused[k].points)


class TestSessionManager:
    def test_get_or_create_reuses_sessions(self):
        manager = SessionManager(num_context_frames=1)
        session = manager.get_or_create("alice")
        assert manager.get_or_create("alice") is session
        assert len(manager) == 1

    def test_lru_eviction_is_bounded_and_reported(self):
        evicted = []
        manager = SessionManager(max_sessions=2, on_evict=evicted.append)
        manager.get_or_create("a")
        manager.get_or_create("b")
        manager.get_or_create("a")  # refresh a; b is now least recent
        manager.get_or_create("c")
        assert len(manager) == 2
        assert [s.user_id for s in evicted] == ["b"]
        assert "a" in manager and "c" in manager

    def test_close(self):
        manager = SessionManager()
        manager.get_or_create("a")
        assert manager.close("a") is True
        assert manager.close("a") is False

"""Backpressure, queue-bound and scheduling tests of the serving layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import FakeClock, FrameDropped, PoseServer, QueueFull, ServeConfig

from .conftest import make_frame


@pytest.fixture
def clock() -> FakeClock:
    """A manually advanced clock, injected into the server under test."""
    return FakeClock()


def make_server(estimator, clock, **overrides) -> PoseServer:
    defaults = dict(max_batch_size=64, max_queue_depth=4, max_delay_ms=5.0)
    defaults.update(overrides)
    return PoseServer(estimator, ServeConfig(**defaults), clock=clock)


class TestDropOldest:
    def test_oldest_request_is_dropped_and_reported(self, estimator, clock, rng):
        server = make_server(estimator, clock)
        handles = [server.enqueue(f"u{i}", make_frame(rng)) for i in range(5)]
        assert server.pending == 4  # bounded: the 5th enqueue evicted the 1st
        assert handles[0].dropped
        server.flush()
        for handle in handles[1:]:
            assert handle.result(flush=False).shape == (19, 3)
        with pytest.raises(FrameDropped):
            handles[0].result()
        snapshot = server.metrics_snapshot()
        assert snapshot["dropped"] == 1
        assert snapshot["completed"] == 4

    def test_dropped_fraction_under_sustained_overload(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_queue_depth=8)
        handles = [server.enqueue(f"u{i % 3}", make_frame(rng)) for i in range(20)]
        server.flush()
        dropped = sum(1 for h in handles if h.dropped)
        completed = sum(1 for h in handles if h.done)
        assert dropped == 12 and completed == 8


class TestReject:
    def test_reject_policy_raises_on_overflow(self, estimator, clock, rng):
        server = make_server(estimator, clock, overflow="reject", max_queue_depth=2)
        server.enqueue("a", make_frame(rng))
        server.enqueue("b", make_frame(rng))
        with pytest.raises(QueueFull):
            server.enqueue("c", make_frame(rng))
        assert server.pending == 2
        server.flush()
        assert server.pending == 0

    def test_rejected_request_leaves_no_trace_in_the_session(self, estimator, clock, rng):
        """A rejected submission must not enter the user's fusion ring, or a
        retry would fuse the frame twice."""
        server = make_server(estimator, clock, overflow="reject", max_queue_depth=2)
        frame = make_frame(rng)
        server.enqueue("victim", frame)
        server.enqueue("other", make_frame(rng))
        frames_seen = server.sessions.get_or_create("victim").frames_seen
        with pytest.raises(QueueFull):
            server.enqueue("victim", make_frame(rng))
        assert server.sessions.get_or_create("victim").frames_seen == frames_seen
        assert "victim-new" not in server.sessions


class TestScheduling:
    def test_batch_full_triggers_immediate_flush(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_batch_size=3, max_queue_depth=100)
        handles = [server.enqueue(f"u{i}", make_frame(rng)) for i in range(3)]
        assert server.pending == 0  # the 3rd enqueue flushed the batch
        assert all(handle.done for handle in handles)

    def test_poll_respects_latency_deadline(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_batch_size=64, max_delay_ms=5.0)
        handle = server.enqueue("a", make_frame(rng))
        assert server.poll() == 0  # deadline not reached: batch keeps waiting
        assert not handle.done
        clock.advance(0.006)
        assert server.poll() == 1  # oldest request exceeded max_delay_ms
        assert handle.done

    def test_submit_is_synchronous_and_coalesces_pending(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_batch_size=64, max_queue_depth=100)
        waiting = [server.enqueue(f"u{i}", make_frame(rng)) for i in range(5)]
        prediction = server.submit("sync-user", make_frame(rng))
        assert prediction.shape == (19, 3)
        assert all(handle.done for handle in waiting)  # rode the same batch
        assert server.metrics_snapshot()["max_batch_seen"] == 6

    def test_result_forces_flush(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_batch_size=64, max_queue_depth=100)
        handle = server.enqueue("a", make_frame(rng))
        assert not handle.done
        assert handle.result().shape == (19, 3)

    def test_latency_is_measured_with_injected_clock(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_batch_size=64, max_queue_depth=100)
        server.enqueue("a", make_frame(rng))
        clock.advance(0.010)
        server.flush()
        snapshot = server.metrics_snapshot()
        assert snapshot["latency_p50_ms"] == pytest.approx(10.0)
        assert snapshot["latency_p95_ms"] == pytest.approx(10.0)


class TestSessionBounds:
    def test_session_eviction_is_counted(self, estimator, clock, rng):
        server = make_server(
            estimator, clock, max_sessions=2, max_batch_size=2, max_queue_depth=100
        )
        for index in range(4):
            server.enqueue(f"u{index}", make_frame(rng))
        server.flush()
        snapshot = server.metrics_snapshot()
        assert snapshot["sessions"] == 2
        assert snapshot["session_evictions"] == 2

    def test_forget_user_clears_session_and_adapter(self, estimator, clock, rng):
        server = make_server(estimator, clock, max_batch_size=2, max_queue_depth=100)
        server.submit("a", make_frame(rng))
        assert "a" in server.sessions
        server.forget_user("a")
        assert "a" not in server.sessions

    def test_predictions_unaffected_by_drops_of_other_users(self, estimator, clock, rng):
        """A served request's value does not depend on queue churn around it."""
        frame = make_frame(rng)
        calm = make_server(estimator, clock, max_queue_depth=100)
        value_calm = calm.submit("victim", frame)
        stormy = make_server(estimator, clock, max_queue_depth=2)
        stormy.enqueue("noise-1", make_frame(rng))
        stormy.enqueue("noise-2", make_frame(rng))
        handle = stormy.enqueue("victim", frame)  # drops noise-1
        stormy.flush()
        np.testing.assert_array_equal(value_calm, handle.result(flush=False))

"""Corrupted adapter spill files: checksum verification and quarantine.

The degradation contract: a spill archive that fails verification is moved
aside (``.quarantined``), counted, and the user transparently re-onboards
from the base model — serving never crashes and never silently loads
garbage parameters.  Checksum-less archives from the previous save format
keep loading (back compatibility), and spill writes stay atomic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.loader import ArrayDataset
from repro.nn.serialization import load_state, save_state, state_checksum
from repro.serve import (
    AdapterPolicy,
    AdapterRegistry,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PoseServer,
    ServeConfig,
    ServeMetrics,
)


@pytest.fixture(scope="module")
def calibration_sets(estimator, serve_dataset):
    arrays = estimator.prepare(serve_dataset[:32])
    return {
        f"user-{index}": ArrayDataset(
            arrays.features[index * 8 : (index + 1) * 8],
            arrays.labels[index * 8 : (index + 1) * 8],
        )
        for index in range(4)
    }


def _spilled_registry(estimator, calibration_sets, spill_dir, users=2):
    """A registry whose first adapted user has been demoted to warm."""
    policy = AdapterPolicy(scope="last", epochs=1, hot_capacity=1, spill_dir=spill_dir)
    registry = AdapterRegistry(estimator.model, policy=policy, metrics=ServeMetrics())
    for user in list(calibration_sets)[:users]:
        registry.adapt_user(user, calibration_sets[user])
    return registry


class TestChecksums:
    def test_spill_metadata_records_a_crc32(self, estimator, calibration_sets, tmp_path):
        registry = _spilled_registry(estimator, calibration_sets, tmp_path / "spill")
        warm_user = next(iter(calibration_sets))
        path = registry._spill_paths[warm_user]
        state, metadata = load_state(path)
        assert metadata["checksum"] == state_checksum(state)

    def test_checksum_is_key_order_independent(self):
        state = {"b": np.arange(4.0), "a": np.ones((2, 2))}
        assert state_checksum(state) == state_checksum(dict(reversed(state.items())))

    def test_atomic_write_leaves_no_temporaries(self, estimator, calibration_sets, tmp_path):
        spill = tmp_path / "spill"
        _spilled_registry(estimator, calibration_sets, spill)
        leftovers = [p for p in spill.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_checksum_less_legacy_archives_still_load(
        self, estimator, calibration_sets, tmp_path
    ):
        registry = _spilled_registry(estimator, calibration_sets, tmp_path / "spill")
        warm_user = next(iter(calibration_sets))
        expected = [p.copy() for p in registry.parameters_for(warm_user)]
        path = registry._spill_paths[warm_user]
        state, metadata = load_state(path)
        del metadata["checksum"]  # what a pre-checksum writer left behind
        save_state(state, path, metadata=metadata)

        reattached = AdapterRegistry(estimator.model, policy=registry.policy)
        got = reattached.parameters_for(warm_user)
        assert got is not None
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)


class TestQuarantine:
    def test_corrupt_spill_quarantines_on_promotion(
        self, estimator, calibration_sets, tmp_path
    ):
        registry = _spilled_registry(estimator, calibration_sets, tmp_path / "spill")
        warm_user, hot_user = list(calibration_sets)[:2]
        assert registry.tier_sizes() == {"hot": 1, "warm": 1, "cold": 0}
        path = registry._spill_paths[warm_user]
        FaultInjector().corrupt_file(path)

        assert registry.parameters_for(warm_user) is None  # no raise: degrade
        assert warm_user not in registry
        assert registry.tier_sizes()["cold"] == 1
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()
        assert registry.metrics.spill_quarantined == 1
        # the cohabiting hot user is untouched
        assert registry.parameters_for(hot_user) is not None

    def test_unreadable_spill_is_quarantined_at_attach(
        self, estimator, calibration_sets, tmp_path
    ):
        spill = tmp_path / "spill"
        registry = _spilled_registry(estimator, calibration_sets, spill)
        warm_user = next(iter(calibration_sets))
        path = registry._spill_paths[warm_user]
        path.write_bytes(path.read_bytes()[:40])  # torn mid-write by a crash

        metrics = ServeMetrics()
        reattached = AdapterRegistry(
            estimator.model, policy=registry.policy, metrics=metrics
        )
        assert warm_user not in reattached
        assert path.with_name(path.name + ".quarantined").exists()
        assert metrics.spill_quarantined == 1

    def test_quarantined_files_are_not_reattached(
        self, estimator, calibration_sets, tmp_path
    ):
        registry = _spilled_registry(estimator, calibration_sets, tmp_path / "spill")
        warm_user = next(iter(calibration_sets))
        FaultInjector().corrupt_file(registry._spill_paths[warm_user])
        assert registry.parameters_for(warm_user) is None

        again = AdapterRegistry(estimator.model, policy=registry.policy)
        assert warm_user not in again

    def test_import_user_bytes_verifies_the_checksum(
        self, estimator, calibration_sets, tmp_path
    ):
        registry = _spilled_registry(estimator, calibration_sets, tmp_path / "spill")
        user = next(iter(calibration_sets))
        blob = registry.export_user_bytes(user)
        mangled = FaultInjector.corrupt_bytes(blob, seed=1)
        fresh = AdapterRegistry(estimator.model, policy=registry.policy)
        with pytest.raises(Exception):
            fresh.import_user_bytes(user, mangled)
        fresh.import_user_bytes(user, blob)
        assert user in fresh


class TestTransparentReonboarding:
    def test_server_serves_base_model_after_quarantine(
        self, estimator, serve_dataset, tmp_path
    ):
        """The end-to-end degradation: a scheduled ``corrupt_spill`` fault
        mangles the first spill write; the user's next request silently
        falls back to the shared base parameters — same prediction as a
        never-adapted server — with only the counter betraying the fault."""
        from repro.serve import user_streams_from_dataset

        streams = user_streams_from_dataset(serve_dataset, num_users=4, frames_per_user=2)
        users = list(streams)
        plan = FaultPlan(rules=(FaultRule(op="corrupt_spill", target="spill", at=0),))
        policy = AdapterPolicy(
            scope="last", epochs=1, hot_capacity=1, spill_dir=tmp_path / "spill"
        )
        config = ServeConfig(max_batch_size=4, adapter=policy, fault_plan=plan)
        server = PoseServer(estimator, config)
        baseline = PoseServer(estimator, ServeConfig(max_batch_size=4))

        arrays = estimator.prepare(serve_dataset[:16])
        victim, evictor = users[0], users[1]
        server.adapt_user(victim, ArrayDataset(arrays.features, arrays.labels))
        server.adapt_user(evictor, ArrayDataset(arrays.features, arrays.labels))
        assert server.registry.tier_sizes()["warm"] == 1  # victim demoted

        frame = streams[victim][0].cloud
        got = server.submit(victim, frame)
        np.testing.assert_array_equal(got, baseline.submit(victim, frame))
        assert victim not in server.registry
        assert server.metrics.spill_quarantined == 1
        assert server.fault_injector.fired_count("corrupt_spill", "spill") == 1
        # the survivor still answers with its adapted parameters
        assert server.registry.parameters_for(evictor) is not None

"""The end-to-end chaos acceptance: one scripted schedule, three faults.

A routed replay over two backends survives — in one run — a browned-out
backend (blackholed replies tripping the router's per-request timeout and
retry budget), a hard backend crash with failover, and a corrupted adapter
spill file.  The run must complete bitwise-identical to the no-fault
reference for every mirror-covered user, with no ticket left hanging, no
fusion window double-fed into the failover mirror across retries, and
every degradation visible in exactly the counters the injectors' fired
ledgers predict.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np
import pytest

from repro.dataset.loader import ArrayDataset
from repro.serve import (
    AdapterPolicy,
    AsyncPoseClient,
    BackendSpec,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PoseFrontend,
    PoseRouter,
    PoseServer,
    RetryPolicy,
    ServeConfig,
)

from ..conftest import make_frame

LAZY = ServeConfig(max_batch_size=8, max_delay_ms=10_000.0)

#: user-6 and user-11 land on b1, the rest on b0 (pinned by test_ring.py's
#: determinism over a two-node ring)
USERS = [f"user-{i}" for i in (0, 1, 2, 3, 6, 11)]
B1_USERS = ["user-6", "user-11"]
STEPS = 6

#: immediate retries, three attempts: survives a two-reply blackhole
FORWARD_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


def make_streams():
    return {
        user: [make_frame(np.random.default_rng(1000 + 31 * i + j)) for j in range(STEPS)]
        for i, user in enumerate(USERS)
    }


def reference_replay(estimator, streams):
    server = PoseServer(estimator, LAZY)
    return {
        user: [server.submit(user, frame) for frame in frames]
        for user, frames in streams.items()
    }


class TestChaosReplay:
    @pytest.mark.slow
    def test_scripted_schedule_is_bitwise_invisible_outside_its_counters(
        self, estimator, serve_dataset, tmp_path
    ):
        streams = make_streams()
        expected = reference_replay(estimator, streams)

        # b0: a corrupt_spill rule mangles the very first spill write, so
        # the pre-adapted user-0 re-onboards from the base model — which is
        # exactly what the (unadapted) reference predicts.
        spill_plan = FaultPlan(rules=(FaultRule(op="corrupt_spill", target="spill", at=0),))
        b0_config = ServeConfig(
            max_batch_size=8,
            max_delay_ms=10_000.0,
            adapter=AdapterPolicy(
                scope="last", epochs=1, hot_capacity=1, spill_dir=tmp_path / "spill"
            ),
            fault_plan=spill_plan,
        )
        b0_server = PoseServer(estimator, b0_config)
        arrays = estimator.prepare(serve_dataset[:16])
        b0_server.adapt_user("user-0", ArrayDataset(arrays.features, arrays.labels))
        b0_server.adapt_user("padding-user", ArrayDataset(arrays.features, arrays.labels))
        assert b0_server.registry.tier_sizes()["warm"] == 1  # user-0 demoted

        # b1: after 2 clean steps (4 replies), blackhole two consecutive
        # submit replies — the brownout the router must ride out on its
        # timeout + retry budget without marking the backend down.
        b1_server = PoseServer(estimator, LAZY)
        b1_injector = FaultInjector(
            FaultPlan(rules=(FaultRule(op="blackhole", target="submit", at=4, count=2),))
        )

        async def body():
            b0_path, b1_path = str(tmp_path / "b0.sock"), str(tmp_path / "b1.sock")
            b0 = PoseFrontend(b0_server, unix_path=b0_path)
            b1 = PoseFrontend(b1_server, unix_path=b1_path, fault_injector=b1_injector)
            await b0.start()
            await b1.start()
            router = PoseRouter(
                [
                    BackendSpec(name="b0", unix_path=b0_path),
                    BackendSpec(name="b1", unix_path=b1_path),
                ],
                unix_path=str(tmp_path / "router.sock"),
                health_interval_s=0.05,
                health_timeout_s=0.5,
                health_failures=3,
                request_timeout_s=0.25,
                retry_policy=FORWARD_RETRY,
            )
            await router.start()
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_unix(str(tmp_path / "router.sock"))

                    async def step(index, users=USERS):
                        for user in users:
                            got = await client.submit(user, streams[user][index])
                            np.testing.assert_array_equal(got, expected[user][index])

                    # phase 1 — clean replay (and the spill quarantine on
                    # user-0's first gather, invisible in the outputs)
                    await step(0)
                    await step(1)
                    assert b0_server.metrics.spill_quarantined == 1

                    # phase 2 — brownout: user-6's submit is blackholed
                    # twice; the third attempt answers, bitwise
                    await step(2, users=["user-6"])
                    assert router.request_timeouts == 2
                    assert router.retries == 2
                    assert not router.monitor.is_down("b1")  # debounced
                    await step(2, users=[u for u in USERS if u != "user-6"])

                    # phase 3 — crash b1; the router marks it down and its
                    # users fail over to b0, sessions restored from the
                    # mirror
                    await b1.stop()
                    for _ in range(400):
                        await asyncio.sleep(0.01)
                        if router.monitor.is_down("b1"):
                            break
                    assert router.monitor.is_down("b1")
                    await step(3)
                    await step(4)
                    await step(5)

                    # no fusion window double-fed: despite the retried
                    # submits and the failover, the mirror holds each
                    # user's frames exactly once
                    for user in USERS:
                        mirrored = router.mirror.user_state(user)
                        assert mirrored["session"]["frames_seen"] == STEPS

                    # reconciliation — every degradation shows up in
                    # exactly the counters the fired ledgers predict
                    assert b1_injector.fired == [
                        ("blackhole", "submit", 4),
                        ("blackhole", "submit", 5),
                    ]
                    assert router.request_timeouts == b1_injector.fired_count("blackhole")
                    assert router.retries == b1_injector.fired_count("blackhole")
                    spill_injector = b0_server.fault_injector
                    assert spill_injector.fired == [("corrupt_spill", "spill", 0)]
                    assert b0_server.metrics.spill_quarantined == spill_injector.fired_count(
                        "corrupt_spill"
                    )
                    assert router.backends_lost == 1
                    assert router.users_failed_over == len(B1_USERS)
                    assert set(router._placement.values()) == {"b0"}

                    metrics = router.router_metrics()
                    assert metrics["router_request_timeouts"] == 2
                    assert metrics["router_retries"] == 2
                    exposition = router._router_exposition()
                    assert "fuse_router_request_timeouts_total 2" in exposition
                    assert "fuse_router_retries_total 2" in exposition
            finally:
                await router.stop()
                for frontend in (b0, b1):
                    with contextlib.suppress(Exception):
                        await frontend.stop()

        # the scenario itself is the no-hang assertion: every submit's
        # ticket must resolve inside the global deadline
        asyncio.run(asyncio.wait_for(body(), timeout=120))

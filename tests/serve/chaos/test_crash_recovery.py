"""Scheduled worker crashes: ticket resolution and spill-cohort re-attach.

The hardest case for the ticket invariant is a ``worker_crash`` fired in
the middle of an ``EnqueueBatch`` — a prefix of the batch is already
admitted inside the dying worker.  The contract: every parent-side ticket
resolves (done or dropped, never hung), the worker restarts under its
budget, and the restarted shard re-attaches its adapter spill cohort so
post-crash predictions are bitwise what they were before.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.loader import ArrayDataset
from repro.serve import (
    AdapterPolicy,
    FaultPlan,
    FaultRule,
    FrameDropped,
    ProcessShardedPoseServer,
    ServeConfig,
    ShardCrashed,
)

from ..conftest import make_frame

#: lazy batching so tickets stay parked until the test decides their fate
LAZY = dict(max_batch_size=64, max_delay_ms=10_000.0)


def users_on_shard(server, shard, count, tag="u"):
    """Deterministically named users that hash onto ``shard``."""
    found = []
    index = 0
    while len(found) < count:
        user = f"{tag}-{index}"
        if server.shard_index(user) == shard:
            found.append(user)
        index += 1
    return found


@pytest.fixture(scope="module")
def calibration(estimator, serve_dataset):
    arrays = estimator.prepare(serve_dataset[:16])
    return ArrayDataset(arrays.features, arrays.labels)


class TestCrashMidBatch:
    def test_every_admitted_ticket_resolves_and_spill_reattaches_bitwise(
        self, estimator, calibration, tmp_path
    ):
        # The 5th enqueued frame on shard 0 kills the worker: one warm-up
        # submit (occ 0), one parked enqueue (occ 1), then a 4-frame batch
        # (occ 2..5) dies on its third frame — admitted prefix of two.
        plan = FaultPlan(rules=(FaultRule(op="worker_crash", target="shard0", at=4),))
        policy = AdapterPolicy(
            scope="lora", rank=2, epochs=1, spill_dir=tmp_path / "spill"
        )
        with ProcessShardedPoseServer(
            estimator,
            num_shards=2,
            config=ServeConfig(fault_plan=plan, **LAZY),
            policy=policy,
            restart_sleep=lambda _delay: None,
        ) as server:
            adapted, streamer = users_on_shard(server, 0, 2)
            bystander = users_on_shard(server, 1, 1, tag="other")[0]
            frame = make_frame(np.random.default_rng(0))

            server.adapt_user(adapted, calibration)
            before = server.submit(adapted, frame)  # crash occurrence 0

            parked = server.enqueue(streamer, make_frame(np.random.default_rng(1)))
            witness = server.enqueue(bystander, make_frame(np.random.default_rng(2)))

            batch = [
                (streamer, make_frame(np.random.default_rng(10 + i))) for i in range(4)
            ]
            with pytest.raises(ShardCrashed):
                server.enqueue_many(batch)

            # every ticket the parent ever issued resolved — none hang
            assert parked.dropped
            with pytest.raises(FrameDropped, match="crashed"):
                parked.result(flush=False)
            assert server.workers[0].alive  # restarted under budget
            assert server.restarts == 1

            # the other shard never noticed: its parked ticket still lives
            assert not witness.done and not witness.dropped
            assert witness.result(flush=True).shape == (19, 3)

            # the restarted worker re-attached the spill cohort bitwise
            after = server.submit(adapted, frame)
            np.testing.assert_array_equal(after, before)
            assert server.metrics_snapshot()["shard_restarts"] == 1

    def test_crash_on_a_single_enqueue_leaves_no_orphaned_tickets(
        self, estimator, tmp_path
    ):
        plan = FaultPlan(rules=(FaultRule(op="worker_crash", target="shard0", at=1),))
        with ProcessShardedPoseServer(
            estimator,
            num_shards=2,
            config=ServeConfig(fault_plan=plan, **LAZY),
            restart_sleep=lambda _delay: None,
        ) as server:
            victim, second = users_on_shard(server, 0, 2)
            parked = server.enqueue(victim, make_frame(np.random.default_rng(0)))
            with pytest.raises(ShardCrashed):
                server.enqueue(second, make_frame(np.random.default_rng(1)))

            assert parked.done or parked.dropped
            assert server.pending == 0  # nothing left that could hang
            assert server.restarts == 1
            # fresh worker serves the same users again
            assert server.submit(victim, make_frame(np.random.default_rng(2))).shape == (
                19,
                3,
            )

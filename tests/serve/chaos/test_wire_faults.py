"""Scripted wire faults at the socket front-end: blackholes, latency,
corrupted and truncated reply frames.

The protocol contract under fire: a blackholed reply hangs only its own
request (the pipelined window slot is released — the connection keeps
serving), a corrupted payload fails *decoding* on the peer while the
stream framing survives, and a truncated frame hangs up mid-frame.  All
of it scheduled by occurrence counters, none of it by time.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncPoseClient,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PoseFrontend,
    PoseServer,
    ServeConfig,
)
from repro.serve.transport import WireError

from ..conftest import make_frame

LAZY = ServeConfig(max_batch_size=8, max_delay_ms=10_000.0)


def run_frontend(server, plan, scenario, tmp_path):
    """Serve ``server`` behind a faulted front-end; run ``scenario``.

    ``scenario(client, injector, path)`` gets a connected client plus the
    injector whose fired ledger the test reconciles against.
    """
    injector = FaultInjector(plan)

    async def body():
        path = str(tmp_path / "faulted.sock")
        frontend = PoseFrontend(server, unix_path=path, fault_injector=injector)
        await frontend.start()
        try:
            async with AsyncPoseClient() as client:
                await client.connect_unix(path)
                return await scenario(client, injector, path)
        finally:
            await frontend.stop()

    return asyncio.run(asyncio.wait_for(body(), timeout=30))


class TestBlackhole:
    def test_swallowed_reply_hangs_only_its_own_request(self, estimator, tmp_path):
        server = PoseServer(estimator, LAZY)
        reference = PoseServer(estimator, LAZY)
        plan = FaultPlan(rules=(FaultRule(op="blackhole", target="submit", at=0),))
        frames = [make_frame(np.random.default_rng(i)) for i in range(4)]

        async def scenario(client, injector, path):
            doomed = asyncio.create_task(client.submit("alice", frames[0]))
            while injector.occurrences("blackhole", "submit") < 1:
                await asyncio.sleep(0)
            # the connection (and its pipelined window) keeps serving
            for index, frame in enumerate(frames[1:], start=1):
                got = await client.submit("bob", frame)
                np.testing.assert_array_equal(got, reference.submit("bob", frame))
            assert not doomed.done()
            doomed.cancel()
            assert injector.fired == [("blackhole", "submit", 0)]

        run_frontend(server, plan, scenario, tmp_path)

    def test_blackholed_ping_leaves_later_pings_alone(self, estimator, tmp_path):
        server = PoseServer(estimator, LAZY)
        plan = FaultPlan(rules=(FaultRule(op="blackhole", target="ping", at=0),))

        async def scenario(client, injector, path):
            doomed = asyncio.create_task(client.request({"type": "ping"}))
            while injector.occurrences("blackhole", "ping") < 1:
                await asyncio.sleep(0)
            assert await client.ping()
            assert not doomed.done()
            doomed.cancel()

        run_frontend(server, plan, scenario, tmp_path)


class TestReplyLatency:
    def test_delayed_reply_is_still_bitwise_correct(self, estimator, tmp_path):
        server = PoseServer(estimator, LAZY)
        reference = PoseServer(estimator, LAZY)
        plan = FaultPlan(
            rules=(FaultRule(op="reply_latency", target="submit", at=0, delay_s=0.05),)
        )
        frame = make_frame(np.random.default_rng(7))

        async def scenario(client, injector, path):
            got = await client.submit("alice", frame)
            np.testing.assert_array_equal(got, reference.submit("alice", frame))
            assert injector.fired == [("reply_latency", "submit", 0)]

        run_frontend(server, plan, scenario, tmp_path)


class TestFrameCorruption:
    def test_corrupted_reply_fails_decoding_on_the_peer(self, estimator, tmp_path):
        server = PoseServer(estimator, LAZY)
        plan = FaultPlan(rules=(FaultRule(op="corrupt_frame", target="prediction", at=0),))
        frames = [make_frame(np.random.default_rng(i)) for i in range(2)]

        async def scenario(client, injector, path):
            with pytest.raises((WireError, ConnectionError, RuntimeError)):
                await client.submit("alice", frames[0])
            assert injector.fired == [("corrupt_frame", "prediction", 0)]
            # the server survives: a fresh connection serves normally
            async with AsyncPoseClient() as second:
                await second.connect_unix(path)
                assert (await second.submit("alice", frames[1])).shape == (19, 3)

        run_frontend(server, plan, scenario, tmp_path)

    def test_truncated_reply_surfaces_as_a_torn_frame(self, estimator, tmp_path):
        server = PoseServer(estimator, LAZY)
        plan = FaultPlan(rules=(FaultRule(op="truncate_frame", target="prediction", at=0),))
        frames = [make_frame(np.random.default_rng(i + 10)) for i in range(2)]

        async def scenario(client, injector, path):
            with pytest.raises((WireError, ConnectionError)):
                await client.submit("alice", frames[0])
            assert injector.fired == [("truncate_frame", "prediction", 0)]
            async with AsyncPoseClient() as second:
                await second.connect_unix(path)
                assert (await second.submit("alice", frames[1])).shape == (19, 3)

        run_frontend(server, plan, scenario, tmp_path)

    def test_reconnecting_client_rides_through_a_torn_frame(self, estimator, tmp_path):
        """The unified dial policy in anger: the reader dies on the torn
        frame, and the next request re-dials with the remembered policy."""
        server = PoseServer(estimator, LAZY)
        plan = FaultPlan(rules=(FaultRule(op="truncate_frame", target="prediction", at=0),))
        frames = [make_frame(np.random.default_rng(i + 20)) for i in range(2)]

        async def scenario(client, injector, path):
            async with AsyncPoseClient(reconnect=True) as sticky:
                await sticky.connect_unix(path)
                with pytest.raises((WireError, ConnectionError)):
                    await sticky.submit("alice", frames[0])
                assert (await sticky.submit("alice", frames[1])).shape == (19, 3)
                assert sticky.reconnects == 1

        run_frontend(server, plan, scenario, tmp_path)

"""Deadline shedding, brownout accounting, and the unified dial policy.

The deadline contract: a request whose ``deadline_ms`` budget is already
spent when it reaches a server is shed *before* admission — no session
observe, no fusion-ring trace, no computation — and counted.  The router
decrements the budget by its own elapsed time, clamped at zero, so a
blown budget arrives as exactly ``0``.  Brownout detection feeds
request-path timeouts into the health monitor's debounced streak.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncPoseClient,
    FrameDropped,
    HealthMonitor,
    PoseRouter,
    PoseServer,
    RetryPolicy,
    ServeConfig,
)

from ..conftest import make_frame

LAZY = ServeConfig(max_batch_size=8, max_delay_ms=10_000.0)


class TestDeadlineShedding:
    def test_spent_budget_is_shed_before_admission(self, estimator):
        server = PoseServer(estimator, LAZY)
        frame = make_frame(np.random.default_rng(0))
        with pytest.raises(FrameDropped, match="deadline exhausted"):
            server.enqueue("alice", frame, deadline_ms=0.0)
        assert server.metrics.deadline_shed == 1
        # shed strictly before admission: no session, no queued request
        assert len(server.sessions) == 0
        assert server.pending == 0

    def test_negative_deadline_is_still_a_caller_error(self, estimator):
        server = PoseServer(estimator, LAZY)
        with pytest.raises(ValueError, match="non-negative"):
            server.enqueue("alice", make_frame(np.random.default_rng(1)), deadline_ms=-5)
        assert server.metrics.deadline_shed == 0

    def test_live_budget_serves_normally(self, estimator):
        server = PoseServer(estimator, LAZY)
        handle = server.enqueue(
            "alice", make_frame(np.random.default_rng(2)), deadline_ms=60_000.0
        )
        assert handle.result(flush=True).shape == (19, 3)
        assert server.metrics.deadline_shed == 0

    def test_shed_is_counted_in_the_prometheus_exposition(self, estimator):
        server = PoseServer(estimator, LAZY)
        with pytest.raises(FrameDropped):
            server.enqueue("alice", make_frame(np.random.default_rng(3)), deadline_ms=0)
        assert "fuse_serve_deadline_shed_total 1" in server.metrics.to_prometheus()


class _FrozenLoop:
    """A stand-in event loop whose clock the test owns."""

    def __init__(self, now: float) -> None:
        self.now = now

    def time(self) -> float:
        return self.now


class TestDeadlinePropagation:
    def test_remaining_deadline_decrements_by_elapsed_time(self):
        loop = _FrozenLoop(10.0)
        assert PoseRouter._remaining_deadline(None, 10.0, loop) is None
        assert PoseRouter._remaining_deadline(500.0, 10.0, loop) == 500.0
        loop.now = 10.2  # 200ms spent queueing/retrying inside the router
        assert PoseRouter._remaining_deadline(500.0, 10.0, loop) == pytest.approx(300.0)

    def test_blown_budget_clamps_to_zero_not_negative(self):
        loop = _FrozenLoop(11.0)  # a full second late on a 100ms budget
        assert PoseRouter._remaining_deadline(100.0, 10.0, loop) == 0.0


class TestBrownoutStreaks:
    def run(self, coro):
        return asyncio.run(coro)

    def test_request_timeouts_feed_the_probe_streak(self):
        downs: list = []

        async def scenario():
            monitor = HealthMonitor(
                probe=lambda name: asyncio.sleep(0, result=True),
                failure_threshold=3,
                on_down=downs.append,
            )
            monitor.watch("b0")
            assert not await monitor.record_failure("b0")
            assert not await monitor.record_failure("b0")
            assert await monitor.record_failure("b0")  # third crosses
            assert monitor.is_down("b0")

        self.run(scenario())
        assert downs == ["b0"]

    def test_success_resets_the_streak_but_never_undowns(self):
        async def scenario():
            monitor = HealthMonitor(
                probe=lambda name: asyncio.sleep(0, result=True), failure_threshold=2
            )
            monitor.watch("b0")
            await monitor.record_failure("b0")
            monitor.record_success("b0")  # streak back to zero
            await monitor.record_failure("b0")
            assert not monitor.is_down("b0")
            await monitor.record_failure("b0")
            assert monitor.is_down("b0")
            monitor.record_success("b0")  # a lucky request must not re-admit
            assert monitor.is_down("b0")

        self.run(scenario())

    def test_unwatched_names_are_ignored(self):
        async def scenario():
            monitor = HealthMonitor(
                probe=lambda name: asyncio.sleep(0, result=True), failure_threshold=1
            )
            assert not await monitor.record_failure("ghost")
            assert not monitor.is_down("ghost")

        self.run(scenario())


class TestUnifiedDialPolicy:
    def test_legacy_knobs_translate_to_a_retry_policy(self):
        policy = AsyncPoseClient._dial_policy_from(3, 0.05, 1.0, None)
        assert policy == RetryPolicy(max_attempts=4, base_delay_s=0.05, max_delay_s=1.0)
        # the legacy schedule was backoff_s doubled per attempt, capped
        assert policy.delays() == [0.05, 0.1, 0.2]

    def test_explicit_policy_wins_over_knobs(self):
        custom = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)
        assert AsyncPoseClient._dial_policy_from(9, 9.0, 9.0, custom) is custom

    def test_legacy_knob_validation_survives(self):
        with pytest.raises(ValueError, match="retries"):
            AsyncPoseClient._dial_policy_from(-1, 0.05, 1.0, None)
        with pytest.raises(ValueError, match="positive"):
            AsyncPoseClient._dial_policy_from(0, 0.0, 1.0, None)

    def test_connect_error_reports_the_attempt_budget(self, tmp_path):
        async def scenario():
            client = AsyncPoseClient()
            with pytest.raises(ConnectionError, match="after 2 attempt"):
                await client.connect_unix(
                    str(tmp_path / "nobody-home.sock"),
                    retry_policy=RetryPolicy(
                        max_attempts=2, base_delay_s=0.0, max_delay_s=0.0
                    ),
                )

        asyncio.run(scenario())

    def test_router_default_forward_retry_is_one_immediate_retry(self):
        from repro.serve.router import DEFAULT_FORWARD_RETRY

        assert DEFAULT_FORWARD_RETRY.max_attempts == 2
        assert DEFAULT_FORWARD_RETRY.delays() == [0.0]

"""The fault-injection substrate itself: plans, rules, injector, retries.

Everything here is pure determinism plumbing — no sockets, no processes,
no clocks.  If these invariants hold, a chaos schedule replays identically
on any machine at any speed, which is what makes the end-to-end scenarios
in this package assertable at all.
"""

from __future__ import annotations

import pickle

import pytest

from repro.serve import FaultInjector, FaultPlan, FaultRule, RetryPolicy, maybe_injector
from repro.serve.faults import FAULT_OPS


class TestFaultRule:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultRule(op="meteor_strike")

    def test_rejects_negative_at_and_zero_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultRule(op="blackhole", at=-1)
        with pytest.raises(ValueError, match="count"):
            FaultRule(op="blackhole", count=0)

    def test_reply_latency_requires_a_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule(op="reply_latency", target="submit")
        FaultRule(op="reply_latency", target="submit", delay_s=0.01)

    def test_matching_window_is_at_plus_count(self):
        rule = FaultRule(op="blackhole", target="submit", at=2, count=3)
        fired = [rule.matches("submit", occurrence) for occurrence in range(7)]
        assert fired == [False, False, True, True, True, False, False]

    def test_count_none_fires_forever_from_at(self):
        rule = FaultRule(op="blackhole", target="submit", at=4, count=None)
        assert not rule.matches("submit", 3)
        assert all(rule.matches("submit", occurrence) for occurrence in (4, 100, 10_000))

    def test_wildcard_target_matches_any_site(self):
        rule = FaultRule(op="worker_crash", target="*", at=0)
        assert rule.matches("shard0", 0)
        assert rule.matches("shard7", 0)
        assert not FaultRule(op="worker_crash", target="shard0").matches("shard1", 0)


class TestFaultPlan:
    def test_round_trips_through_dict_json_and_pickle(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule(op="worker_crash", target="shard0", at=5),
                FaultRule(op="reply_latency", target="submit", at=1, count=2, delay_s=0.25),
                FaultRule(op="blackhole", target="ping", at=0, count=None),
            )
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"rules": [], "when": "now"})
        with pytest.raises(ValueError, match="unknown FaultRule fields"):
            FaultPlan.from_dict({"rules": [{"op": "blackhole", "frequency": 2}]})

    def test_empty_plan_is_falsy_and_cheap(self):
        assert not FaultPlan.none()
        assert maybe_injector(FaultPlan.none()) is None
        assert maybe_injector(None) is None

    def test_for_op_filters_and_with_rule_appends(self):
        plan = FaultPlan().with_rule(FaultRule(op="blackhole", target="submit"))
        plan = plan.with_rule(FaultRule(op="corrupt_spill", target="spill"))
        assert [rule.op for rule in plan.for_op("blackhole")] == ["blackhole"]
        assert len(plan.rules) == 2


class TestFaultInjector:
    def plan(self):
        return FaultPlan(rules=(FaultRule(op="blackhole", target="submit", at=1),))

    def test_counter_advances_on_every_check_fired_or_not(self):
        injector = FaultInjector(self.plan())
        outcomes = [injector.check("blackhole", "submit") for _ in range(4)]
        assert [outcome is not None for outcome in outcomes] == [False, True, False, False]
        assert injector.occurrences("blackhole", "submit") == 4
        assert injector.fired == [("blackhole", "submit", 1)]

    def test_sites_count_independently(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(op="worker_crash", target="shard1", at=0),))
        )
        assert injector.check("worker_crash", "shard0") is None
        assert injector.check("worker_crash", "shard1") is not None
        assert injector.occurrences("worker_crash", "shard0") == 1
        assert injector.occurrences("worker_crash", "shard1") == 1

    def test_fired_count_slices_the_ledger(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(op="blackhole", target="*", at=0, count=None),))
        )
        injector.check("blackhole", "submit")
        injector.check("blackhole", "ping")
        injector.check("blackhole", "submit")
        assert injector.fired_count("blackhole") == 3
        assert injector.fired_count("blackhole", "submit") == 2
        assert injector.fired_count("worker_crash") == 0

    def test_empty_plan_short_circuits_without_counting(self):
        injector = FaultInjector()
        assert injector.check("blackhole", "submit") is None
        assert injector.occurrences("blackhole", "submit") == 0
        assert not injector

    def test_unknown_op_is_a_programming_error(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            FaultInjector().check("cosmic_ray", "submit")

    def test_maybe_injector_passthrough_shares_the_ledger(self):
        shared = FaultInjector(self.plan())
        assert maybe_injector(None, shared) is shared
        assert maybe_injector(self.plan()) is not shared


class TestByteMangling:
    def test_corrupt_bytes_is_deterministic_and_spares_the_header(self):
        data = bytes(range(200))
        mangled = FaultInjector.corrupt_bytes(data, seed=3)
        assert mangled == FaultInjector.corrupt_bytes(data, seed=3)
        assert mangled != data
        assert len(mangled) == len(data)
        # offsets are drawn from the second half, so a 5-byte wire header
        # (and anything else up front) survives intact
        assert mangled[: len(data) // 2] == data[: len(data) // 2]

    def test_corrupt_bytes_differs_across_seeds(self):
        data = bytes(range(200))
        assert FaultInjector.corrupt_bytes(data, seed=0) != FaultInjector.corrupt_bytes(
            data, seed=1
        )

    def test_tiny_buffers_are_still_mangled(self):
        assert FaultInjector.corrupt_bytes(b"\x00") != b"\x00"

    def test_truncate_bytes_halves_but_keeps_at_least_one(self):
        assert FaultInjector.truncate_bytes(bytes(100)) == bytes(50)
        assert FaultInjector.truncate_bytes(b"x") == b"x"

    def test_corrupt_file_mangles_in_place(self, tmp_path):
        path = tmp_path / "spill.npz"
        original = bytes(range(256))
        path.write_bytes(original)
        FaultInjector().corrupt_file(path, seed=7)
        assert path.read_bytes() != original
        assert len(path.read_bytes()) == len(original)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(-1)

    def test_exponential_backoff_is_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_zero_delay_policy_is_valid(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)
        assert policy.delays() == [0.0, 0.0]

    def test_jitter_is_deterministic_per_seed_salt_attempt(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter=0.5, seed=11)
        assert policy.delay(1, salt="user-a") == policy.delay(1, salt="user-a")
        assert policy.delay(1, salt="user-a") != policy.delay(1, salt="user-b")
        reseeded = RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter=0.5, seed=12)
        assert policy.delay(1, salt="user-a") != reseeded.delay(1, salt="user-a")

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(max_attempts=8, base_delay_s=0.2, jitter=0.25, seed=0)
        for attempt in range(policy.max_attempts - 1):
            base = min(
                policy.base_delay_s * policy.multiplier**attempt, policy.max_delay_s
            )
            assert base * (1 - policy.jitter) <= policy.delay(attempt, "s") <= base

    def test_round_trips_through_dict(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.02, max_delay_s=0.8, multiplier=3.0,
            jitter=0.1, seed=42,
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ValueError, match="unknown RetryPolicy fields"):
            RetryPolicy.from_dict({"max_attempts": 2, "retries": 9})

    def test_none_means_a_single_attempt(self):
        policy = RetryPolicy.none()
        assert policy.max_attempts == 1
        assert policy.delays() == []


def test_every_fault_op_is_documented_in_the_module_docstring():
    import repro.serve.faults as faults

    for op in FAULT_OPS:
        assert op in faults.__doc__

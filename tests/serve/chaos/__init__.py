"""Scenario harness replaying scripted fault schedules end to end.

Every test in this package drives the serving tier through a
:class:`repro.serve.FaultPlan` — deterministic, occurrence-counted fault
schedules with no wall-clock dependence — and asserts the robustness
contract: every admitted ticket resolves (no hangs), recovery is bitwise
where the mirror guarantees it, and degradation is visible only through
the metrics counters that the injector's fired ledger predicts.
"""

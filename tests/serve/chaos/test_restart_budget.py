"""Shard restart budgets: capped backoff, degradation, and its visibility.

A crash-looping worker must not spin the host (restarts are paced by the
unified :class:`RetryPolicy`) and must not loop forever (``max_restarts``);
past the budget the shard is *degraded* — it stays down, keeps its error
surface (:class:`ShardDegraded`), and the condition is observable through
the ``shards_degraded`` gauge and the front-end's ``ping`` reply so a
router can drain the backend's users to replicas.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncPoseClient,
    PoseFrontend,
    PoseServer,
    ProcessShardedPoseServer,
    RetryPolicy,
    ServeConfig,
    ShardCrashed,
    ShardDegraded,
)

from ..conftest import make_frame

BACKOFF = RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05, multiplier=2.0)


@pytest.fixture()
def crashy(estimator):
    """One shard, one restart allowed, recorded (never slept) backoff."""
    sleeps: list = []
    server = ProcessShardedPoseServer(
        estimator,
        num_shards=1,
        config=ServeConfig(max_batch_size=4),
        max_restarts=1,
        restart_backoff=BACKOFF,
        restart_sleep=sleeps.append,
    )
    try:
        yield server, sleeps
    finally:
        server.close()


class TestRestartBudget:
    def test_restart_paces_with_the_retry_policy(self, crashy):
        server, sleeps = crashy
        frame = make_frame(np.random.default_rng(0))
        assert server.submit("alice", frame).shape == (19, 3)

        server.workers[0]._process.kill()
        with pytest.raises(ShardCrashed):
            server.submit("alice", frame)
        assert server.restarts == 1
        assert sleeps == [BACKOFF.delay(0, salt="shard0")]
        assert server.submit("alice", frame).shape == (19, 3)  # recovered

    def test_exhausted_budget_degrades_instead_of_crash_looping(self, crashy):
        server, _ = crashy
        frame = make_frame(np.random.default_rng(1))
        server.submit("alice", frame)

        server.workers[0]._process.kill()
        with pytest.raises(ShardCrashed):
            server.submit("alice", frame)
        server.workers[0]._process.kill()
        with pytest.raises(ShardCrashed):
            server.submit("alice", frame)

        # budget spent: the worker stays down and every call degrades
        assert server.restarts == 1
        assert server.workers[0].restart_budget_exhausted
        assert server.workers[0].degraded
        assert server.degraded
        assert server.degraded_shards == [0]
        with pytest.raises(ShardDegraded, match="restart budget"):
            server.submit("alice", frame)
        with pytest.raises(ShardDegraded, match="not restarting"):
            server.workers[0].restart()

    def test_degradation_is_observable_in_metrics(self, crashy):
        server, _ = crashy
        frame = make_frame(np.random.default_rng(2))
        server.submit("alice", frame)
        for _ in range(2):
            server.workers[0]._process.kill()
            with pytest.raises(ShardCrashed):
                server.submit("alice", frame)

        snapshot = server.metrics_snapshot()
        assert snapshot["shards_degraded"] == 1
        assert snapshot["shard_restarts"] == 1
        exposition = server.to_prometheus()
        assert "fuse_serve_shards_degraded" in exposition
        assert 'shard="supervisor"' in exposition
        assert "fuse_serve_restarts_total" in exposition


class TestDegradedPing:
    def test_pong_carries_the_degraded_flag(self, crashy, tmp_path):
        """A router health probe treats a degraded pong as a failure, so a
        partially dead backend is drained like a wholly dead one."""
        server, _ = crashy
        frame = make_frame(np.random.default_rng(3))
        server.submit("alice", frame)
        for _ in range(2):
            server.workers[0]._process.kill()
            with pytest.raises(ShardCrashed):
                server.submit("alice", frame)
        assert server.degraded

        async def scenario():
            frontend = PoseFrontend(server, unix_path=str(tmp_path / "degraded.sock"))
            await frontend.start()
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_unix(str(tmp_path / "degraded.sock"))
                    return await client.request({"type": "ping"})
            finally:
                await frontend.stop()

        reply = asyncio.run(scenario())
        assert reply["type"] == "pong"
        assert reply["degraded"] is True

    def test_healthy_pong_has_no_degraded_field(self, estimator, tmp_path):
        server = PoseServer(estimator, ServeConfig(max_batch_size=4))

        async def scenario():
            frontend = PoseFrontend(server, unix_path=str(tmp_path / "healthy.sock"))
            await frontend.start()
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_unix(str(tmp_path / "healthy.sock"))
                    return await client.request({"type": "ping"})
            finally:
                await frontend.stop()

        reply = asyncio.run(scenario())
        assert reply["type"] == "pong"
        assert "degraded" not in reply

"""Tests of the batch-invariant shared-parameter inference kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import PoseCNN
from repro.serve import SharedParameterKernel

from .conftest import make_frame


@pytest.fixture(scope="module")
def model():
    return PoseCNN(seed=3)


@pytest.fixture(scope="module")
def kernel(model):
    return SharedParameterKernel(model, block=16)


class TestBatchInvariance:
    def test_single_frame_equals_full_batch_bitwise(self, model, kernel, rng):
        """The property micro-batching rests on: batch composition is invisible."""
        features = rng.normal(size=(37, 5, 8, 8))
        full = kernel.predict(features)
        solo = np.concatenate([kernel.predict(features[i : i + 1]) for i in range(37)])
        np.testing.assert_array_equal(full, solo)

    def test_arbitrary_split_points_are_bitwise_identical(self, kernel, rng):
        features = rng.normal(size=(23, 5, 8, 8))
        full = kernel.predict(features)
        pieces = np.concatenate(
            [kernel.predict(features[:5]), kernel.predict(features[5:16]), kernel.predict(features[16:])]
        )
        np.testing.assert_array_equal(full, pieces)

    def test_neighbours_do_not_leak(self, kernel, rng):
        """A frame's prediction is independent of its co-riders' content."""
        features = rng.normal(size=(16, 5, 8, 8))
        others = rng.normal(size=(16, 5, 8, 8))
        mixed = others.copy()
        mixed[7] = features[7]
        np.testing.assert_array_equal(kernel.predict(features)[7], kernel.predict(mixed)[7])

    def test_matches_model_forward_numerically(self, model, kernel, rng):
        """Same mathematics as the training forward, different BLAS kernels."""
        features = rng.normal(size=(12, 5, 8, 8))
        np.testing.assert_allclose(
            kernel.predict(features), model.predict(features), rtol=1e-9, atol=1e-12
        )

    def test_predict_joints_shape(self, kernel, rng):
        joints = kernel.predict_joints(rng.normal(size=(4, 5, 8, 8)))
        assert joints.shape == (4, 19, 3)

    def test_empty_batch(self, kernel):
        assert kernel.predict(np.zeros((0, 5, 8, 8))).shape == (0, 57)


class TestConstruction:
    def test_explicit_parameters_override_model_state(self, model, rng):
        parameters = [rng.normal(size=p.data.shape) for p in model.parameters()]
        kernel = SharedParameterKernel(model, parameters=parameters, block=4)
        default = SharedParameterKernel(model, block=4)
        features = rng.normal(size=(3, 5, 8, 8))
        assert not np.allclose(kernel.predict(features), default.predict(features))

    def test_snapshot_isolates_from_later_model_mutation(self, rng):
        model = PoseCNN(seed=8)
        kernel = SharedParameterKernel(model, block=4)
        features = rng.normal(size=(2, 5, 8, 8))
        before = kernel.predict(features)
        for param in model.parameters():
            param.data += 1.0
        np.testing.assert_array_equal(kernel.predict(features), before)

    def test_rejects_width_one_blocks(self, model):
        with pytest.raises(ValueError, match="block"):
            SharedParameterKernel(model, block=1)

    def test_rejects_wrong_parameter_count(self, model):
        with pytest.raises(ValueError, match="parameters"):
            SharedParameterKernel(model, parameters=[np.zeros((1,))], block=4)

    def test_dropout_model_is_servable(self, rng):
        """Dropout is identity at inference, so a dropout-regularized model
        must compile — and a PoseServer must accept it for base traffic."""
        from repro.core import FuseConfig, FusePoseEstimator
        from repro.core.models import PoseCNNConfig
        from repro.serve import PoseServer, ServeConfig

        model = PoseCNN(PoseCNNConfig(dropout=0.3), seed=1)
        model.eval()
        kernel = SharedParameterKernel(model, block=4)
        features = rng.normal(size=(3, 5, 8, 8))
        np.testing.assert_allclose(
            kernel.predict(features), model.predict(features), rtol=1e-9, atol=1e-12
        )
        server = PoseServer(
            FusePoseEstimator(FuseConfig(), model=model), ServeConfig(max_batch_size=4)
        )
        assert server.submit("u", make_frame(rng)).shape == (19, 3)

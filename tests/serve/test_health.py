"""HealthMonitor: debounced down/up transitions driven by fake probes."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import HealthMonitor


class FakeFleet:
    """A scriptable probe target set: per-name health, failure modes."""

    def __init__(self, **health):
        self.health = dict(health)
        self.probed: list = []

    async def probe(self, name: str) -> bool:
        self.probed.append(name)
        state = self.health[name]
        if state == "raise":
            raise ConnectionError("backend gone")
        if state == "hang":
            await asyncio.sleep(60)
        return bool(state)


def run(coro):
    return asyncio.run(coro)


class TestDebounce:
    def test_one_failure_is_not_down(self):
        fleet = FakeFleet(b1=False)

        async def body():
            monitor = HealthMonitor(fleet.probe, failure_threshold=3)
            monitor.watch("b1")
            await monitor.check_now()
            await monitor.check_now()
            assert not monitor.is_down("b1")
            await monitor.check_now()
            assert monitor.is_down("b1")

        run(body())

    def test_success_resets_the_streak(self):
        fleet = FakeFleet(b1=False)

        async def body():
            monitor = HealthMonitor(fleet.probe, failure_threshold=2)
            monitor.watch("b1")
            await monitor.check_now()
            fleet.health["b1"] = True
            await monitor.check_now()  # streak resets
            fleet.health["b1"] = False
            await monitor.check_now()
            assert not monitor.is_down("b1")
            await monitor.check_now()
            assert monitor.is_down("b1")

        run(body())


class TestTransitions:
    def test_callbacks_fire_once_per_transition(self):
        fleet = FakeFleet(b1=False)
        events: list = []

        async def body():
            monitor = HealthMonitor(
                fleet.probe,
                failure_threshold=1,
                on_down=lambda name: events.append(("down", name)),
                on_up=lambda name: events.append(("up", name)),
            )
            monitor.watch("b1")
            await monitor.check_now()
            await monitor.check_now()  # still down: no duplicate callback
            fleet.health["b1"] = True
            await monitor.check_now()
            assert monitor.down == []

        run(body())
        assert events == [("down", "b1"), ("up", "b1")]

    def test_async_callbacks_are_awaited(self):
        fleet = FakeFleet(b1="raise")
        events: list = []

        async def on_down(name):
            await asyncio.sleep(0)
            events.append(name)

        async def body():
            monitor = HealthMonitor(fleet.probe, failure_threshold=1, on_down=on_down)
            monitor.watch("b1")
            await monitor.check_now()

        run(body())
        assert events == ["b1"]

    def test_raise_and_hang_both_count_as_failures(self):
        fleet = FakeFleet(b1="raise", b2="hang", b3=True)

        async def body():
            monitor = HealthMonitor(fleet.probe, timeout_s=0.05, failure_threshold=1)
            for name in ("b1", "b2", "b3"):
                monitor.watch(name)
            results = await monitor.check_now()
            assert results == {"b1": False, "b2": False, "b3": True}
            assert monitor.down == ["b1", "b2"]

        run(body())


class TestTargetSet:
    def test_unwatch_forgets_state(self):
        fleet = FakeFleet(b1=False)

        async def body():
            monitor = HealthMonitor(fleet.probe, failure_threshold=1)
            monitor.watch("b1")
            await monitor.check_now()
            assert monitor.is_down("b1")
            monitor.unwatch("b1")
            assert monitor.targets == [] and monitor.down == []

        run(body())

    def test_watch_is_idempotent(self):
        fleet = FakeFleet(b1=False)

        async def body():
            monitor = HealthMonitor(fleet.probe, failure_threshold=2)
            monitor.watch("b1")
            await monitor.check_now()
            monitor.watch("b1")  # must not reset the failure streak
            await monitor.check_now()
            assert monitor.is_down("b1")

        run(body())


class TestLifecycle:
    def test_background_loop_probes_on_interval(self):
        fleet = FakeFleet(b1=True)

        async def body():
            monitor = HealthMonitor(fleet.probe, interval_s=0.01)
            monitor.watch("b1")
            monitor.start()
            with pytest.raises(RuntimeError, match="already running"):
                monitor.start()
            for _ in range(100):
                await asyncio.sleep(0.01)
                if monitor.rounds >= 2:
                    break
            await monitor.stop()
            await monitor.stop()  # idempotent
            assert monitor.rounds >= 2

        run(body())

    def test_parameters_validated(self):
        fleet = FakeFleet()
        with pytest.raises(ValueError):
            HealthMonitor(fleet.probe, interval_s=0)
        with pytest.raises(ValueError):
            HealthMonitor(fleet.probe, failure_threshold=0)

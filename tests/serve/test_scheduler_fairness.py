"""Deterministic scheduler suite: clock seam, EDF fairness, rate limiting.

Every test here runs on the injected :class:`repro.serve.FakeClock` — no
``time.sleep``, no wall-clock flakiness — so the scheduling properties are
asserted exactly:

* the :class:`Clock` seam (monotonic by default, fake/steppable in tests);
* :class:`TokenBucket` refill is an exact pure function of the clock;
* EDF batch assembly orders by ``(deadline, sequence)``, degenerating to
  arrival order for a single class (the bitwise-replay invariant);
* property-style randomized arrival schedules: no traffic class starves,
  drop-oldest evicts by arrival, and the mixed-class acceptance pin —
  interactive p95 within its budget while bulk keeps >= 70% of its
  capacity-matched isolated throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    Clock,
    FakeClock,
    FrameDropped,
    MicroBatcher,
    MonotonicClock,
    PendingPrediction,
    PoseServer,
    SchedulingPolicy,
    ServeConfig,
    ServeRequest,
    TokenBucket,
    TrafficClass,
    as_clock,
)

from .conftest import make_frame


# ----------------------------------------------------------------------
# The Clock seam
# ----------------------------------------------------------------------
class TestClockSeam:
    def test_fake_clock_advances_exactly(self):
        clock = FakeClock()
        assert clock.now() == 0.0
        assert clock.advance(0.25) == 0.25
        assert clock.now() == 0.25
        assert clock() == 0.25  # callable: satisfies clock=... parameters

    def test_fake_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-0.1)

    def test_monotonic_clock_is_nondecreasing(self):
        clock = MonotonicClock()
        readings = [clock.now() for _ in range(100)]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_as_clock_coerces_callables_and_passes_clocks_through(self):
        fake = FakeClock(start=3.0)
        assert as_clock(fake) is fake
        wrapped = as_clock(lambda: 7.0)
        assert isinstance(wrapped, Clock)
        assert wrapped.now() == 7.0

    def test_server_accepts_a_clock_instance(self, estimator):
        clock = FakeClock()
        server = PoseServer(estimator, ServeConfig(gemm_block=8), clock=clock)
        rng = np.random.default_rng(0)
        server.enqueue("u", make_frame(rng))
        clock.advance(0.010)
        assert server.poll() == 1  # deadline applied on the fake clock


# ----------------------------------------------------------------------
# Token buckets: refill is an exact function of the injected clock
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains_per_acquire(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, now=clock.now())
        assert bucket.balance(clock.now()) == 4.0
        assert all(bucket.try_acquire(clock.now()) for _ in range(4))
        assert not bucket.try_acquire(clock.now())

    def test_refill_is_exact_on_the_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, now=clock.now())
        for _ in range(4):
            bucket.try_acquire(clock.now())
        clock.advance(0.5)  # exactly one token at 2 tokens/s
        assert bucket.balance(clock.now()) == pytest.approx(1.0)
        assert bucket.try_acquire(clock.now())
        assert not bucket.try_acquire(clock.now())

    def test_retry_after_is_the_exact_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, now=clock.now())
        assert bucket.try_acquire(clock.now())
        # One whole token short at 4 tokens/s: exactly 0.25 s away.
        assert bucket.retry_after_s(clock.now()) == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.try_acquire(clock.now())
        assert bucket.retry_after_s(clock.now()) == pytest.approx(0.25)

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, now=clock.now())
        clock.advance(60.0)
        assert bucket.balance(clock.now()) == 3.0

    def test_randomized_refill_matches_closed_form(self):
        """Property: after any acquire/advance schedule the balance equals
        min(burst, tokens_at_last_acquire + rate * elapsed)."""
        rng = np.random.default_rng(11)
        clock = FakeClock()
        rate, burst = 3.0, 5.0
        bucket = TokenBucket(rate=rate, burst=burst, now=clock.now())
        expected = burst
        for _ in range(200):
            step = float(rng.uniform(0.0, 0.4))
            clock.advance(step)
            expected = min(burst, expected + rate * step)
            assert bucket.balance(clock.now()) == pytest.approx(expected)
            if rng.random() < 0.5 and expected >= 1.0:
                assert bucket.try_acquire(clock.now())
                expected -= 1.0


# ----------------------------------------------------------------------
# SchedulingPolicy
# ----------------------------------------------------------------------
class TestSchedulingPolicy:
    def test_from_delay_anchors_interactive_on_max_delay(self):
        policy = SchedulingPolicy.from_delay(5.0)
        assert policy.resolve("interactive").budget_ms == 5.0
        assert policy.resolve("bulk").budget_ms == 50.0
        assert policy.resolve(None).name == "interactive"

    def test_unknown_class_is_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic class"):
            SchedulingPolicy.from_delay(5.0).resolve("premium")

    def test_round_trips_through_dict(self):
        policy = SchedulingPolicy(
            classes=(TrafficClass("interactive", 4.0), TrafficClass("bulk", 80.0)),
            default_class="bulk",
            rate_limit_per_user=20.0,
            rate_limit_burst=5.0,
            retry_after_ms=40.0,
        )
        assert SchedulingPolicy.from_dict(policy.to_dict()) == policy

    def test_config_derives_policy_from_max_delay(self):
        config = ServeConfig(max_delay_ms=8.0)
        assert config.scheduler.resolve("interactive").budget_ms == 8.0
        assert config.scheduler.resolve("bulk").budget_ms == 80.0


# ----------------------------------------------------------------------
# EDF batch assembly (pure MicroBatcher, dummy requests)
# ----------------------------------------------------------------------
def make_request(sequence: int, arrival: float, deadline: float) -> ServeRequest:
    pending = PendingPrediction(f"u{sequence}", sequence, arrival, flush=lambda: 0)
    return ServeRequest(
        f"u{sequence}", None, pending, arrival, deadline=deadline, traffic_class="x"
    )


class TestEdfOrdering:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_drain_follows_deadline_then_sequence(self, seed):
        rng = np.random.default_rng(seed)
        batcher = MicroBatcher(ServeConfig(max_batch_size=16, max_queue_depth=512))
        requests = [
            make_request(sequence, arrival=0.0, deadline=float(rng.integers(0, 8)))
            for sequence in range(64)
        ]
        for request in requests:
            batcher.enqueue(request)
        drained = []
        while len(batcher):
            batch = batcher.drain()
            keys = [(r.deadline, r.pending.sequence) for r in batch]
            assert keys == sorted(keys)  # EDF inside every batch
            drained.extend(keys)
        assert drained == sorted(drained)  # and across batches

    def test_single_class_degenerates_to_arrival_order(self):
        """Uniform budgets make (deadline, sequence) == arrival order — the
        invariant that keeps replay bitwise-identical to the pre-EDF batcher."""
        batcher = MicroBatcher(ServeConfig(max_batch_size=64, max_queue_depth=512))
        for sequence in range(32):
            arrival = sequence * 0.001
            batcher.enqueue(make_request(sequence, arrival, deadline=arrival + 0.005))
        sequences = [request.pending.sequence for request in batcher.drain()]
        assert sequences == list(range(32))

    def test_drop_oldest_evicts_by_arrival_not_deadline(self):
        """A loose-budget (late-deadline) request cannot shield itself from
        eviction: the oldest *arrival* goes, whatever its deadline."""
        batcher = MicroBatcher(ServeConfig(max_batch_size=64, max_queue_depth=3))
        loose = make_request(0, arrival=0.0, deadline=99.0)  # oldest, latest deadline
        tight = make_request(1, arrival=0.001, deadline=0.002)
        batcher.enqueue(loose)
        batcher.enqueue(tight)
        batcher.enqueue(make_request(2, arrival=0.002, deadline=0.003))
        batcher.admit()  # queue full: makes room for a 4th
        assert loose.pending.dropped and not tight.pending.dropped
        assert "drop_oldest" in loose.pending.drop_reason

    def test_evicted_handle_resolves_with_error_never_hangs(self):
        """Regression: an evicted ticket must resolve with FrameDropped (with
        its reason), not sit pending forever for a poller to wait on."""
        batcher = MicroBatcher(ServeConfig(max_batch_size=64, max_queue_depth=1))
        victim = make_request(0, arrival=0.0, deadline=0.005)
        batcher.enqueue(victim)
        batcher.admit()
        assert victim.pending.dropped
        with pytest.raises(FrameDropped, match="drop_oldest"):
            victim.pending.result(flush=False)

    def test_deadline_driven_close_matches_old_max_delay_semantics(self):
        clock = FakeClock()
        batcher = MicroBatcher(ServeConfig(max_batch_size=64, max_queue_depth=64))
        batcher.enqueue(make_request(0, arrival=clock.now(), deadline=clock.now() + 0.005))
        assert not batcher.due(clock.now())
        clock.advance(0.005)
        assert batcher.due(clock.now())  # inclusive at equality, like oldest_age >=


# ----------------------------------------------------------------------
# Randomized fairness on a live server (fake clock)
# ----------------------------------------------------------------------
class TestRandomizedFairness:
    @pytest.mark.parametrize("seed", [7, 19])
    def test_no_class_starves_under_random_mixed_load(self, estimator, seed):
        """Seeded random arrivals of both classes: every admitted request
        resolves, bulk included, and bulk never waits past its budget when
        capacity allows — EDF with finite budgets is starvation-free."""
        rng = np.random.default_rng(seed)
        clock = FakeClock()
        server = PoseServer(
            estimator,
            ServeConfig(max_batch_size=16, max_queue_depth=4096, gemm_block=8),
            clock=clock,
        )
        handles = []
        for tick in range(120):
            clock.advance(0.001)
            for _ in range(int(rng.integers(0, 4))):
                priority = "interactive" if rng.random() < 0.7 else "bulk"
                user = f"{priority[0]}{int(rng.integers(0, 6))}"
                handle = server.enqueue(user, make_frame(rng), priority=priority)
                handles.append((priority, clock.now(), handle))
            server.poll()
        clock.advance(0.100)
        while server.poll():
            pass
        assert all(h.done for _, _, h in handles)  # nothing starved or stuck
        snapshot = server.metrics_snapshot()
        assert snapshot["completed"] == len(handles)
        assert snapshot["dropped"] == 0
        by_class = {p for p, _, _ in handles}
        for name in by_class:
            assert snapshot[f"class_{name}_completed"] > 0

    def test_bulk_request_completes_by_its_deadline_under_interactive_flood(
        self, estimator
    ):
        """One bulk request, then a steady interactive flood: the bulk
        deadline is fixed while new interactive deadlines recede, so EDF
        serves it no later than its own budget."""
        rng = np.random.default_rng(3)
        clock = FakeClock()
        server = PoseServer(
            estimator,
            ServeConfig(max_batch_size=4, max_queue_depth=4096, gemm_block=8),
            clock=clock,
        )
        bulk = server.enqueue("bulk-user", make_frame(rng), priority="bulk")
        bulk_deadline = clock.now() + 0.050
        for _ in range(80):  # 80 ms of flood at 3 interactive frames/ms
            clock.advance(0.001)
            for i in range(3):
                server.enqueue(f"i{i}", make_frame(rng), priority="interactive")
            server.poll()
            if bulk.done:
                break
        assert bulk.done
        assert clock.now() <= bulk_deadline + 1e-9


# ----------------------------------------------------------------------
# Mixed-class acceptance pin (fake-clock analog of the bench section)
# ----------------------------------------------------------------------
def _run_mixed_replay(estimator, include_interactive: bool) -> dict:
    """Deterministic overload replay; returns the metrics snapshot.

    Interactive: 2 users, 1 frame/ms each.  Bulk: 4 users bursting 12
    frames every 25 ms (offsets 0/1/2 collide, 13 rides alone).  The queue
    depth (16) sits *below* the batch size (24), so enqueue's flush-on-full
    never rescues an overflowing queue: the colliding bursts genuinely
    exercise drop-oldest eviction alongside EDF priority.  Both variants
    flush on a capacity-matched 5 ms cadence so the isolated run measures
    queue contention, not the lazier bulk deadline cadence.
    """
    clock = FakeClock()
    server = PoseServer(
        estimator,
        ServeConfig(
            max_batch_size=24, max_queue_depth=16, max_delay_ms=5.0, gemm_block=8
        ),
        clock=clock,
    )
    rng = np.random.default_rng(5)
    for tick in range(200):
        clock.advance(0.001)
        if include_interactive:
            for user in range(2):
                server.enqueue(f"int-{user}", make_frame(rng), priority="interactive")
        for user, offset in enumerate((0, 1, 2, 13)):
            if tick % 25 == offset:
                for _ in range(12):
                    server.enqueue(f"bulk-{user}", make_frame(rng), priority="bulk")
        server.poll()
        if tick % 5 == 4:
            server.flush()  # capacity-matched service cadence for both runs
    while server.flush():
        pass
    return server.metrics_snapshot()


class TestMixedClassAcceptance:
    def test_interactive_p95_meets_budget_and_bulk_keeps_70_percent(self, estimator):
        mixed = _run_mixed_replay(estimator, include_interactive=True)
        isolated = _run_mixed_replay(estimator, include_interactive=False)
        # The replay is a real overload: evictions actually happened.
        assert mixed["dropped"] > 0
        # Interactive p95 meets the class budget (5 ms) under contention.
        assert mixed["class_interactive_latency_p95_ms"] <= 5.0 + 1e-6
        # Bulk meets its own (relaxed) budget too.
        assert mixed["class_bulk_latency_p95_ms"] <= 50.0 + 1e-6
        # Bulk keeps >= 70% of its capacity-matched isolated throughput.
        assert isolated["class_bulk_completed"] > 0
        ratio = mixed["class_bulk_completed"] / isolated["class_bulk_completed"]
        assert ratio >= 0.70

    def test_per_class_replay_is_bitwise_identical_to_unbatched(self, estimator):
        """Within a class, micro-batched EDF serving returns bit-for-bit the
        predictions of an unbatched (max_batch_size=1) server."""
        rng = np.random.default_rng(9)
        frames = {f"u{i}": [make_frame(rng) for _ in range(4)] for i in range(3)}

        def replay(config) -> dict:
            clock = FakeClock()
            server = PoseServer(estimator, config, clock=clock)
            handles = {user: [] for user in frames}
            for round_index in range(4):
                for user, stream in frames.items():
                    clock.advance(0.0005)
                    priority = "bulk" if user == "u2" else "interactive"
                    handles[user].append(
                        server.enqueue(user, stream[round_index], priority=priority)
                    )
                server.poll()
            server.flush()
            return {
                user: [h.result(flush=False) for h in per_user]
                for user, per_user in handles.items()
            }

        batched = replay(ServeConfig(max_batch_size=16, max_queue_depth=256, gemm_block=8))
        unbatched = replay(ServeConfig(max_batch_size=1, max_queue_depth=256, gemm_block=8))
        for user in frames:
            for got, want in zip(batched[user], unbatched[user]):
                np.testing.assert_array_equal(got, want)

"""Round-trip persistence of per-user adapted parameter sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import FineTuneConfig
from repro.dataset.loader import ArrayDataset
from repro.serve import AdapterRegistry


@pytest.fixture(scope="module")
def calibration_sets(estimator, serve_dataset):
    """Small per-user labelled array sets derived from the shared dataset."""
    arrays = estimator.prepare(serve_dataset[:24])
    return {
        "alice": ArrayDataset(arrays.features[:8], arrays.labels[:8]),
        "bob": ArrayDataset(arrays.features[8:16], arrays.labels[8:16]),
        7: ArrayDataset(arrays.features[16:24], arrays.labels[16:24]),
    }


def _assert_registries_equal(a: AdapterRegistry, b: AdapterRegistry):
    assert a.user_ids == b.user_ids
    for user in a.user_ids:
        for param_a, param_b in zip(a.parameters_for(user), b.parameters_for(user)):
            np.testing.assert_array_equal(param_a, param_b)


class TestRoundTrip:
    @pytest.mark.parametrize("scope", ["all", "last"])
    def test_save_load_round_trip(self, estimator, calibration_sets, tmp_path, scope):
        config = FineTuneConfig(epochs=2, scope=scope)
        registry = AdapterRegistry(estimator.model, config=config)
        registry.adapt_many(calibration_sets)
        path = registry.save(tmp_path / f"adapters_{scope}.npz")

        restored = AdapterRegistry(estimator.model, config=config)
        loaded_users = restored.load(path)
        assert set(loaded_users) == set(calibration_sets)
        _assert_registries_equal(registry, restored)

    def test_restored_registry_serves_identically(self, estimator, calibration_sets, tmp_path):
        config = FineTuneConfig(epochs=2, scope="last")
        registry = AdapterRegistry(estimator.model, config=config, gemm_block=16)
        registry.adapt_many(calibration_sets)
        path = registry.save(tmp_path / "adapters")

        restored = AdapterRegistry(estimator.model, config=config, gemm_block=16)
        restored.load(path)
        users = list(calibration_sets)
        for original, reloaded in zip(registry.gather(users), restored.gather(users)):
            np.testing.assert_array_equal(original.data, reloaded.data)

    def test_load_replaces_by_default_and_merges_on_request(
        self, estimator, calibration_sets, tmp_path
    ):
        config = FineTuneConfig(epochs=1, scope="last")
        first = AdapterRegistry(estimator.model, config=config)
        first.adapt_many({"alice": calibration_sets["alice"]})
        path = first.save(tmp_path / "alice.npz")

        second = AdapterRegistry(estimator.model, config=config)
        second.adapt_many({"bob": calibration_sets["bob"]})
        second.load(path)  # replace
        assert second.user_ids == ["alice"]

        third = AdapterRegistry(estimator.model, config=config)
        third.adapt_many({"bob": calibration_sets["bob"]})
        third.load(path, replace=False)  # merge
        assert set(third.user_ids) == {"bob", "alice"}

    def test_load_bumps_version_and_invalidates_gather_cache(
        self, estimator, calibration_sets, tmp_path
    ):
        config = FineTuneConfig(epochs=1, scope="last")
        registry = AdapterRegistry(estimator.model, config=config)
        registry.adapt_many(calibration_sets)
        registry.gather(["alice", "bob"])  # populate the gather cache
        version = registry.version
        path = registry.save(tmp_path / "all.npz")
        registry.load(path)
        assert registry.version == version + 1
        assert registry._gather_cache == {}


class TestErrorHandling:
    def test_scope_mismatch_rejected(self, estimator, calibration_sets, tmp_path):
        last = AdapterRegistry(estimator.model, config=FineTuneConfig(epochs=1, scope="last"))
        last.adapt_many({"alice": calibration_sets["alice"]})
        path = last.save(tmp_path / "last.npz")
        all_scope = AdapterRegistry(estimator.model, config=FineTuneConfig(epochs=1, scope="all"))
        with pytest.raises(ValueError, match="scope"):
            all_scope.load(path)

    def test_non_persistable_user_id_rejected(self, estimator, calibration_sets, tmp_path):
        config = FineTuneConfig(epochs=1, scope="last")
        registry = AdapterRegistry(estimator.model, config=config)
        registry.adapt_many({("tuple", "id"): calibration_sets["alice"]})
        with pytest.raises(TypeError, match="user ids"):
            registry.save(tmp_path / "bad.npz")

    def test_foreign_checkpoint_rejected(self, estimator, tmp_path):
        from repro.nn.serialization import save_state

        path = save_state({"weights": np.zeros(3)}, tmp_path / "foreign.npz")
        registry = AdapterRegistry(estimator.model, config=FineTuneConfig(epochs=1, scope="last"))
        with pytest.raises(ValueError, match="checkpoint"):
            registry.load(path)

    def test_int_user_ids_survive_the_round_trip(self, estimator, calibration_sets, tmp_path):
        config = FineTuneConfig(epochs=1, scope="last")
        registry = AdapterRegistry(estimator.model, config=config)
        registry.adapt_many({7: calibration_sets[7]})
        path = registry.save(tmp_path / "int_user.npz")
        restored = AdapterRegistry(estimator.model, config=config)
        assert restored.load(path) == [7]
        assert 7 in restored
        assert "7" not in restored

"""End-to-end admission control over the socket front-end.

Shedding happens at the front door: with ``rate_limit_per_user`` set, an
over-budget user gets a correlated ``error`` frame carrying
``retry_after_ms`` instead of a prediction, the shed shows up in the
metrics/Prometheus surfaces under the ``frontend`` tier, and
:class:`AsyncPoseClient` honours the hint with bounded backoff.  The
front-end runs on an injected :class:`FakeClock`, so token-bucket refill
is driven explicitly by the test, never by wall time.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncPoseClient,
    FakeClock,
    PoseFrontend,
    PoseServer,
    SchedulingPolicy,
    ServeConfig,
    ServerError,
    TrafficClass,
)

from .conftest import make_frame


def limited_policy(rate: float = 10.0, burst: float = 2.0) -> SchedulingPolicy:
    return SchedulingPolicy(
        classes=(TrafficClass("interactive", 5.0), TrafficClass("bulk", 50.0)),
        rate_limit_per_user=rate,
        rate_limit_burst=burst,
        retry_after_ms=10.0,
    )


def make_backend(estimator, **overrides) -> PoseServer:
    defaults = dict(max_batch_size=1, gemm_block=8)
    defaults.update(overrides)
    return PoseServer(estimator, ServeConfig(**defaults))


def run_scenario(backend, scenario, *, clock=None, **client_kwargs):
    """Unix-socket front-end on a FakeClock; runs ``scenario(client, frontend, clock)``."""
    clock = clock if clock is not None else FakeClock()

    async def body(tmp_path):
        path = str(tmp_path / "fuse.sock")
        frontend = PoseFrontend(backend, unix_path=path, clock=clock)
        await frontend.start()
        try:
            async with AsyncPoseClient(**client_kwargs) as client:
                await client.connect_unix(path)
                return await scenario(client, frontend, clock)
        finally:
            await frontend.stop()

    return body


class TestShedding:
    def test_over_budget_user_gets_retry_after_error_frame(self, estimator, tmp_path):
        backend = make_backend(estimator, scheduling=limited_policy(burst=2.0))
        rng = np.random.default_rng(0)

        async def scenario(client, frontend, clock):
            for _ in range(2):  # the burst allowance
                await client.submit("alice", make_frame(rng))
            with pytest.raises(ServerError) as exc_info:
                await client.submit("alice", make_frame(rng))
            error = exc_info.value
            assert error.error == "RateLimited"
            assert error.retry_after_ms is not None and error.retry_after_ms > 0
            assert "alice" in error.detail
            # Admission is per user: bob is unaffected by alice's spree.
            assert (await client.submit("bob", make_frame(rng))).shape == (19, 3)

        asyncio.run(
            run_scenario(backend, scenario, rate_limit_retries=0)(tmp_path)
        )

    def test_tokens_refill_exactly_with_the_clock(self, estimator, tmp_path):
        backend = make_backend(estimator, scheduling=limited_policy(rate=10.0, burst=1.0))
        rng = np.random.default_rng(1)

        async def scenario(client, frontend, clock):
            await client.submit("alice", make_frame(rng))
            with pytest.raises(ServerError):
                await client.submit("alice", make_frame(rng))
            clock.advance(0.1)  # exactly one token at 10 tokens/s
            assert (await client.submit("alice", make_frame(rng))).shape == (19, 3)
            with pytest.raises(ServerError):  # and only one
                await client.submit("alice", make_frame(rng))

        asyncio.run(
            run_scenario(backend, scenario, rate_limit_retries=0)(tmp_path)
        )

    def test_client_backs_off_on_hint_and_succeeds(self, estimator, tmp_path):
        backend = make_backend(estimator, scheduling=limited_policy(burst=1.0))
        rng = np.random.default_rng(2)

        async def scenario(client, frontend, clock):
            await client.submit("alice", make_frame(rng))  # drains the bucket

            async def refill_after_first_shed():
                deadline = asyncio.get_running_loop().time() + 5.0
                while client.rate_limited_retries_performed == 0:
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError("client never backed off")
                    await asyncio.sleep(0.001)
                clock.advance(1.0)  # refill while the client sleeps the hint

            refill = asyncio.create_task(refill_after_first_shed())
            joints = await client.submit("alice", make_frame(rng))
            await refill
            assert joints.shape == (19, 3)
            assert client.rate_limited_retries_performed >= 1

        asyncio.run(run_scenario(backend, scenario)(tmp_path))

    def test_shed_counters_reach_metrics_and_prometheus(self, estimator, tmp_path):
        backend = make_backend(estimator, scheduling=limited_policy(burst=1.0))
        rng = np.random.default_rng(3)

        async def scenario(client, frontend, clock):
            await client.submit("alice", make_frame(rng))
            for _ in range(3):
                with pytest.raises(ServerError):
                    await client.submit("alice", make_frame(rng))
            metrics = await client.metrics()
            assert metrics["shed"] == 3
            assert frontend.admission.shed == 3
            text = await client.prometheus()
            assert 'fuse_serve_requests_shed_total{tier="frontend"} 3' in text

        asyncio.run(
            run_scenario(backend, scenario, rate_limit_retries=0)(tmp_path)
        )

    def test_enqueue_sheds_before_any_session_state_is_touched(
        self, estimator, tmp_path
    ):
        """A shed frame must not enter the user's fusion ring: admission
        runs before the backend sees the request, so a retry after backoff
        fuses the frame exactly once."""
        backend = make_backend(estimator, scheduling=limited_policy(burst=1.0))
        rng = np.random.default_rng(4)

        async def scenario(client, frontend, clock):
            future = await client.enqueue("alice", make_frame(rng))
            await client.flush()
            await asyncio.wait_for(future, timeout=5)
            seen = backend.sessions.get_or_create("alice").frames_seen
            with pytest.raises(ServerError):
                await client.enqueue("alice", make_frame(rng))
            assert backend.sessions.get_or_create("alice").frames_seen == seen

        asyncio.run(
            run_scenario(backend, scenario, rate_limit_retries=0)(tmp_path)
        )


class TestEvictionResolvesTickets:
    def test_evicted_ticket_gets_an_error_push_not_a_hang(self, estimator, tmp_path):
        """Regression: drop-oldest eviction must push an error frame for the
        evicted ticket — a poller awaiting it gets FrameDropped with the
        eviction reason and a retry hint, never a silent hang."""
        backend = make_backend(
            estimator,
            max_batch_size=64,
            max_queue_depth=2,
            max_delay_ms=10_000.0,  # only explicit flushes serve the queue
        )
        rng = np.random.default_rng(5)

        async def scenario(client, frontend, clock):
            tickets = [
                await client.enqueue(f"u{i}", make_frame(rng)) for i in range(4)
            ]
            # u0/u1 were evicted by u2/u3; their tickets must already be
            # resolved (or resolve promptly) with the eviction error.
            for victim in tickets[:2]:
                with pytest.raises(ServerError) as exc_info:
                    await asyncio.wait_for(victim, timeout=5)
                assert exc_info.value.error == "FrameDropped"
                assert "evicted by a newer arrival under drop_oldest" in (
                    exc_info.value.detail
                )
                assert exc_info.value.retry_after_ms is not None
            await client.flush()
            for survivor in tickets[2:]:
                message = await asyncio.wait_for(survivor, timeout=5)
                assert np.asarray(message["joints"]).shape == (19, 3)

        asyncio.run(run_scenario(backend, scenario)(tmp_path))


class TestStreamedSubmitBatch:
    def test_on_result_streams_every_frame_and_matches_final_reply(
        self, estimator, tmp_path
    ):
        backend = make_backend(estimator, max_batch_size=4)
        rng = np.random.default_rng(6)
        items = [(f"user-{i % 3}", make_frame(rng)) for i in range(6)]

        async def scenario(client, frontend, clock):
            streamed = {}

            def on_result(index, user, joints):
                assert index not in streamed
                streamed[index] = (user, np.asarray(joints))

            results = await client.submit_batch(items, on_result=on_result)
            assert sorted(streamed) == list(range(len(items)))
            for index, (user, frame) in enumerate(items):
                pushed_user, pushed = streamed[index]
                assert pushed_user == user
                np.testing.assert_array_equal(pushed, results[index])
            return results

        results = asyncio.run(run_scenario(backend, scenario)(tmp_path))
        # Replay equivalence: the streamed micro-batched run is bitwise
        # identical to an unbatched server fed the same per-user order.
        reference = PoseServer(estimator, ServeConfig(max_batch_size=1, gemm_block=8))
        for index, (user, frame) in enumerate(items):
            np.testing.assert_array_equal(results[index], reference.submit(user, frame))


class TestPriorityThreading:
    def test_priority_reaches_the_backend_class_counters(self, estimator, tmp_path):
        backend = make_backend(estimator)
        rng = np.random.default_rng(7)

        async def scenario(client, frontend, clock):
            await client.submit("alice", make_frame(rng), priority="bulk")
            await client.submit("bob", make_frame(rng), priority="interactive")
            await client.submit("carol", make_frame(rng))  # default class
            metrics = await client.metrics()
            assert metrics["class_bulk_completed"] == 1
            assert metrics["class_interactive_completed"] == 2
            assert metrics["shed"] == 0

        asyncio.run(run_scenario(backend, scenario)(tmp_path))

    def test_invalid_priority_is_a_clean_error_frame(self, estimator, tmp_path):
        backend = make_backend(estimator)
        rng = np.random.default_rng(8)

        async def scenario(client, frontend, clock):
            with pytest.raises(ServerError):
                await client.submit("alice", make_frame(rng), priority="premium")
            assert await client.ping()  # the connection survived

        asyncio.run(run_scenario(backend, scenario)(tmp_path))

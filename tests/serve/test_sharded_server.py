"""Multi-shard serving: placement, equivalence and aggregated observability.

The acceptance property mirrors the micro-batching one: sharding users over
N independent :class:`PoseServer` shards must be invisible — a replay
through a :class:`ShardedPoseServer` is bitwise identical, user for user, to
the same replay through a single server with the same scheduling config.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.sample import PoseDataset
from repro.serve import (
    PoseServer,
    ServeConfig,
    ShardedPoseServer,
    adaptation_split,
    replay_users,
    user_streams_from_dataset,
)


def as_pose_dataset(frames) -> PoseDataset:
    dataset = PoseDataset(name="calibration")
    dataset.extend(frames)
    return dataset


@pytest.fixture(scope="module")
def streams(serve_dataset):
    return user_streams_from_dataset(serve_dataset, num_users=24, frames_per_user=4)


class TestPlacement:
    def test_users_route_to_stable_shards(self, estimator):
        server = ShardedPoseServer(estimator, num_shards=4)
        for user in ("alice", "bob", 42):
            index = server.shard_index(user)
            assert 0 <= index < 4
            assert server.shard_index(user) == index
            assert server.shard_of(user) is server.shards[index]

    def test_invalid_shard_count(self, estimator):
        with pytest.raises(ValueError):
            ShardedPoseServer(estimator, num_shards=0)

    def test_single_shard_degenerates_to_one_server(self, estimator):
        server = ShardedPoseServer(estimator, num_shards=1)
        assert len(server.shards) == 1
        assert server.shard_of("anyone") is server.shards[0]


class TestReplayEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_sharded_replay_bitwise_identical_to_single_server(
        self, estimator, streams, num_shards
    ):
        config = ServeConfig(max_batch_size=32)
        single = replay_users(PoseServer(estimator, config), streams)
        sharded_server = ShardedPoseServer(estimator, num_shards=num_shards, config=config)
        sharded = replay_users(sharded_server, streams)
        assert sharded.frames_served == single.frames_served
        assert sharded.frames_dropped == 0
        for user in streams:
            np.testing.assert_array_equal(
                sharded.predictions[user], single.predictions[user]
            )
        # Traffic genuinely spread over the shards.
        active = [shard for shard in sharded_server.shards if shard.metrics.submitted]
        assert len(active) > 1

    def test_adapted_sharded_replay_bitwise_identical(self, estimator, serve_dataset):
        streams = user_streams_from_dataset(serve_dataset, num_users=12, frames_per_user=10)
        calibration, serving = adaptation_split(streams, adaptation_frames=6)
        adapted_users = list(serving)[:5]
        calibration_sets = {
            user: as_pose_dataset(calibration[user]) for user in adapted_users
        }

        config = ServeConfig(max_batch_size=16)
        single_server = PoseServer(estimator, config)
        single_server.adapt_users(calibration_sets, epochs=2)
        sharded_server = ShardedPoseServer(estimator, num_shards=3, config=config)
        sharded_server.adapt_users(calibration_sets, epochs=2)

        single = replay_users(single_server, serving)
        sharded = replay_users(sharded_server, serving)
        for user in serving:
            np.testing.assert_array_equal(
                sharded.predictions[user], single.predictions[user]
            )
        # Each adapted user's parameters live on exactly their shard.
        for user in adapted_users:
            owner = sharded_server.shard_index(user)
            for index, shard in enumerate(sharded_server.shards):
                assert (user in shard.registry) == (index == owner)

    def test_submit_and_forget_route_to_the_owner_shard(self, estimator, streams):
        server = ShardedPoseServer(estimator, num_shards=2, config=ServeConfig(max_batch_size=4))
        user = next(iter(streams))
        frame = streams[user][0].cloud
        joints = server.submit(user, frame)
        assert joints.shape == (19, 3)
        assert len(server.shard_of(user).sessions) == 1
        server.forget_user(user)
        assert len(server.shard_of(user).sessions) == 0


class TestAggregatedMetrics:
    def test_snapshot_sums_across_shards(self, estimator, streams):
        config = ServeConfig(max_batch_size=8)
        server = ShardedPoseServer(estimator, num_shards=3, config=config)
        result = replay_users(server, streams)
        total = sum(len(stream) for stream in streams.values())
        snapshot = result.metrics
        assert snapshot["shards"] == 3
        assert snapshot["submitted"] == total
        assert snapshot["completed"] == total
        assert snapshot["sessions"] == len(streams)
        assert snapshot["flushes"] == sum(s.metrics.flushes for s in server.shards)
        assert snapshot["latency_p95_ms"] >= snapshot["latency_p50_ms"] >= 0.0
        assert snapshot["throughput_fps"] > 0

    def test_poll_applies_every_shards_deadline(self, estimator, streams):
        config = ServeConfig(max_batch_size=64, max_delay_ms=0.0)
        server = ShardedPoseServer(estimator, num_shards=2, config=config)
        users = list(streams)[:4]
        for user in users:
            server.enqueue(user, streams[user][0].cloud)
        assert server.pending == 4
        produced = server.poll()
        assert produced == 4
        assert server.pending == 0

    def test_prometheus_exposition_labels_every_shard(self, estimator, streams):
        server = ShardedPoseServer(estimator, num_shards=2, config=ServeConfig(max_batch_size=8))
        replay_users(server, streams)
        text = server.to_prometheus()
        assert text.endswith("\n")
        for shard in (0, 1):
            assert f'fuse_serve_requests_completed_total{{shard="{shard}"}}' in text
            assert f'shard="{shard}",quantile="0.95"' in text
        # One header per metric family, not one per shard.
        assert text.count("# TYPE fuse_serve_requests_completed_total counter") == 1
        assert text.count("# TYPE fuse_serve_request_latency_seconds summary") == 1

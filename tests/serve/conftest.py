"""Fixtures shared by the serving-subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FuseConfig, FusePoseEstimator
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset
from repro.radar.pointcloud import PointCloudFrame


@pytest.fixture(scope="module")
def serve_dataset():
    """A four-session labelled dataset big enough for 50 simulated users."""
    config = SyntheticDatasetConfig(
        subject_ids=(1, 2),
        movement_names=("squat", "right_limb_extension"),
        seconds_per_pair=6.0,
        seed=5,
    )
    return generate_dataset(config)


@pytest.fixture(scope="module")
def estimator():
    """A shared (untrained — serving only reads it) FUSE estimator."""
    return FusePoseEstimator(FuseConfig(num_context_frames=1))


def make_frame(rng: np.random.Generator, count: int = 24) -> PointCloudFrame:
    """One synthetic mmWave frame with plausible channel ranges."""
    points = np.column_stack(
        [
            rng.uniform(-1.2, 1.2, count),
            rng.uniform(0.5, 4.5, count),
            rng.uniform(0.0, 2.2, count),
            rng.normal(0.0, 1.0, count),
            rng.uniform(-5.0, 35.0, count),
        ]
    )
    return PointCloudFrame(points)

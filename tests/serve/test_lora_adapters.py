"""Low-rank (``scope="lora"``) per-user adaptation and serving.

The acceptance properties of the low-rank route:

* grouped lora adaptation is bitwise identical to adapting each user solo
  (factor init is seeded per user, not per group slot);
* a micro-batched replay of interleaved lora users is bitwise identical to
  the same replay served unbatched, and base users are unaffected;
* per-user resident memory at rank 4 is at most 10% of ``scope="all"``;
* the versioned npz schema round-trips lora factors and rejects archives
  whose scope or rank does not match the registry's policy, while legacy
  PR-3-era format-1 archives still load into a matching policy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.sample import PoseDataset
from repro.nn.serialization import read_metadata, save_state
from repro.serve import (
    AdapterPolicy,
    AdapterRegistry,
    PoseServer,
    ServeConfig,
    adaptation_split,
    replay_users,
    user_streams_from_dataset,
)
from repro.serve.adapters import SAVE_FORMAT


def as_pose_dataset(frames) -> PoseDataset:
    dataset = PoseDataset(name="calibration")
    dataset.extend(frames)
    return dataset


@pytest.fixture(scope="module")
def split_streams(serve_dataset):
    streams = user_streams_from_dataset(serve_dataset, num_users=10, frames_per_user=10)
    return adaptation_split(streams, adaptation_frames=6)


@pytest.fixture(scope="module")
def calibration_arrays(estimator, split_streams):
    calibration, _ = split_streams
    return {
        user: estimator.to_arrays(as_pose_dataset(frames))
        for user, frames in calibration.items()
    }


class TestLoraAdaptation:
    def test_grouped_adaptation_matches_solo_bitwise(self, estimator, calibration_arrays):
        users = list(calibration_arrays)[:4]
        policy = AdapterPolicy(scope="lora", rank=2, epochs=2)
        grouped = AdapterRegistry(estimator.model, policy=policy)
        grouped.adapt_many({user: calibration_arrays[user] for user in users})
        solo = AdapterRegistry(estimator.model, policy=policy)
        for user in users:
            solo.adapt_user(user, calibration_arrays[user])
        for user in users:
            for a, b in zip(grouped.parameters_for(user), solo.parameters_for(user)):
                np.testing.assert_array_equal(a, b)

    def test_factor_shapes_follow_rank(self, estimator, calibration_arrays):
        user = next(iter(calibration_arrays))
        registry = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="lora", rank=3, epochs=1)
        )
        registry.adapt_user(user, calibration_arrays[user])
        params = registry.parameters_for(user)
        assert len(params) % 2 == 0
        for a, b in zip(params[0::2], params[1::2]):
            assert a.shape[0] == 3  # (rank, in)
            assert b.shape[1] == 3  # (out, rank)

    def test_resident_memory_within_10_percent_of_full_adaptation(
        self, estimator, calibration_arrays
    ):
        """The ISSUE criterion: rank-4 lora state <= 10% of scope='all'."""
        user = next(iter(calibration_arrays))
        lora = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="lora", rank=4, epochs=1)
        )
        lora.adapt_user(user, calibration_arrays[user])
        full = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="all", epochs=1)
        )
        full.adapt_user(user, calibration_arrays[user])
        ratio = lora.resident_bytes(user) / full.resident_bytes(user)
        assert ratio <= 0.10, f"lora resident state is {ratio:.2%} of scope='all'"


class TestLoraReplay:
    def test_micro_batched_replay_bitwise_identical_to_unbatched(
        self, estimator, split_streams
    ):
        calibration, serving = split_streams
        adapted_users = list(serving)[:4]
        policy = AdapterPolicy(scope="lora", rank=2, epochs=2)

        batched = PoseServer(estimator, ServeConfig(max_batch_size=16, adapter=policy))
        batched.adapt_users(
            {user: as_pose_dataset(calibration[user]) for user in adapted_users}
        )
        unbatched = PoseServer(
            estimator, ServeConfig(max_batch_size=1, gemm_block=16), policy=policy
        )
        for user in adapted_users:
            unbatched.adapt_user(user, as_pose_dataset(calibration[user]))

        result_batched = replay_users(batched, serving)
        result_unbatched = replay_users(unbatched, serving)
        assert result_batched.frames_dropped == 0
        for user in serving:
            np.testing.assert_array_equal(
                result_batched.predictions[user], result_unbatched.predictions[user]
            )

    def test_base_users_unaffected_by_lora_traffic(self, estimator, split_streams):
        calibration, serving = split_streams
        adapted_users = list(serving)[:3]
        policy = AdapterPolicy(scope="lora", rank=2, epochs=1)

        mixed = PoseServer(estimator, ServeConfig(max_batch_size=16), policy=policy)
        mixed.adapt_users(
            {user: as_pose_dataset(calibration[user]) for user in adapted_users}
        )
        base_only = PoseServer(estimator, ServeConfig(max_batch_size=16))

        result_mixed = replay_users(mixed, serving)
        result_base = replay_users(base_only, serving)
        for user in serving:
            if user in adapted_users:
                continue
            np.testing.assert_array_equal(
                result_mixed.predictions[user], result_base.predictions[user]
            )

    def test_adapted_predictions_differ_from_base(self, estimator, split_streams):
        calibration, serving = split_streams
        user = next(iter(serving))
        server = PoseServer(
            estimator, ServeConfig(), policy=AdapterPolicy(scope="lora", rank=2, epochs=2)
        )
        server.adapt_user(user, as_pose_dataset(calibration[user]))
        base = PoseServer(estimator, ServeConfig())
        adapted_out = replay_users(server, {user: serving[user]}).predictions[user]
        base_out = replay_users(base, {user: serving[user]}).predictions[user]
        assert not np.array_equal(adapted_out, base_out)


class TestVersionedSchema:
    def test_lora_round_trip_and_format_tag(self, estimator, calibration_arrays, tmp_path):
        policy = AdapterPolicy(scope="lora", rank=2, epochs=1)
        registry = AdapterRegistry(estimator.model, policy=policy)
        users = list(calibration_arrays)[:2]
        registry.adapt_many({user: calibration_arrays[user] for user in users})
        path = registry.save(tmp_path / "lora.npz")

        metadata = read_metadata(path)
        assert metadata["format"] == SAVE_FORMAT
        assert metadata["scope"] == "lora"
        assert metadata["rank"] == 2

        restored = AdapterRegistry(estimator.model, policy=policy)
        assert set(restored.load(path)) == set(users)
        for user in users:
            for a, b in zip(registry.parameters_for(user), restored.parameters_for(user)):
                np.testing.assert_array_equal(a, b)

    def test_rank_mismatch_raises_readable_error(
        self, estimator, calibration_arrays, tmp_path
    ):
        user = next(iter(calibration_arrays))
        saver = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="lora", rank=4, epochs=1)
        )
        saver.adapt_user(user, calibration_arrays[user])
        path = saver.save(tmp_path / "rank4.npz")
        loader = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="lora", rank=8, epochs=1)
        )
        with pytest.raises(ValueError, match="rank-4.*rank=8"):
            loader.load(path)

    def test_scope_mismatch_raises_readable_error(
        self, estimator, calibration_arrays, tmp_path
    ):
        user = next(iter(calibration_arrays))
        saver = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="last", epochs=1)
        )
        saver.adapt_user(user, calibration_arrays[user])
        path = saver.save(tmp_path / "last.npz")
        loader = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="lora", rank=4, epochs=1)
        )
        with pytest.raises(ValueError, match="scope='last'"):
            loader.load(path)

    def test_legacy_format1_archive_loads_into_matching_policy(
        self, estimator, calibration_arrays, tmp_path
    ):
        """A PR-3-era archive (no format/rank metadata evolution) keeps loading."""
        policy = AdapterPolicy(scope="last", epochs=1)
        registry = AdapterRegistry(estimator.model, policy=policy)
        user = next(iter(calibration_arrays))
        registry.adapt_user(user, calibration_arrays[user])
        params = registry.parameters_for(user)

        # Re-author the archive exactly as format 1 wrote it: full tensors,
        # metadata with just format/scope/users.
        state = {f"user000000.p{slot:03d}": np.asarray(p) for slot, p in enumerate(params)}
        legacy = save_state(
            state,
            tmp_path / "legacy.npz",
            metadata={"format": 1, "scope": "last", "users": [["str", str(user)]]},
        )

        restored = AdapterRegistry(estimator.model, policy=policy)
        assert restored.load(legacy) == [str(user)]
        for a, b in zip(params, restored.parameters_for(str(user))):
            np.testing.assert_array_equal(a, b)

    def test_legacy_format1_cannot_load_into_lora_policy(self, estimator, tmp_path):
        legacy = save_state(
            {"user000000.p000": np.zeros((3, 3))},
            tmp_path / "legacy.npz",
            metadata={"format": 1, "scope": "lora", "users": [["str", "alice"]]},
        )
        registry = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="lora", rank=4, epochs=1)
        )
        with pytest.raises(ValueError, match="format-1"):
            registry.load(legacy)

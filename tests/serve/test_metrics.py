"""Tests of the serving metrics surface."""

from __future__ import annotations

import pytest

from repro.serve import ServeMetrics, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.0) == 1
        assert percentile(values, 0.5) == 51  # nearest rank over 100 samples
        assert percentile(values, 1.0) == 100

    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServeMetrics:
    @pytest.fixture
    def clock(self):
        class _Clock:
            time = 0.0

            def __call__(self) -> float:
                return self.time

        return _Clock()

    def test_latency_percentiles(self, clock):
        metrics = ServeMetrics(clock=clock)
        for latency_ms in [1.0, 2.0, 3.0, 4.0, 100.0]:
            metrics.record_completion(latency_ms / 1000.0)
        assert metrics.latency_p50_ms == pytest.approx(3.0)
        assert metrics.latency_p95_ms == pytest.approx(100.0)

    def test_latency_window_is_bounded(self, clock):
        metrics = ServeMetrics(latency_window=4, clock=clock)
        for latency in [10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0]:
            metrics.record_completion(latency)
        # Only the last four latencies remain in the window.
        assert metrics.latency_p95_ms == pytest.approx(1000.0)

    def test_throughput_uses_wall_clock(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_submit(queue_depth=1)
        for _ in range(10):
            metrics.record_completion(0.001)
        clock.time = 2.0
        metrics.record_completion(0.001)
        assert metrics.throughput_fps == pytest.approx(11 / 2.0)

    def test_batch_statistics(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_flush(4)
        metrics.record_flush(8)
        assert metrics.mean_batch_size == pytest.approx(6.0)
        assert metrics.max_batch_seen == 8

    def test_param_cache_hit_rate(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_param_cache(hit=False)
        metrics.record_param_cache(hit=True)
        metrics.record_param_cache(hit=True)
        assert metrics.param_cache_hit_rate == pytest.approx(2 / 3)

    def test_snapshot_contains_every_surface(self, clock):
        metrics = ServeMetrics(clock=clock)
        snapshot = metrics.snapshot(queue_depth=3)
        for key in (
            "submitted",
            "completed",
            "dropped",
            "flushes",
            "mean_batch_size",
            "latency_p50_ms",
            "latency_p95_ms",
            "throughput_fps",
            "param_cache_hit_rate",
            "queue_depth",
        ):
            assert key in snapshot
        assert snapshot["queue_depth"] == 3

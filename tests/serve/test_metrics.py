"""Tests of the serving metrics surface."""

from __future__ import annotations

import pytest

from repro.serve import ServeMetrics, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.0) == 1
        assert percentile(values, 0.5) == 51  # nearest rank over 100 samples
        assert percentile(values, 1.0) == 100

    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServeMetrics:
    @pytest.fixture
    def clock(self):
        class _Clock:
            time = 0.0

            def __call__(self) -> float:
                return self.time

        return _Clock()

    def test_latency_percentiles(self, clock):
        metrics = ServeMetrics(clock=clock)
        for latency_ms in [1.0, 2.0, 3.0, 4.0, 100.0]:
            metrics.record_completion(latency_ms / 1000.0)
        assert metrics.latency_p50_ms == pytest.approx(3.0)
        assert metrics.latency_p95_ms == pytest.approx(100.0)

    def test_latency_window_is_bounded(self, clock):
        metrics = ServeMetrics(latency_window=4, clock=clock)
        for latency in [10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0]:
            metrics.record_completion(latency)
        # Only the last four latencies remain in the window.
        assert metrics.latency_p95_ms == pytest.approx(1000.0)

    def test_throughput_uses_wall_clock(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_submit(queue_depth=1)
        for _ in range(10):
            metrics.record_completion(0.001)
        clock.time = 2.0
        metrics.record_completion(0.001)
        assert metrics.throughput_fps == pytest.approx(11 / 2.0)

    def test_batch_statistics(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_flush(4)
        metrics.record_flush(8)
        assert metrics.mean_batch_size == pytest.approx(6.0)
        assert metrics.max_batch_seen == 8

    def test_param_cache_hit_rate(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_param_cache(hit=False)
        metrics.record_param_cache(hit=True)
        metrics.record_param_cache(hit=True)
        assert metrics.param_cache_hit_rate == pytest.approx(2 / 3)

    def test_snapshot_contains_every_surface(self, clock):
        metrics = ServeMetrics(clock=clock)
        snapshot = metrics.snapshot(queue_depth=3)
        for key in (
            "submitted",
            "completed",
            "dropped",
            "flushes",
            "mean_batch_size",
            "latency_p50_ms",
            "latency_p95_ms",
            "throughput_fps",
            "param_cache_hit_rate",
            "queue_depth",
        ):
            assert key in snapshot
        assert snapshot["queue_depth"] == 3


class TestAggregate:
    @pytest.fixture
    def clock(self):
        class _Clock:
            time = 0.0

            def __call__(self) -> float:
                return self.time

        return _Clock()

    def test_counters_sum_and_marks_take_max(self, clock):
        a = ServeMetrics(clock=clock)
        b = ServeMetrics(clock=clock)
        a.record_submit(queue_depth=2)
        a.record_flush(2)
        b.record_submit(queue_depth=7)
        b.record_submit(queue_depth=1)
        b.record_flush(4)
        merged = ServeMetrics.aggregate([a, b])
        assert merged["submitted"] == 3
        assert merged["flushes"] == 2
        assert merged["mean_batch_size"] == pytest.approx(3.0)
        assert merged["max_batch_seen"] == 4
        assert merged["max_queue_depth_seen"] == 7

    def test_latency_percentiles_pool_across_shards(self, clock):
        a = ServeMetrics(clock=clock)
        b = ServeMetrics(clock=clock)
        for value in (0.001, 0.002):
            a.record_completion(value)
        for value in (0.003, 0.100):
            b.record_completion(value)
        merged = ServeMetrics.aggregate([a, b])
        # Nearest-rank p50 over the pooled window [1, 2, 3, 100] ms.
        assert merged["latency_p50_ms"] == pytest.approx(3.0)
        assert merged["latency_p95_ms"] == pytest.approx(100.0)
        assert merged["completed"] == 4

    def test_throughput_spans_overlapping_shard_clocks(self, clock):
        a = ServeMetrics(clock=clock)
        b = ServeMetrics(clock=clock)
        clock.time = 0.0
        a.record_submit(queue_depth=0)
        b.record_submit(queue_depth=0)
        clock.time = 2.0
        a.record_completion(0.5)
        b.record_completion(0.5)
        merged = ServeMetrics.aggregate([a, b])
        # 2 completions over 2 shared seconds — not 2 over 4 summed seconds.
        assert merged["throughput_fps"] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ServeMetrics.aggregate([])


class TestPrometheusExport:
    @pytest.fixture
    def clock(self):
        class _Clock:
            time = 0.0

            def __call__(self) -> float:
                return self.time

        return _Clock()

    def test_counters_gauges_and_summary_present(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_submit(queue_depth=1)
        metrics.record_flush(1)
        metrics.record_completion(0.004)
        text = metrics.to_prometheus(queue_depth=0)
        assert "# TYPE fuse_serve_requests_submitted_total counter" in text
        assert "fuse_serve_requests_submitted_total 1" in text
        assert "# TYPE fuse_serve_queue_depth gauge" in text
        assert "# TYPE fuse_serve_request_latency_seconds summary" in text
        assert 'fuse_serve_request_latency_seconds{quantile="0.5"} 0.004' in text
        assert "fuse_serve_request_latency_seconds_sum 0.004" in text
        assert "fuse_serve_request_latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_labels_attach_to_every_sample(self, clock):
        metrics = ServeMetrics(clock=clock)
        metrics.record_completion(0.002)
        text = metrics.to_prometheus(labels={"shard": "3"})
        assert 'fuse_serve_requests_completed_total{shard="3"} 1' in text
        assert 'fuse_serve_request_latency_seconds{shard="3",quantile="0.95"}' in text
        assert 'fuse_serve_request_latency_seconds_count{shard="3"} 1' in text

    def test_multi_instance_exposition_groups_families(self, clock):
        from repro.serve import prometheus_exposition

        a, b = ServeMetrics(clock=clock), ServeMetrics(clock=clock)
        a.record_completion(0.001)
        text = prometheus_exposition(
            [({"shard": "0"}, a, 2), ({"shard": "1"}, b, 0)]
        )
        assert text.count("# TYPE fuse_serve_requests_completed_total counter") == 1
        assert 'fuse_serve_requests_completed_total{shard="0"} 1' in text
        assert 'fuse_serve_requests_completed_total{shard="1"} 0' in text
        assert 'fuse_serve_queue_depth{shard="0"} 2' in text

    def test_label_values_are_escaped(self, clock):
        metrics = ServeMetrics(clock=clock)
        text = metrics.to_prometheus(labels={"host": 'node"1\\a\nb'})
        assert 'host="node\\"1\\\\a\\nb"' in text


class TestAggregateSnapshots:
    """Cluster-side aggregation: plain snapshot dicts, heterogeneous keys."""

    @pytest.fixture
    def clock(self):
        class _Clock:
            time = 0.0

            def __call__(self) -> float:
                return self.time

        return _Clock()

    def test_snapshot_dicts_merge_like_instances(self, clock):
        a, b = ServeMetrics(clock=clock), ServeMetrics(clock=clock)
        a.record_submit(queue_depth=2)
        a.record_flush(2)
        a.record_completion(0.004)
        b.record_submit(queue_depth=7)
        b.record_flush(4)
        b.record_completion(0.002)
        merged = ServeMetrics.aggregate([a.snapshot(), b.snapshot()])
        assert merged["submitted"] == 2
        assert merged["flushes"] == 2
        assert merged["mean_batch_size"] == pytest.approx(3.0)
        assert merged["max_queue_depth_seen"] == 7

    def test_pre_tier_snapshots_tolerate_missing_keys(self, clock):
        """A backend predating the adapter-tier counters reports a shorter
        snapshot; aggregation must default the absent keys, not raise."""
        modern = ServeMetrics(clock=clock)
        modern.record_submit(queue_depth=1)
        modern.record_adapter_access("hot")
        legacy = {
            key: value
            for key, value in ServeMetrics(clock=clock).snapshot().items()
            if not key.startswith("adapter_")
        }
        legacy["submitted"] = 5
        merged = ServeMetrics.aggregate([modern.snapshot(), legacy])
        assert merged["submitted"] == 6
        assert merged["adapter_hot_hits"] == 1
        assert merged["adapter_tier_hit_rate"] == pytest.approx(1.0)

    def test_mixed_instances_and_snapshots(self, clock):
        instance = ServeMetrics(clock=clock)
        instance.record_submit(queue_depth=0)
        merged = ServeMetrics.aggregate([instance, {"submitted": 4, "completed": 4}])
        assert merged["submitted"] == 5
        assert merged["completed"] == 4

    def test_latency_percentiles_weight_by_completions(self, clock):
        a, b = ServeMetrics(clock=clock), ServeMetrics(clock=clock)
        a.record_completion(0.010)  # p50 = 10ms, 1 completion
        for _ in range(3):
            b.record_completion(0.002)  # p50 = 2ms, 3 completions
        merged = ServeMetrics.aggregate([a.snapshot(), b.snapshot()])
        assert merged["latency_p50_ms"] == pytest.approx((10.0 + 3 * 2.0) / 4)

    def test_snapshot_throughput_sums(self, clock):
        a, b = ServeMetrics(clock=clock), ServeMetrics(clock=clock)
        a.record_submit(queue_depth=0)
        b.record_submit(queue_depth=0)
        clock.time = 2.0
        a.record_completion(0.5)
        b.record_completion(0.5)
        merged = ServeMetrics.aggregate([a.snapshot(), b.snapshot()])
        # Independent processes with private clocks: sum, no shared wall.
        assert merged["throughput_fps"] == pytest.approx(1.0)

    def test_extra_keys_are_carried(self, clock):
        merged = ServeMetrics.aggregate(
            [{"submitted": 1, "router_frames_routed": 9}, {"submitted": 2}]
        )
        assert merged["router_frames_routed"] == 9


class TestMergeExpositions:
    @pytest.fixture
    def clock(self):
        class _Clock:
            time = 0.0

            def __call__(self) -> float:
                return self.time

        return _Clock()

    def test_families_group_under_one_header(self, clock):
        from repro.serve import merge_expositions

        a, b = ServeMetrics(clock=clock), ServeMetrics(clock=clock)
        a.record_completion(0.001)
        b.record_completion(0.002)
        merged = merge_expositions(
            [
                (a.to_prometheus(), {"instance": "b0"}),
                (b.to_prometheus(), {"instance": "b1"}),
            ]
        )
        assert merged.count("# TYPE fuse_serve_requests_completed_total counter") == 1
        assert 'fuse_serve_requests_completed_total{instance="b0"} 1' in merged
        assert 'fuse_serve_requests_completed_total{instance="b1"} 1' in merged

    def test_labels_merge_with_existing_ones(self, clock):
        from repro.serve import merge_expositions

        metrics = ServeMetrics(clock=clock)
        metrics.record_completion(0.001)
        text = metrics.to_prometheus(labels={"shard": "0"})
        merged = merge_expositions([(text, {"instance": "b0"})])
        assert 'fuse_serve_requests_completed_total{instance="b0",shard="0"} 1' in merged

    def test_unlabelled_parts_pass_through(self, clock):
        from repro.serve import merge_expositions

        router_text = (
            "# HELP fuse_router_frames_routed_total Frames routed.\n"
            "# TYPE fuse_router_frames_routed_total counter\n"
            "fuse_router_frames_routed_total 3\n"
        )
        merged = merge_expositions(
            [(ServeMetrics(clock=clock).to_prometheus(), {"instance": "b0"}),
             (router_text, None)]
        )
        assert "fuse_router_frames_routed_total 3" in merged
        assert merged.endswith("\n")

    def test_summary_style_suffixes_stay_in_their_family(self, clock):
        from repro.serve import merge_expositions

        part = (
            "# HELP fuse_latency_ms Latency.\n"
            "# TYPE fuse_latency_ms summary\n"
            "fuse_latency_ms_sum 4.0\n"
            "fuse_latency_ms_count 2\n"
        )
        merged = merge_expositions([(part, {"instance": "b0"}), (part, {"instance": "b1"})])
        assert merged.count("# TYPE fuse_latency_ms summary") == 1
        assert 'fuse_latency_ms_sum{instance="b0"} 4.0' in merged
        assert 'fuse_latency_ms_count{instance="b1"} 2' in merged

    def test_empty_parts_rejected(self):
        from repro.serve import merge_expositions

        with pytest.raises(ValueError):
            merge_expositions([])

"""Consistent-hash ring: pinned placements, minimal remap, balance.

The ring is the router's placement authority, so its determinism is pinned
with literal expected values — a placement change is a breaking change
(it would strand every pinned user's session on the wrong backend across
a router restart).
"""

from __future__ import annotations

import pytest

from repro.serve import HashRing

USERS = [f"user-{i}" for i in range(8)]


class TestDeterminism:
    def test_placements_are_pinned(self):
        """Literal placements: any change here is a breaking change."""
        ring = HashRing(["b1", "b2", "b3"])
        assert {user: ring.node_for(user) for user in USERS} == {
            "user-0": "b3",
            "user-1": "b3",
            "user-2": "b2",
            "user-3": "b2",
            "user-4": "b3",
            "user-5": "b3",
            "user-6": "b1",
            "user-7": "b3",
        }
        # Integer ids hash via repr, distinctly from their str forms.
        assert [ring.node_for(uid) for uid in (0, 1, 2)] == ["b1", "b1", "b1"]

    def test_placement_ignores_insertion_order(self):
        forward = HashRing(["b1", "b2", "b3"])
        backward = HashRing(["b3", "b2", "b1"])
        assert [forward.node_for(u) for u in USERS] == [
            backward.node_for(u) for u in USERS
        ]

    def test_copy_is_independent(self):
        ring = HashRing(["b1", "b2"])
        twin = ring.copy()
        twin.remove("b2")
        assert ring.nodes == ["b1", "b2"]
        assert twin.nodes == ["b1"]


class TestMinimalRemap:
    def test_add_moves_only_the_new_nodes_arcs(self):
        """Users that stay must map identically; movers go to the new node."""
        two = HashRing(["b1", "b2"])
        three = two.copy()
        three.add("b3")
        moved = two.moved_keys(USERS, three)
        assert moved == ["user-0", "user-1", "user-4", "user-5", "user-7"]
        for user in USERS:
            if user in moved:
                assert three.node_for(user) == "b3"
            else:
                assert three.node_for(user) == two.node_for(user)

    def test_remove_spreads_users_over_survivors(self):
        keys = [f"user-{i}" for i in range(200)]
        three = HashRing(["b1", "b2", "b3"])
        two = three.copy()
        two.remove("b3")
        for key in keys:
            if three.node_for(key) == "b3":
                # orphans may land on either survivor (virtual nodes
                # interleave the arcs), not all on one neighbour
                assert two.node_for(key) in ("b1", "b2")
            else:
                assert two.node_for(key) == three.node_for(key)
        orphan_homes = {
            two.node_for(k) for k in keys if three.node_for(k) == "b3"
        }
        assert orphan_homes == {"b1", "b2"}


class TestBalance:
    def test_arc_shares_are_even(self):
        ring = HashRing(["b1", "b2", "b3"])
        shares = [ring.arc_share(node) for node in ring.nodes]
        assert sum(shares) == pytest.approx(1.0)
        assert all(0.2 < share < 0.5 for share in shares)

    def test_single_node_owns_everything(self):
        ring = HashRing(["solo"])
        assert ring.arc_share("solo") == 1.0
        assert all(ring.node_for(u) == "solo" for u in USERS)


class TestErrors:
    def test_membership_protocol(self):
        ring = HashRing(["b1"])
        assert len(ring) == 1 and "b1" in ring and "b2" not in ring

    def test_duplicate_add_rejected(self):
        ring = HashRing(["b1"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add("b1")

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError, match="non-empty strings"):
            HashRing([""])

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["b1"]).remove("b2")

    def test_empty_ring_has_no_placement(self):
        with pytest.raises(LookupError, match="no nodes"):
            HashRing().node_for("user-0")

    def test_vnodes_validated(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)

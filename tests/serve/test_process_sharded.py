"""Process-per-shard serving: replay equivalence, lifecycle, crash recovery.

The acceptance property extends the sharded one across the process
boundary: a replay through a :class:`ProcessShardedPoseServer` — every
shard a worker process behind a picklable request/reply transport — is
bitwise identical, user for user, to the same replay through the in-process
:class:`ShardedPoseServer` (and therefore to a single server).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.sample import PoseDataset
from repro.serve import (
    FrameDropped,
    ProcessShardedPoseServer,
    QueueFull,
    ServeConfig,
    ShardCrashed,
    ShardRemoteError,
    ShardedPoseServer,
    adaptation_split,
    replay_users,
    user_streams_from_dataset,
)
from repro.serve.worker import MetricsRequest


@pytest.fixture(scope="module")
def streams(serve_dataset):
    return user_streams_from_dataset(serve_dataset, num_users=12, frames_per_user=4)


@pytest.fixture()
def server(estimator):
    with ProcessShardedPoseServer(
        estimator, num_shards=2, config=ServeConfig(max_batch_size=8)
    ) as server:
        yield server


class TestReplayEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_process_replay_bitwise_identical_to_in_process(
        self, estimator, streams, num_shards
    ):
        config = ServeConfig(max_batch_size=16)
        inproc = replay_users(
            ShardedPoseServer(estimator, num_shards=num_shards, config=config), streams
        )
        with ProcessShardedPoseServer(
            estimator, num_shards=num_shards, config=config
        ) as server:
            proc = replay_users(server, streams)
        assert proc.frames_served == inproc.frames_served
        assert proc.frames_dropped == 0
        for user in streams:
            np.testing.assert_array_equal(proc.predictions[user], inproc.predictions[user])

    def test_adapted_process_replay_bitwise_identical(self, estimator, serve_dataset):
        streams = user_streams_from_dataset(serve_dataset, num_users=6, frames_per_user=10)
        calibration, serving = adaptation_split(streams, adaptation_frames=6)
        adapted = list(serving)[:3]
        calibration_sets = {}
        for user in adapted:
            dataset = PoseDataset(name="calibration")
            dataset.extend(calibration[user])
            calibration_sets[user] = dataset

        config = ServeConfig(max_batch_size=8)
        inproc_server = ShardedPoseServer(estimator, num_shards=2, config=config)
        inproc_server.adapt_users(calibration_sets, epochs=2)
        inproc = replay_users(inproc_server, serving)

        with ProcessShardedPoseServer(estimator, num_shards=2, config=config) as server:
            server.adapt_users(calibration_sets, epochs=2)
            snapshot = server.metrics_snapshot()
            assert snapshot["adapted_parameter_sets"] == len(adapted)
            proc = replay_users(server, serving)

        for user in serving:
            np.testing.assert_array_equal(proc.predictions[user], inproc.predictions[user])


class TestFacade:
    def test_submit_routes_and_answers(self, server, streams):
        user = next(iter(streams))
        joints = server.submit(user, streams[user][0].cloud)
        assert joints.shape == (19, 3)
        assert server.pending == 0

    def test_enqueue_resolves_on_flush(self, server, streams):
        users = list(streams)[:3]
        handles = [server.enqueue(user, streams[user][0].cloud) for user in users]
        assert server.pending == len([h for h in handles if not h.done])
        server.flush()
        for handle in handles:
            assert handle.done
            assert handle.result(flush=False).shape == (19, 3)
        assert server.pending == 0

    def test_enqueue_many_matches_sequential_enqueues_bitwise(
        self, estimator, streams
    ):
        """One EnqueueBatch IPC hop per shard == N Enqueue round-trips."""
        users = list(streams)[:6]
        items = [
            (user, streams[user][tick].cloud) for tick in range(3) for user in users
        ]
        config = ServeConfig(max_batch_size=8)
        with ProcessShardedPoseServer(estimator, num_shards=2, config=config) as one:
            sequential = [one.enqueue(user, frame) for user, frame in items]
            one.flush()
        with ProcessShardedPoseServer(estimator, num_shards=2, config=config) as many:
            batched = many.enqueue_many(items)
            many.flush()
        assert len(batched) == len(items)
        for left, right in zip(sequential, batched):
            np.testing.assert_array_equal(
                left.result(flush=False), right.result(flush=False)
            )

    def test_enqueue_many_mid_batch_rejection_keeps_prefix_valid(
        self, estimator, streams
    ):
        """A QueueFull on frame k must not orphan frames 0..k-1: they stay
        registered, resolvable handles; the rejected frames come back as
        per-slot exceptions (never a whole-batch failure the client would
        blindly retry, double-feeding fusion rings)."""
        users = list(streams)[:6]
        config = ServeConfig(
            max_batch_size=64, max_queue_depth=2, overflow="reject"
        )
        with ProcessShardedPoseServer(estimator, num_shards=1, config=config) as server:
            items = [(user, streams[user][0].cloud) for user in users]
            outcomes = server.enqueue_many(items)
            handles = [h for h in outcomes if not isinstance(h, Exception)]
            rejected = [h for h in outcomes if isinstance(h, Exception)]
            assert len(handles) == 2  # the admitted prefix, in order
            assert outcomes[0] is handles[0] and outcomes[1] is handles[1]
            assert all(isinstance(error, QueueFull) for error in rejected)
            server.flush()
            for handle in handles:
                assert handle.result(flush=False).shape == (19, 3)

    def test_poll_applies_worker_deadlines(self, estimator, streams):
        config = ServeConfig(max_batch_size=64, max_delay_ms=0.0)
        with ProcessShardedPoseServer(estimator, num_shards=2, config=config) as server:
            users = list(streams)[:4]
            for user in users:
                server.enqueue(user, streams[user][0].cloud)
            assert server.pending == 4
            assert server.poll() == 4
            assert server.pending == 0

    def test_forget_user_clears_shard_state(self, server, streams):
        user = next(iter(streams))
        server.submit(user, streams[user][0].cloud)
        index = server.shard_index(user)
        assert server.workers[index].call(MetricsRequest()).sessions == 1
        server.forget_user(user)
        assert server.workers[index].call(MetricsRequest()).sessions == 0

    def test_remote_error_reports_traceback_and_keeps_shard_alive(self, server, streams):
        user = next(iter(streams))
        with pytest.raises(ShardRemoteError, match="remote traceback"):
            server.adapt_users({user: object()})  # not a dataset: fails in the worker
        # The shard survived the failed command and still serves.
        assert server.submit(user, streams[user][0].cloud).shape == (19, 3)
        assert server.restarts == 0


class TestObservability:
    def test_snapshot_aggregates_across_processes(self, server, streams):
        result = replay_users(server, streams)
        total = sum(len(stream) for stream in streams.values())
        snapshot = result.metrics
        assert snapshot["shards"] == 2
        assert snapshot["submitted"] == total
        assert snapshot["completed"] == total
        assert snapshot["sessions"] == len(streams)
        assert snapshot["queue_depth"] == 0
        assert snapshot["shard_restarts"] == 0
        assert snapshot["latency_p95_ms"] >= snapshot["latency_p50_ms"] >= 0.0
        assert snapshot["throughput_fps"] > 0

    def test_prometheus_labels_every_shard_process(self, server, streams):
        replay_users(server, streams)
        text = server.to_prometheus()
        for shard in (0, 1):
            assert f'fuse_serve_requests_completed_total{{shard="{shard}"}}' in text
        assert text.count("# TYPE fuse_serve_requests_completed_total counter") == 1


class TestThreadSafety:
    def test_concurrent_submits_from_many_threads(self, estimator, streams):
        """The façade is called from the front-end's executor threads.

        The worker round-trip and the parent-side handle bookkeeping must
        be atomic per shard: without the shard locks, a reply ledger can
        resolve a sequence before its handle is registered and a submit
        hangs or raises 'still pending'.
        """
        from concurrent.futures import ThreadPoolExecutor

        with ProcessShardedPoseServer(
            estimator, num_shards=2, config=ServeConfig(max_batch_size=4)
        ) as server:
            users = list(streams)

            def pump(user):
                return [
                    server.submit(user, sample.cloud) for sample in streams[user][:3]
                ]

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(pump, users))
            for per_user in results:
                assert all(joints.shape == (19, 3) for joints in per_user)
            snapshot = server.metrics_snapshot()
            assert snapshot["completed"] == 3 * len(users)
            assert server.pending == 0


class TestLifecycle:
    def test_close_is_idempotent_and_drops_outstanding(self, estimator, streams):
        config = ServeConfig(max_batch_size=64, max_delay_ms=10_000.0)
        server = ProcessShardedPoseServer(estimator, num_shards=2, config=config)
        user = next(iter(streams))
        handle = server.enqueue(user, streams[user][0].cloud)
        server.close()
        server.close()
        assert handle.done or handle.dropped
        with pytest.raises(RuntimeError):
            server.submit(user, streams[user][0].cloud)

    def test_crashed_shard_restarts_and_serving_continues(self, estimator, streams):
        with ProcessShardedPoseServer(
            estimator, num_shards=2, config=ServeConfig(max_batch_size=4)
        ) as server:
            users = list(streams)
            # Park one pending request so the crash has something to drop.
            victim_shard = server.shard_index(users[0])
            handle = server.enqueue(users[0], streams[users[0]][0].cloud)

            server.workers[victim_shard]._process.kill()
            with pytest.raises(ShardCrashed):
                server.submit(users[0], streams[users[0]][0].cloud)

            # The worker was replaced; its outstanding request was dropped.
            assert server.restarts == 1
            assert handle.done or handle.dropped
            if handle.dropped:
                with pytest.raises(FrameDropped):
                    handle.result(flush=False)

            # Fresh shard serves the same users again (sessions restart empty).
            for user in users[:4]:
                assert server.submit(user, streams[user][0].cloud).shape == (19, 3)
            assert server.metrics_snapshot()["shard_restarts"] == 1

"""The routed serving tier, end to end over real sockets.

The acceptance property of the cluster tier: a replay through
:class:`PoseRouter` over two or more backends — including across a forced
backend failure and a live user migration — is bitwise identical to the
same replay against one reference server.  Everything here runs on Unix
sockets under ``tmp_path`` with kernel-assigned names, so tests are
parallel-safe and port-free.
"""

from __future__ import annotations

import asyncio
import contextlib

import numpy as np
import pytest

from repro.dataset.loader import ArrayDataset
from repro.serve import (
    AdapterPolicy,
    AsyncPoseClient,
    BackendSpec,
    NoBackendAvailable,
    PoseFrontend,
    PoseRouter,
    PoseServer,
    ProcessShardedPoseServer,
    ServeConfig,
)

from .conftest import make_frame

LAZY = ServeConfig(max_batch_size=8, max_delay_ms=10_000.0)

#: health cadence fast enough for tests, debounced enough to not flap
FAST_HEALTH = dict(health_interval_s=0.05, health_timeout_s=0.5, health_failures=2)

#: user-6 and user-11 land on b1, the rest on b0 (pinned by test_ring.py's
#: determinism) — the list exercises both backends of a two-node ring
USERS = [f"user-{i}" for i in (0, 1, 2, 3, 6, 11)]


def run_cluster(servers, scenario, tmp_path, **router_kwargs):
    """Start one front-end per server plus a router; run ``scenario``.

    ``scenario(client, router, frontends)`` gets a client connected to the
    router's socket.  Backends are named ``b0..bN`` and listen on Unix
    sockets under ``tmp_path``.
    """

    async def body():
        frontends = []
        specs = []
        for index, server in enumerate(servers):
            path = str(tmp_path / f"b{index}.sock")
            frontend = PoseFrontend(server, unix_path=path)
            await frontend.start()
            frontends.append(frontend)
            specs.append(BackendSpec(name=f"b{index}", unix_path=path))
        router_path = str(tmp_path / "router.sock")
        router = PoseRouter(
            specs,
            unix_path=router_path,
            connect_retries=3,
            connect_backoff_s=0.01,
            **{**FAST_HEALTH, **router_kwargs},
        )
        await router.start()
        try:
            async with AsyncPoseClient() as client:
                await client.connect_unix(router_path)
                return await scenario(client, router, frontends)
        finally:
            await router.stop()
            for frontend in frontends:
                with contextlib.suppress(Exception):
                    await frontend.stop()

    return asyncio.run(body())


def reference_replay(estimator, streams):
    """The single-server ground truth for a ``{user: [frames]}`` replay."""
    server = PoseServer(estimator, LAZY)
    return {
        user: [server.submit(user, frame) for frame in frames]
        for user, frames in streams.items()
    }


def make_streams(num_frames=4, users=USERS):
    return {
        user: [make_frame(np.random.default_rng(1000 + 31 * i + j)) for j in range(num_frames)]
        for i, user in enumerate(users)
    }


class TestClusterShape:
    def test_hello_reports_the_fleet(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            hello = await client.hello()
            assert hello["role"] == "router"
            assert hello["backends"] == ["b0", "b1"]
            assert hello["protocol"] == 2
            assert hello["push_credits"] == 256
            assert hello["shards"] == 2  # one unsharded server each

        run_cluster(servers, scenario, tmp_path)

    def test_router_requires_protocol_v2(self):
        with pytest.raises(ValueError, match="protocol v2"):
            PoseRouter(unix_path="/tmp/unused.sock", protocol=1)

    def test_empty_ring_rejects_submits(self, estimator, tmp_path):
        async def scenario(client, router, frontends):
            with pytest.raises(RuntimeError, match="NoBackendAvailable"):
                await client.submit("alice", make_frame(np.random.default_rng(0)))

        run_cluster([], scenario, tmp_path)

    def test_no_backend_available_is_a_runtime_error(self):
        assert issubclass(NoBackendAvailable, RuntimeError)


class TestRoutedReplay:
    def test_replay_is_bitwise_identical_to_single_server(self, estimator, tmp_path):
        """The tier-acceptance smoke: 6 users spread over 2 backends."""
        streams = make_streams()
        expected = reference_replay(estimator, streams)
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            for step in range(len(streams[USERS[0]])):
                for user in USERS:
                    got = await client.submit(user, streams[user][step])
                    np.testing.assert_array_equal(got, expected[user][step])
            # the placement actually used both backends
            placed = set(router._placement.values())
            assert placed == {"b0", "b1"}
            assert router.frames_routed == sum(len(f) for f in streams.values())

        run_cluster(servers, scenario, tmp_path)

    def test_streaming_pushes_relay_through_the_router(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            frames = [make_frame(np.random.default_rng(3 + i)) for i in range(3)]
            reference = PoseServer(estimator, LAZY)
            expected = [reference.submit("stream-user", frame) for frame in frames]
            futures = [await client.enqueue("stream-user", frame) for frame in frames]
            await client.flush()
            pushes = await asyncio.gather(*futures)
            for push, want in zip(pushes, expected):
                assert push.get("pushed") is True
                np.testing.assert_array_equal(np.asarray(push["joints"]), want)

        run_cluster(servers, scenario, tmp_path)

    def test_batched_submit_routes_each_user_in_order(self, estimator, tmp_path):
        streams = make_streams(num_frames=3, users=USERS[:4])
        expected = reference_replay(estimator, streams)
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            batch = [
                (user, frame) for user in streams for frame in streams[user]
            ]
            results = await client.submit_batch(batch)
            flat_expected = [expected[user][i] for user in streams for i in range(3)]
            for got, want in zip(results, flat_expected):
                np.testing.assert_array_equal(got, want)

        run_cluster(servers, scenario, tmp_path)


class TestClusterMetrics:
    def test_metrics_aggregate_across_backends(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            for user in USERS:
                await client.submit(user, make_frame(np.random.default_rng(5)))
            report = await client.metrics()
            assert report["completed"] == len(USERS)
            assert report["router_frames_routed"] == len(USERS)
            assert report["router_backends_healthy"] == 2
            assert report["router_users_placed"] == len(USERS)

        run_cluster(servers, scenario, tmp_path)

    def test_prometheus_labels_every_backend(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            for user in USERS:
                await client.submit(user, make_frame(np.random.default_rng(6)))
            text = await client.prometheus()
            assert 'instance="b0"' in text and 'instance="b1"' in text
            assert "fuse_router_frames_routed_total" in text
            # merged exposition: one HELP per family, not one per backend
            helps = [line for line in text.splitlines() if line.startswith("# HELP ")]
            assert len(helps) == len({h.split()[2] for h in helps})

        run_cluster(servers, scenario, tmp_path)


class TestFailover:
    def test_forced_backend_death_fails_users_over_bitwise(self, estimator, tmp_path):
        """Kill a backend mid-replay: its users continue on the survivor,
        and the full sequence stays bitwise equal to the reference."""
        streams = make_streams(num_frames=6, users=USERS[:4])
        expected = reference_replay(estimator, streams)
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]

        async def scenario(client, router, frontends):
            for user in streams:
                for step in range(3):
                    got = await client.submit(user, streams[user][step])
                    np.testing.assert_array_equal(got, expected[user][step])

            victim = router._placement[USERS[0]]
            victim_index = int(victim[1:])
            moved_users = [u for u, b in router._placement.items() if b == victim]
            await frontends[victim_index].stop()
            for _ in range(200):
                await asyncio.sleep(0.01)
                if router.monitor.is_down(victim):
                    break
            assert not router.backends[victim].healthy

            for user in streams:
                for step in range(3, 6):
                    got = await client.submit(user, streams[user][step])
                    np.testing.assert_array_equal(got, expected[user][step])
            assert router.users_failed_over == len(moved_users)
            assert router.backends_lost == 1
            survivors = set(router._placement.values())
            assert victim not in survivors

        run_cluster(servers, scenario, tmp_path)


class TestLiveMigration:
    def test_migrate_user_moves_session_and_adapter_bitwise(
        self, estimator, serve_dataset, tmp_path
    ):
        policy = AdapterPolicy(scope="last", epochs=2)
        arrays = estimator.prepare(serve_dataset[:8])
        calibration = ArrayDataset(arrays.features, arrays.labels)

        # reference: one server, adapted, never migrated
        reference = PoseServer(estimator, LAZY, policy=policy)
        reference.adapt_user("alice", calibration)
        frames = [make_frame(np.random.default_rng(40 + i)) for i in range(6)]
        expected = [reference.submit("alice", frame) for frame in frames]

        servers = [PoseServer(estimator, LAZY, policy=policy) for _ in range(2)]

        async def scenario(client, router, frontends):
            for step in range(3):
                got = await client.submit("alice", frames[step])
                np.testing.assert_array_equal(got, expected[step])
            source = router._placement["alice"]
            target = "b1" if source == "b0" else "b0"

            moved = await router.migrate_user("alice", target)
            assert moved and router.users_migrated == 1
            assert router._placement["alice"] == target
            # the source forgot the user entirely
            assert servers[int(source[1:])].sessions.get("alice") is None

            for step in range(3, 6):
                got = await client.submit("alice", frames[step])
                np.testing.assert_array_equal(got, expected[step])

        # adapt on every backend replica? No: adapt only where alice lands.
        # The router pins alice on first submit; adapt her everywhere ahead
        # of time so placement choice cannot matter.
        for server in servers:
            server.adapt_user("alice", calibration)

        run_cluster(servers, scenario, tmp_path)

    def test_migrating_between_backends_keeps_inflight_order(self, estimator, tmp_path):
        """Frames submitted concurrently with a migration all resolve, in
        FIFO order per user, with no frame lost or double-served."""
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]
        frames = [make_frame(np.random.default_rng(60 + i)) for i in range(8)]
        reference = PoseServer(estimator, LAZY)
        expected = [reference.submit("bob", frame) for frame in frames]

        async def scenario(client, router, frontends):
            await client.submit("bob", frames[0])
            source = router._placement["bob"]
            target = "b1" if source == "b0" else "b0"
            submits = [
                asyncio.ensure_future(client.submit("bob", frame))
                for frame in frames[1:]
            ]
            await router.migrate_user("bob", target)
            results = await asyncio.gather(*submits)
            for got, want in zip(results, expected[1:]):
                np.testing.assert_array_equal(got, want)
            assert router._placement["bob"] == target

        run_cluster(servers, scenario, tmp_path)


class TestTopologyAdmin:
    def test_add_backend_rebalances_by_live_migration(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]
        extra = PoseServer(estimator, LAZY)
        streams = make_streams(num_frames=2)
        expected = reference_replay(estimator, streams)

        async def scenario(client, router, frontends):
            for user in USERS:
                got = await client.submit(user, streams[user][0])
                np.testing.assert_array_equal(got, expected[user][0])

            path = str(tmp_path / "b2.sock")
            frontend = PoseFrontend(extra, unix_path=path)
            await frontend.start()
            try:
                await router.add_backend(BackendSpec(name="b2", unix_path=path))
                assert "b2" in router.ring
                # users whose ring arc moved to b2 were migrated there
                movers = [u for u, b in router._placement.items() if b == "b2"]
                assert movers == [
                    u for u in USERS if router.ring.node_for(u) == "b2"
                ]
                for user in USERS:
                    got = await client.submit(user, streams[user][1])
                    np.testing.assert_array_equal(got, expected[user][1])
            finally:
                await frontend.stop()

        run_cluster(servers, scenario, tmp_path)

    def test_remove_backend_migrates_its_users_away(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY) for _ in range(2)]
        streams = make_streams(num_frames=2)
        expected = reference_replay(estimator, streams)

        async def scenario(client, router, frontends):
            for user in USERS:
                await client.submit(user, streams[user][0])
            await router.remove_backend("b0")
            assert "b0" not in router.ring
            assert set(router._placement.values()) == {"b1"}
            for user in USERS:
                got = await client.submit(user, streams[user][1])
                np.testing.assert_array_equal(got, expected[user][1])

        run_cluster(servers, scenario, tmp_path)

    def test_removing_the_last_backend_with_users_is_refused(self, estimator, tmp_path):
        servers = [PoseServer(estimator, LAZY)]

        async def scenario(client, router, frontends):
            await client.submit("alice", make_frame(np.random.default_rng(0)))
            with pytest.raises(RuntimeError, match="last healthy backend"):
                await router.remove_backend("b0")

        run_cluster(servers, scenario, tmp_path)


class TestAcceptanceProcessBackends:
    def test_routed_replay_with_failover_and_migration_over_processes(
        self, estimator, tmp_path
    ):
        """The PR's acceptance pin: 2 backend *processes* behind the
        router; replay stays bitwise through one forced failover and one
        live migration."""
        streams = make_streams(num_frames=6, users=USERS[:3])
        expected = reference_replay(estimator, streams)
        servers = [
            ProcessShardedPoseServer(estimator, num_shards=1, config=LAZY)
            for _ in range(2)
        ]

        async def scenario(client, router, frontends):
            for user in streams:
                for step in range(2):
                    got = await client.submit(user, streams[user][step])
                    np.testing.assert_array_equal(got, expected[user][step])

            # one live migration: move the first user to the other backend
            mover = USERS[0]
            source = router._placement[mover]
            target = "b1" if source == "b0" else "b0"
            assert await router.migrate_user(mover, target)

            for user in streams:
                for step in range(2, 4):
                    got = await client.submit(user, streams[user][step])
                    np.testing.assert_array_equal(got, expected[user][step])

            # one forced failover: kill the backend now serving the mover
            victim = router._placement[mover]
            await frontends[int(victim[1:])].stop()

            for user in streams:
                for step in range(4, 6):
                    got = await client.submit(user, streams[user][step])
                    np.testing.assert_array_equal(got, expected[user][step])
            assert router.backends_lost == 1
            assert router.users_migrated == 1
            assert router.users_failed_over >= 1

        try:
            run_cluster(servers, scenario, tmp_path)
        finally:
            for server in servers:
                server.close()

"""The adapter gather-cache actually hits on the steady-state path.

The original composition-keyed LRU never hit under realistic traffic: with
50 users and 64-wide micro-batches, batch boundaries drift across the
cohort and no composition repeats inside the LRU window — the benchmark
recorded ``param_cache_hit_rate: 0.0``.  The registry now keeps a
full-registry parameter stack per version; any composition row-indexes it,
so the only miss is a stack rebuild after the registry changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.sample import PoseDataset
from repro.serve import (
    AdapterRegistry,
    PoseServer,
    ServeConfig,
    ServeMetrics,
    adaptation_split,
    replay_users,
    user_streams_from_dataset,
)


@pytest.fixture()
def adapted_registry(estimator, serve_dataset):
    streams = user_streams_from_dataset(serve_dataset, num_users=6, frames_per_user=8)
    calibration, _ = adaptation_split(streams, adaptation_frames=4)
    metrics = ServeMetrics()
    registry = AdapterRegistry(estimator.model, metrics=metrics)
    datasets = {
        user: estimator.to_arrays(_as_dataset(frames))
        for user, frames in calibration.items()
    }
    registry.adapt_many(datasets, epochs=1)
    return registry, metrics, list(datasets)


def _as_dataset(frames) -> PoseDataset:
    dataset = PoseDataset(name="calibration")
    dataset.extend(frames)
    return dataset


class TestGatherCache:
    def test_shifting_compositions_hit_after_first_build(self, adapted_registry):
        """Drifting batch boundaries — every batch a different cohort
        slice — must not defeat the cache."""
        registry, metrics, users = adapted_registry
        compositions = [users[:3], users[1:4], users[2:6], users[:2], users[3:]]
        for composition in compositions:
            registry.gather(composition)
        assert metrics.param_cache_misses == 1  # the one stack build
        assert metrics.param_cache_hits == len(compositions) - 1

    def test_exact_repeat_returns_memoized_tensors(self, adapted_registry):
        registry, _, users = adapted_registry
        first = registry.gather(users[:3])
        again = registry.gather(users[:3])
        assert all(a is b for a, b in zip(first, again))

    def test_gathered_values_match_per_user_parameters_bitwise(self, adapted_registry):
        registry, _, users = adapted_registry
        subset = [users[4], users[0], users[2]]  # order matters
        stacked = registry.gather(subset)
        for slot, tensors in enumerate(zip(*(registry.parameters_for(u) for u in subset))):
            np.testing.assert_array_equal(stacked[slot].data, np.stack(tensors))

    def test_registry_change_invalidates_the_stack(self, adapted_registry):
        registry, metrics, users = adapted_registry
        registry.gather(users[:2])
        registry.remove(users[-1])
        registry.gather(users[:2])
        assert metrics.param_cache_misses == 2  # rebuilt once after remove

    def test_readaptation_of_existing_users_keeps_the_stack_hot(
        self, adapted_registry, estimator, serve_dataset
    ):
        """Adapt-while-serving: re-adapting existing users overwrites rows
        in place — no rebuild miss — and gathers see the new values."""
        registry, metrics, users = adapted_registry
        registry.gather(users[:3])  # builds the stack (1 miss)
        streams = user_streams_from_dataset(serve_dataset, num_users=6, frames_per_user=8)
        calibration, _ = adaptation_split(streams, adaptation_frames=4)
        target = users[1]
        registry.adapt_many(
            {target: estimator.to_arrays(_as_dataset(calibration[target]))}, epochs=2
        )
        stacked = registry.gather([users[0], target])
        assert metrics.param_cache_misses == 1  # still only the first build
        np.testing.assert_array_equal(
            stacked[0].data[1], registry.parameters_for(target)[0]
        )

    def test_steady_state_replay_hit_rate_is_high(self, estimator, serve_dataset):
        """The end-to-end regression: a 10-user replay with drifting 8-wide
        batches keeps a hot cache (it pinned at 0.0 before)."""
        streams = user_streams_from_dataset(serve_dataset, num_users=10, frames_per_user=8)
        calibration, serving = adaptation_split(streams, adaptation_frames=4)
        server = PoseServer(estimator, ServeConfig(max_batch_size=8))
        server.adapt_users(
            {user: _as_dataset(frames) for user, frames in calibration.items()},
            epochs=1,
        )
        result = replay_users(server, serving)
        assert result.metrics["param_cache_misses"] == 1
        assert result.metrics["param_cache_hit_rate"] > 0.5

"""The unified :class:`AdapterPolicy` API and its backward-compatible shims.

One frozen policy object travels from the CLI / :class:`ServeConfig` through
every server down to the :class:`AdapterRegistry`.  The legacy spellings —
``AdapterRegistry(config=FineTuneConfig(...))`` and
``PoseServer(adaptation=FineTuneConfig(...))`` — keep working with a
:class:`DeprecationWarning` and are pinned bitwise-equivalent to the policy
they translate into.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.core.finetune import FineTuneConfig
from repro.dataset.loader import ArrayDataset
from repro.serve import (
    AdapterPolicy,
    AdapterRegistry,
    PoseServer,
    ServeConfig,
    ShardedPoseServer,
)
from repro.serve.sharded import ProcessShardedPoseServer


@pytest.fixture(scope="module")
def calibration(estimator, serve_dataset):
    arrays = estimator.prepare(serve_dataset[:8])
    return {"alice": ArrayDataset(arrays.features, arrays.labels)}


class TestPolicyValidation:
    def test_defaults_mirror_the_legacy_finetune_defaults(self):
        policy = AdapterPolicy()
        legacy = FineTuneConfig(epochs=5)
        assert policy.scope == legacy.scope == "all"
        assert policy.epochs == legacy.epochs
        assert policy.learning_rate == legacy.learning_rate
        assert policy.batch_size == legacy.batch_size
        assert policy.loss == legacy.loss
        assert policy.seed == legacy.seed

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scope": "lorax"},
            {"rank": 0},
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"batch_size": 0},
            {"loss": "hinge"},
            {"hot_capacity": 0},
            {"warm_capacity": -1},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdapterPolicy(**kwargs)

    def test_frozen(self):
        policy = AdapterPolicy()
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.scope = "last"

    def test_spill_dir_accepts_path_and_normalizes_to_str(self, tmp_path):
        policy = AdapterPolicy(spill_dir=tmp_path / "spill")
        assert isinstance(policy.spill_dir, str)
        assert policy.spill_path() == tmp_path / "spill"
        assert AdapterPolicy().spill_path() is None

    def test_with_spill_subdir(self, tmp_path):
        policy = AdapterPolicy(spill_dir=tmp_path)
        sharded = policy.with_spill_subdir("shard007")
        assert sharded.spill_path() == tmp_path / "shard007"
        assert policy.spill_path() == tmp_path  # original untouched
        assert AdapterPolicy().with_spill_subdir("shard007").spill_dir is None

    def test_dict_round_trip(self, tmp_path):
        policy = AdapterPolicy(
            scope="lora", rank=8, epochs=3, hot_capacity=10, spill_dir=tmp_path
        )
        encoded = policy.to_dict()
        assert encoded["scope"] == "lora" and encoded["rank"] == 8
        assert AdapterPolicy.from_dict(encoded) == policy
        assert AdapterPolicy.from_dict({**encoded, "unknown_field": 1}) == policy


class TestFineTuneTranslation:
    def test_from_finetune_copies_every_shared_field(self):
        legacy = FineTuneConfig(
            epochs=7, learning_rate=0.5, batch_size=4, scope="last",
            loss="l2", shuffle=False, seed=9,
        )
        policy = AdapterPolicy.from_finetune(legacy)
        assert policy.scope == "last" and policy.epochs == 7
        assert policy.learning_rate == 0.5 and policy.batch_size == 4
        assert policy.loss == "l2" and policy.shuffle is False and policy.seed == 9

    def test_from_finetune_rejects_non_sgd(self):
        with pytest.raises(ValueError, match="sgd"):
            AdapterPolicy.from_finetune(FineTuneConfig(optimizer="adam"))

    def test_finetune_config_round_trip(self):
        policy = AdapterPolicy(scope="last", epochs=2, learning_rate=0.1)
        legacy = policy.finetune_config()
        assert isinstance(legacy, FineTuneConfig)
        assert AdapterPolicy.from_finetune(legacy) == policy

    def test_finetune_config_unavailable_for_lora(self):
        with pytest.raises(ValueError, match="lora"):
            AdapterPolicy(scope="lora").finetune_config()


class TestDeprecatedShims:
    def test_registry_config_kwarg_warns_and_is_bitwise_equivalent(
        self, estimator, calibration
    ):
        legacy_cfg = FineTuneConfig(epochs=2, scope="last")
        with pytest.warns(DeprecationWarning):
            legacy = AdapterRegistry(estimator.model, config=legacy_cfg)
        modern = AdapterRegistry(
            estimator.model, policy=AdapterPolicy.from_finetune(legacy_cfg)
        )
        legacy.adapt_many(calibration)
        modern.adapt_many(calibration)
        for a, b in zip(
            legacy.parameters_for("alice"), modern.parameters_for("alice")
        ):
            np.testing.assert_array_equal(a, b)

    def test_registry_positional_finetune_config_warns(self, estimator):
        with pytest.warns(DeprecationWarning):
            registry = AdapterRegistry(estimator.model, FineTuneConfig(epochs=1))
        assert registry.policy.epochs == 1

    def test_registry_rejects_both_policy_and_config(self, estimator):
        with pytest.raises(TypeError):
            AdapterRegistry(
                estimator.model,
                policy=AdapterPolicy(),
                config=FineTuneConfig(),
            )

    def test_registry_config_property_still_reads(self, estimator):
        registry = AdapterRegistry(
            estimator.model, policy=AdapterPolicy(scope="last", epochs=3)
        )
        assert isinstance(registry.config, FineTuneConfig)
        assert registry.config.epochs == 3

    def test_server_adaptation_kwarg_warns_and_is_bitwise_equivalent(
        self, estimator, calibration
    ):
        legacy_cfg = FineTuneConfig(epochs=2, scope="last")
        with pytest.warns(DeprecationWarning):
            legacy = PoseServer(estimator, adaptation=legacy_cfg)
        modern = PoseServer(
            estimator, policy=AdapterPolicy.from_finetune(legacy_cfg)
        )
        legacy.registry.adapt_many(calibration)
        modern.registry.adapt_many(calibration)
        for a, b in zip(
            legacy.registry.parameters_for("alice"),
            modern.registry.parameters_for("alice"),
        ):
            np.testing.assert_array_equal(a, b)

    def test_server_rejects_both_policy_and_adaptation(self, estimator):
        with pytest.raises(TypeError):
            PoseServer(
                estimator,
                adaptation=FineTuneConfig(),
                policy=AdapterPolicy(),
            )


class TestPolicyThreading:
    def test_serve_config_adapter_reaches_the_registry(self, estimator):
        policy = AdapterPolicy(scope="last", epochs=1)
        server = PoseServer(estimator, ServeConfig(adapter=policy))
        assert server.policy is policy
        assert server.registry.policy is policy

    def test_explicit_policy_overrides_config_adapter(self, estimator):
        configured = AdapterPolicy(scope="last")
        explicit = AdapterPolicy(scope="all")
        server = PoseServer(
            estimator, ServeConfig(adapter=configured), policy=explicit
        )
        assert server.policy is explicit

    def test_sharded_server_splits_spill_dir_per_shard(self, estimator, tmp_path):
        policy = AdapterPolicy(scope="last", epochs=1, spill_dir=tmp_path)
        server = ShardedPoseServer(estimator, num_shards=3, policy=policy)
        assert server.policy is policy
        for index, shard in enumerate(server.shards):
            assert shard.policy.spill_dir == str(Path(tmp_path) / f"shard{index:03d}")

    def test_sharded_server_legacy_adaptation_warns(self, estimator):
        with pytest.warns(DeprecationWarning):
            server = ShardedPoseServer(
                estimator, num_shards=2, adaptation=FineTuneConfig(epochs=1)
            )
        assert server.policy.epochs == 1

    @pytest.mark.slow
    def test_process_sharded_policy_reaches_the_workers(self, estimator, tmp_path):
        policy = AdapterPolicy(scope="last", epochs=1, spill_dir=tmp_path)
        with ProcessShardedPoseServer(
            estimator, num_shards=2, policy=policy
        ) as server:
            assert server.policy is policy
            assert server.metrics_snapshot()["completed"] == 0
        # Each worker created its own shard-scoped spill directory.
        assert (tmp_path / "shard000").is_dir()
        assert (tmp_path / "shard001").is_dir()


class TestHelloHandshake:
    def test_hello_reports_the_adapter_policy(self, estimator, tmp_path):
        import asyncio

        from repro.serve import AsyncPoseClient, PoseFrontend

        policy = AdapterPolicy(scope="lora", rank=2, epochs=1)
        server = PoseServer(estimator, ServeConfig(adapter=policy))

        async def body():
            path = str(tmp_path / "fuse.sock")
            frontend = PoseFrontend(server, unix_path=path)
            await frontend.start()
            try:
                async with AsyncPoseClient() as client:
                    await client.connect_unix(path)
                    return await client.hello()
            finally:
                await frontend.stop()

        hello = asyncio.run(body())
        assert hello["adapter_policy"]["scope"] == "lora"
        assert hello["adapter_policy"]["rank"] == 2
        assert AdapterPolicy.from_dict(hello["adapter_policy"]) == policy

"""Wire-protocol tests: framing, codecs, message round-trips, rejection.

Pins the protocol of ``docs/serving.md``: every message type round-trips
bitwise through both codecs, truncated and oversized frames are rejected
with the dedicated errors, and malformed payloads never reach the serving
layer.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import transport
from repro.serve.transport import (
    CODEC_JSON,
    CODEC_MSGPACK,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
    TruncatedFrame,
    available_codecs,
    decode_array,
    encode_array,
    encode_message,
    iter_frames,
)

CODECS = available_codecs()

#: one representative instance of every message type the protocol speaks
EXAMPLE_MESSAGES = [
    {"type": "hello", "protocol": 1, "codecs": ["json", "msgpack"], "shards": 4},
    {"type": "ping"},
    {"type": "pong"},
    {
        "type": "submit",
        "user": "user-007",
        "frame": {
            "points": np.arange(40.0).reshape(8, 5),
            "timestamp": 1.25,
            "frame_index": 7,
        },
    },
    {
        "type": "prediction",
        "user": "user-007",
        "joints": np.linspace(-1.0, 1.0, 57).reshape(19, 3),
        "latency_ms": 4.2,
    },
    {"type": "metrics"},
    {"type": "metrics_report", "metrics": {"completed": 80.0, "latency_p95_ms": 3.5}},
    {"type": "prometheus"},
    {"type": "prometheus_report", "text": "# HELP x y\n"},
    {"type": "shutdown"},
    {"type": "goodbye"},
    {"type": "error", "error": "QueueFull", "detail": "queue is at 256"},
    # --- protocol v2 -----------------------------------------------------
    {
        "type": "enqueue",
        "id": 41,
        "user": "user-007",
        "frame": {"points": np.arange(20.0).reshape(4, 5), "timestamp": 0.5},
    },
    {"type": "ticket", "id": 41, "user": "user-007", "ticket": 41},
    {"type": "poll", "id": 42},
    {"type": "flush", "id": 43},
    {"type": "flushed", "id": 43, "produced": 12},
]


def assert_messages_equal(actual, expected):
    assert type(expected) is not tuple  # sanity: lists come back as lists
    if isinstance(expected, dict):
        assert set(actual) == set(expected)
        for key in expected:
            assert_messages_equal(actual[key], expected[key])
    elif isinstance(expected, np.ndarray):
        assert isinstance(actual, np.ndarray)
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)
    elif isinstance(expected, list):
        assert list(actual) == list(expected)
    else:
        assert actual == expected


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize(
        "message", EXAMPLE_MESSAGES, ids=[m["type"] for m in EXAMPLE_MESSAGES]
    )
    def test_every_message_type_round_trips(self, codec, message):
        frames = list(iter_frames(encode_message(message, codec)))
        assert len(frames) == 1
        decoded, seen_codec = frames[0]
        assert seen_codec == codec
        assert_messages_equal(decoded, message)

    @pytest.mark.parametrize("codec", CODECS)
    def test_back_to_back_frames_parse_in_order(self, codec):
        data = b"".join(encode_message(m, codec) for m in EXAMPLE_MESSAGES)
        frames = list(iter_frames(data))
        assert [m["type"] for m, _ in frames] == [m["type"] for m in EXAMPLE_MESSAGES]

    def test_mixed_codec_stream(self):
        if CODEC_MSGPACK not in CODECS:
            pytest.skip("msgpack not installed")
        data = encode_message({"type": "ping"}, CODEC_JSON) + encode_message(
            {"type": "pong"}, CODEC_MSGPACK
        )
        (first, c1), (second, c2) = iter_frames(data)
        assert (c1, c2) == (CODEC_JSON, CODEC_MSGPACK)
        assert (first["type"], second["type"]) == ("ping", "pong")

    @pytest.mark.parametrize(
        "array",
        [
            np.zeros((0, 5)),
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.array(3.5),
            np.random.default_rng(0).normal(size=(19, 3)),
        ],
        ids=["empty", "int64", "scalar", "float-joints"],
    )
    def test_array_tagging_preserves_dtype_shape_and_bits(self, array):
        for binary in (False, True):
            restored = decode_array(encode_array(array, binary=binary))
            assert restored.dtype == array.dtype
            assert restored.shape == array.shape
            np.testing.assert_array_equal(restored, array)


class TestArrayBlock:
    """The protocol-v2 contiguous ndarray block (batched transport)."""

    def block_arrays(self):
        rng = np.random.default_rng(3)
        return [
            rng.normal(size=(24, 5)),            # group 0
            rng.normal(size=(24, 5)),            # group 0 again
            rng.normal(size=(12, 5)),            # group 1 (same dtype, new shape)
            np.arange(6, dtype=np.int64),        # group 2 (new dtype)
            rng.normal(size=(24, 5)),            # group 0 again
        ]

    @pytest.mark.parametrize("codec", CODECS)
    def test_round_trip_preserves_order_dtype_shape_and_bits(self, codec):
        arrays = self.block_arrays()
        message = {
            "type": "submit_batch",
            "id": 9,
            "users": list(range(len(arrays))),
            "frames": {"points": transport.ArrayBlock(arrays)},
        }
        ((decoded, _),) = iter_frames(encode_message(message, codec))
        restored = decoded["frames"]["points"]
        assert isinstance(restored, list) and len(restored) == len(arrays)
        for original, view in zip(arrays, restored):
            assert view.dtype == original.dtype
            assert view.shape == original.shape
            np.testing.assert_array_equal(view, original)

    def test_one_bytes_region_per_dtype_shape_group(self):
        tagged = transport.encode_array_block(self.block_arrays(), binary=True)
        assert tagged["__ndblock__"] is True
        assert len(tagged["groups"]) == 3  # (24,5)f8 / (12,5)f8 / (6,)i8
        assert [group["count"] for group in tagged["groups"]] == [3, 1, 1]
        assert tagged["index"] == [0, 0, 1, 2, 0]
        first = tagged["groups"][0]
        assert isinstance(first["data"], bytes)
        assert len(first["data"]) == 3 * 24 * 5 * 8  # one contiguous region

    def test_decoded_arrays_are_buffer_views(self):
        """Decode is zero-copy: each array is a read-only view into the
        group's byte region, not a per-frame copy."""
        tagged = transport.encode_array_block(self.block_arrays(), binary=True)
        restored = transport.decode_array_block(tagged)
        assert all(not array.flags.writeable for array in restored)
        assert all(not array.flags.owndata for array in restored)

    def test_empty_block_round_trips(self):
        tagged = transport.encode_array_block([], binary=True)
        assert transport.decode_array_block(tagged) == []

    def test_byte_count_mismatch_rejected(self):
        tagged = transport.encode_array_block([np.zeros((2, 5))], binary=True)
        tagged["groups"][0]["count"] = 2  # claims more arrays than the bytes hold
        with pytest.raises(ProtocolError, match="bytes"):
            transport.decode_array_block(tagged)

    def test_index_group_disagreement_rejected(self):
        tagged = transport.encode_array_block([np.zeros((2, 5)), np.ones((2, 5))], binary=True)
        tagged["index"] = [0]  # one entry short
        with pytest.raises(ProtocolError, match="index disagrees"):
            transport.decode_array_block(tagged)

    def test_object_dtype_group_rejected(self):
        tagged = {
            "__ndblock__": True,
            "index": [0],
            "groups": [{"dtype": "|O", "shape": [1], "count": 1, "data": b"\x00" * 8}],
        }
        with pytest.raises(ProtocolError, match="non-fixed-width"):
            transport.decode_array_block(tagged)

    def test_malformed_block_rejected(self):
        with pytest.raises(ProtocolError, match="malformed array block"):
            transport.decode_array_block({"__ndblock__": True, "groups": []})

    def test_oversized_block_rejected_at_encode_time(self):
        message = {
            "type": "submit_batch",
            "users": [0, 1],
            "frames": {"points": transport.ArrayBlock([np.zeros((512, 5))] * 2)},
        }
        with pytest.raises(FrameTooLarge, match="exceeds"):
            encode_message(message, max_frame_bytes=4096)


class TestRejection:
    def test_unknown_message_type_rejected_before_encode(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            encode_message({"type": "exploit"})
        with pytest.raises(ProtocolError):
            encode_message({"no-type": 1})

    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError, match="unknown codec"):
            encode_message({"type": "ping"}, codec="cbor")

    def test_unknown_codec_tag_rejected(self):
        frame = bytearray(encode_message({"type": "ping"}))
        frame[0] = ord("Z")
        with pytest.raises(ProtocolError, match="codec tag"):
            list(iter_frames(bytes(frame)))

    def test_truncated_frame_rejected(self):
        frame = encode_message({"type": "prediction", "user": 1, "joints": np.zeros((19, 3))})
        for cut in (1, 4, len(frame) // 2, len(frame) - 1):
            decoder = FrameDecoder()
            assert decoder.feed(frame[:cut]) == []
            with pytest.raises(TruncatedFrame, match="incomplete frame"):
                decoder.close()

    def test_oversized_frame_rejected_from_header_alone(self):
        frame = encode_message({"type": "ping"})
        big = frame[:1] + (2**31 - 1).to_bytes(4, "big")  # header only, huge length
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(FrameTooLarge, match="announces"):
            decoder.feed(big)

    def test_oversized_payload_rejected_at_encode_time(self):
        message = {"type": "prediction", "user": 0, "joints": np.zeros((4096, 3))}
        with pytest.raises(FrameTooLarge, match="exceeds"):
            encode_message(message, max_frame_bytes=1024)

    def test_object_dtype_array_rejected(self):
        # dtype "|O" passes np.dtype() but frombuffer would raise a bare
        # ValueError; the transport must surface it as a ProtocolError so
        # the connection handler's error path catches it.
        tagged = {"__nd__": True, "dtype": "|O", "shape": [1], "data": b"\x00" * 8}
        with pytest.raises(ProtocolError, match="non-fixed-width"):
            decode_array(tagged)

    def test_invalid_dtype_string_rejected(self):
        tagged = {"__nd__": True, "dtype": "not-a-dtype", "shape": [1], "data": b""}
        with pytest.raises(ProtocolError, match="malformed array"):
            decode_array(tagged)

    def test_invalid_base64_rejected(self):
        tagged = {"__nd__": True, "dtype": "<f8", "shape": [1], "data": "!!!not base64"}
        with pytest.raises(ProtocolError):
            decode_array(tagged)

    def test_corrupt_array_payload_rejected(self):
        tagged = encode_array(np.zeros((2, 3)), binary=False)
        tagged["shape"] = [2, 4]  # claims more elements than the data holds
        with pytest.raises(ProtocolError, match="bytes"):
            decode_array(tagged)

    def test_undecodable_json_payload_rejected(self):
        good = encode_message({"type": "ping"})
        bad = good[:5] + b"\xff" * (len(good) - 5)
        with pytest.raises(ProtocolError, match="undecodable JSON"):
            list(iter_frames(bad))


class TestAsyncioAdapters:
    """The stream reader/writer adapters share the strict parsing path."""

    def run(self, coroutine):
        return asyncio.run(coroutine)

    def test_read_message_round_trip_and_clean_eof(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message({"type": "ping"}))
            reader.feed_eof()
            first = await transport.read_message(reader)
            assert first is not None and first[0] == {"type": "ping"}
            assert await transport.read_message(reader) is None  # clean EOF

        self.run(scenario())

    def test_read_message_truncated_mid_payload(self):
        async def scenario():
            frame = encode_message({"type": "metrics"})
            reader = asyncio.StreamReader()
            reader.feed_data(frame[:-2])
            reader.feed_eof()
            with pytest.raises(TruncatedFrame, match="payload"):
                await transport.read_message(reader)

        self.run(scenario())

    def test_read_message_truncated_mid_header(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"J\x00")
            reader.feed_eof()
            with pytest.raises(TruncatedFrame, match="header"):
                await transport.read_message(reader)

        self.run(scenario())

    def test_read_message_oversized_header(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"J" + (10**6).to_bytes(4, "big"))
            with pytest.raises(FrameTooLarge):
                await transport.read_message(reader, max_frame_bytes=1024)

        self.run(scenario())

"""The serving acceptance tests: micro-batching must be invisible.

A replay of 50 interleaved simulated users through the micro-batched server
must produce predictions bitwise identical to the sequential per-user
reference path (the same server with ``max_batch_size=1``, i.e. every
request served alone), with and without per-user adapted parameter sets —
and grouped per-user adaptation must be bitwise identical to adapting each
user solo.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.sample import PoseDataset
from repro.serve import (
    AdapterRegistry,
    PoseServer,
    ServeConfig,
    adaptation_split,
    replay_users,
    sequential_reference,
    user_streams_from_dataset,
)


def as_pose_dataset(frames) -> PoseDataset:
    dataset = PoseDataset(name="calibration")
    dataset.extend(frames)
    return dataset


@pytest.fixture(scope="module")
def streams(serve_dataset):
    streams = user_streams_from_dataset(serve_dataset, num_users=50, frames_per_user=4)
    assert len(streams) == 50
    return streams


class TestBaseModelReplay:
    def test_50_users_bitwise_identical_to_unbatched_serving(self, estimator, streams):
        batched = PoseServer(estimator, ServeConfig(max_batch_size=32))
        unbatched = PoseServer(estimator, ServeConfig(max_batch_size=1, gemm_block=32))
        result_batched = replay_users(batched, streams)
        result_unbatched = replay_users(unbatched, streams)
        assert result_batched.frames_served == sum(len(s) for s in streams.values())
        assert result_batched.frames_dropped == 0
        for user in streams:
            np.testing.assert_array_equal(
                result_batched.predictions[user], result_unbatched.predictions[user]
            )
        # Micro-batching actually happened (this is not a vacuous comparison).
        assert result_batched.metrics["max_batch_seen"] == 32
        assert result_unbatched.metrics["max_batch_seen"] == 1

    def test_batch_size_does_not_change_predictions(self, estimator, streams):
        """Any two micro-batch capacities agree bitwise, not just 1 vs 32."""
        small = replay_users(
            PoseServer(estimator, ServeConfig(max_batch_size=5, gemm_block=32)), streams
        )
        large = replay_users(
            PoseServer(estimator, ServeConfig(max_batch_size=32)), streams
        )
        for user in streams:
            np.testing.assert_array_equal(small.predictions[user], large.predictions[user])

    def test_close_to_naive_per_frame_loop(self, estimator, streams):
        """The plain per-frame loop (different BLAS kernels) agrees numerically."""
        served = replay_users(PoseServer(estimator, ServeConfig(max_batch_size=32)), streams)
        naive = sequential_reference(estimator, streams)
        for user in streams:
            np.testing.assert_allclose(
                served.predictions[user], naive[user], rtol=1e-9, atol=1e-12
            )


class TestAdaptedReplay:
    @pytest.fixture(scope="class")
    def split_streams(self, serve_dataset):
        streams = user_streams_from_dataset(serve_dataset, num_users=12, frames_per_user=10)
        return adaptation_split(streams, adaptation_frames=6)

    def test_grouped_adaptation_matches_sequential_bitwise(self, estimator, split_streams):
        calibration, _ = split_streams
        users = list(calibration)[:5]
        datasets = {
            user: estimator.to_arrays(as_pose_dataset(calibration[user])) for user in users
        }
        grouped = AdapterRegistry(estimator.model)
        grouped.adapt_many(datasets, epochs=2)
        solo = AdapterRegistry(estimator.model)
        for user in users:
            solo.adapt_user(user, datasets[user], epochs=2)
        for user in users:
            for a, b in zip(grouped.parameters_for(user), solo.parameters_for(user)):
                np.testing.assert_array_equal(a, b)

    def test_mixed_base_and_adapted_replay_is_bitwise_identical(
        self, estimator, split_streams
    ):
        calibration, serving = split_streams
        adapted_users = list(serving)[:5]

        batched = PoseServer(estimator, ServeConfig(max_batch_size=16))
        batched.adapt_users(
            {user: as_pose_dataset(calibration[user]) for user in adapted_users}, epochs=2
        )
        unbatched = PoseServer(estimator, ServeConfig(max_batch_size=1, gemm_block=16))
        for user in adapted_users:
            unbatched.adapt_user(user, as_pose_dataset(calibration[user]), epochs=2)

        result_batched = replay_users(batched, serving)
        result_unbatched = replay_users(unbatched, serving)
        for user in serving:
            np.testing.assert_array_equal(
                result_batched.predictions[user], result_unbatched.predictions[user]
            )
        # Adapted users actually went down the adapted route.
        assert result_batched.metrics["adapted_parameter_sets"] == 5
        assert (
            result_batched.metrics["param_cache_hits"]
            + result_batched.metrics["param_cache_misses"]
            > 0
        )

    def test_adaptation_changes_predictions(self, estimator, split_streams):
        """The adapted route is real: personal weights alter the output."""
        calibration, serving = split_streams
        user = list(serving)[0]
        base = PoseServer(estimator, ServeConfig(max_batch_size=4))
        personal = PoseServer(estimator, ServeConfig(max_batch_size=4))
        personal.adapt_user(user, as_pose_dataset(calibration[user]), epochs=2)
        stream = {user: serving[user]}
        assert not np.allclose(
            replay_users(base, stream).predictions[user],
            replay_users(personal, stream).predictions[user],
        )


class TestLastLayerAdaptedReplay:
    """The cheap online regime: shared trunk, per-user personal heads."""

    @pytest.fixture(scope="class")
    def split_streams(self, serve_dataset):
        streams = user_streams_from_dataset(serve_dataset, num_users=12, frames_per_user=10)
        return adaptation_split(streams, adaptation_frames=6)

    def last_config(self):
        from repro.core.finetune import FineTuneConfig

        return FineTuneConfig(epochs=2, scope="last")

    def test_grouped_head_adaptation_matches_sequential_bitwise(
        self, estimator, split_streams
    ):
        calibration, _ = split_streams
        users = list(calibration)[:5]
        datasets = {
            user: estimator.to_arrays(as_pose_dataset(calibration[user])) for user in users
        }
        grouped = AdapterRegistry(estimator.model, config=self.last_config(), gemm_block=16)
        grouped.adapt_many(datasets)
        solo = AdapterRegistry(estimator.model, config=self.last_config(), gemm_block=16)
        for user in users:
            solo.adapt_user(user, datasets[user])
        for user in users:
            head_grouped = grouped.parameters_for(user)
            head_solo = solo.parameters_for(user)
            assert head_grouped[0].shape == (57, 512)  # only the head is personal
            for a, b in zip(head_grouped, head_solo):
                np.testing.assert_array_equal(a, b)

    def test_mixed_head_adapted_replay_is_bitwise_identical(self, estimator, split_streams):
        calibration, serving = split_streams
        adapted_users = list(serving)[:5]
        batched = PoseServer(
            estimator, ServeConfig(max_batch_size=16), adaptation=self.last_config()
        )
        batched.adapt_users(
            {user: as_pose_dataset(calibration[user]) for user in adapted_users}
        )
        unbatched = PoseServer(
            estimator,
            ServeConfig(max_batch_size=1, gemm_block=16),
            adaptation=self.last_config(),
        )
        for user in adapted_users:
            unbatched.adapt_user(user, as_pose_dataset(calibration[user]))

        result_batched = replay_users(batched, serving)
        result_unbatched = replay_users(unbatched, serving)
        for user in serving:
            np.testing.assert_array_equal(
                result_batched.predictions[user], result_unbatched.predictions[user]
            )

    def test_base_users_unaffected_by_head_adapted_coriders(self, estimator, split_streams):
        """A base user's predictions are identical whether or not adapted
        users share their micro-batches."""
        calibration, serving = split_streams
        base_user = list(serving)[-1]
        plain = PoseServer(estimator, ServeConfig(max_batch_size=16))
        mixed = PoseServer(
            estimator, ServeConfig(max_batch_size=16), adaptation=self.last_config()
        )
        mixed.adapt_users(
            {user: as_pose_dataset(calibration[user]) for user in list(serving)[:5]}
        )
        np.testing.assert_array_equal(
            replay_users(plain, serving).predictions[base_user],
            replay_users(mixed, serving).predictions[base_user],
        )


class TestStreamSlicing:
    def test_streams_are_disjoint_and_ordered(self, serve_dataset):
        streams = user_streams_from_dataset(serve_dataset, num_users=50, frames_per_user=4)
        seen = set()
        for user, stream in streams.items():
            assert len(stream) == 4
            indices = [sample.frame_index for sample in stream]
            assert indices == sorted(indices)
            for sample in stream:
                key = (sample.sequence_id, sample.frame_index)
                assert key not in seen
                seen.add(key)

    def test_too_many_users_raises(self, serve_dataset):
        with pytest.raises(ValueError, match="too small"):
            user_streams_from_dataset(serve_dataset, num_users=10_000)

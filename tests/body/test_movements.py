"""Tests for the ten rehabilitation movement programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.kinematics import forward_kinematics
from repro.body.movements import (
    HELD_OUT_MOVEMENT,
    MOVEMENT_NAMES,
    all_movements,
    get_movement,
)
from repro.body.skeleton import JOINT_INDEX
from repro.body.subjects import default_subjects


@pytest.fixture(scope="module")
def subject():
    return default_subjects()[0]


class TestRegistry:
    def test_ten_movements(self):
        assert len(MOVEMENT_NAMES) == 10
        assert len(all_movements()) == 10

    def test_held_out_movement_is_registered(self):
        assert HELD_OUT_MOVEMENT in MOVEMENT_NAMES

    def test_lookup_by_name(self):
        assert get_movement("squat").name == "squat"

    def test_lookup_by_id(self):
        for index, name in enumerate(MOVEMENT_NAMES, start=1):
            assert get_movement(index).name == name

    def test_lookup_passthrough(self):
        movement = get_movement("squat")
        assert get_movement(movement) is movement

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_movement("moonwalk")

    def test_out_of_range_id_raises(self):
        with pytest.raises(KeyError):
            get_movement(11)

    def test_ids_match_registration_order(self):
        for index, movement in enumerate(all_movements(), start=1):
            assert movement.movement_id == index

    def test_left_right_movement_pairs_exist(self):
        lefts = {name for name in MOVEMENT_NAMES if name.startswith("left_")}
        for left in lefts:
            assert left.replace("left_", "right_") in MOVEMENT_NAMES


class TestPosePrograms:
    @pytest.mark.parametrize("name", MOVEMENT_NAMES)
    def test_poses_are_valid_over_full_cycle(self, name, subject):
        movement = get_movement(name)
        for phase in np.linspace(0.0, 1.0, 9):
            pose = movement.pose_at(phase, subject)
            pose.validate()

    @pytest.mark.parametrize("name", MOVEMENT_NAMES)
    def test_rest_phase_is_nearly_neutral(self, name, subject):
        movement = get_movement(name)
        pose = movement.pose_at(0.0, subject)
        for rotation in pose.rotations.values():
            np.testing.assert_allclose(rotation, np.eye(3), atol=1e-6)

    @pytest.mark.parametrize("name", MOVEMENT_NAMES)
    def test_mid_cycle_differs_from_rest(self, name, subject):
        skeleton = subject.skeleton()
        movement = get_movement(name)
        rest = forward_kinematics(skeleton, movement.pose_at(0.0, subject))
        active = forward_kinematics(skeleton, movement.pose_at(0.5, subject))
        displacement = np.linalg.norm(active - rest, axis=1).max()
        assert displacement > 0.10, f"{name} barely moves ({displacement:.3f} m)"

    def test_phase_wraps_around(self, subject):
        movement = get_movement("squat")
        pose_a = movement.pose_at(0.25, subject)
        pose_b = movement.pose_at(1.25, subject)
        for joint in pose_a.rotations:
            np.testing.assert_allclose(
                pose_a.rotation_for(joint), pose_b.rotation_for(joint), atol=1e-12
            )

    def test_squat_lowers_the_head(self, subject):
        skeleton = subject.skeleton()
        movement = get_movement("squat")
        rest = forward_kinematics(skeleton, movement.pose_at(0.0, subject))
        deep = forward_kinematics(skeleton, movement.pose_at(0.5, subject))
        assert deep[JOINT_INDEX["head"], 2] < rest[JOINT_INDEX["head"], 2] - 0.15

    def test_right_upper_limb_extension_only_moves_right_arm(self, subject):
        skeleton = subject.skeleton()
        movement = get_movement("right_upper_limb_extension")
        rest = forward_kinematics(skeleton, movement.pose_at(0.0, subject))
        active = forward_kinematics(skeleton, movement.pose_at(0.5, subject))
        right_disp = np.linalg.norm(active[JOINT_INDEX["wrist_right"]] - rest[JOINT_INDEX["wrist_right"]])
        left_disp = np.linalg.norm(active[JOINT_INDEX["wrist_left"]] - rest[JOINT_INDEX["wrist_left"]])
        assert right_disp > 0.5
        assert left_disp < 0.05

    def test_both_upper_limb_extension_moves_both_arms(self, subject):
        skeleton = subject.skeleton()
        movement = get_movement("both_upper_limb_extension")
        rest = forward_kinematics(skeleton, movement.pose_at(0.0, subject))
        active = forward_kinematics(skeleton, movement.pose_at(0.5, subject))
        for wrist in ("wrist_left", "wrist_right"):
            assert np.linalg.norm(active[JOINT_INDEX[wrist]] - rest[JOINT_INDEX[wrist]]) > 0.4

    def test_front_lunge_moves_body_forward(self, subject):
        movement = get_movement("left_front_lunge")
        pose = movement.pose_at(0.5, subject)
        assert pose.root_offset[1] < -0.05  # toward the radar (negative y offset)

    def test_side_lunges_shift_opposite_directions(self, subject):
        left = get_movement("left_side_lunge").pose_at(0.5, subject)
        right = get_movement("right_side_lunge").pose_at(0.5, subject)
        assert left.root_offset[0] < 0 < right.root_offset[0]

    def test_amplitude_scaling_increases_excursion(self):
        subjects = default_subjects()
        small = subjects[0].with_overrides(amplitude_scale=0.7)
        large = subjects[0].with_overrides(amplitude_scale=1.3)
        skeleton = subjects[0].skeleton()
        movement = get_movement("squat")
        head_small = forward_kinematics(skeleton, movement.pose_at(0.5, small))[JOINT_INDEX["head"], 2]
        head_large = forward_kinematics(skeleton, movement.pose_at(0.5, large))[JOINT_INDEX["head"], 2]
        assert head_large < head_small

    def test_period_scales_with_subject_tempo(self):
        subjects = default_subjects()
        fast = subjects[0].with_overrides(tempo_scale=1.5)
        slow = subjects[0].with_overrides(tempo_scale=0.75)
        movement = get_movement("squat")
        assert movement.period_for(fast) < movement.period_for(slow)

"""Tests for the body-surface scattering model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import MotionSynthesizer
from repro.body.skeleton import JOINT_INDEX, SKELETON_EDGES
from repro.body.surface import BodyScatteringModel


@pytest.fixture(scope="module")
def posed_frame():
    from repro.body.subjects import default_subjects

    subject = default_subjects()[0]
    trajectory = MotionSynthesizer().synthesize(
        subject, "squat", 3.0, rng=np.random.default_rng(0)
    )
    return trajectory.frame(15)


class TestScatteringModel:
    def test_scatterer_count(self, posed_frame, rng):
        positions, velocities = posed_frame
        model = BodyScatteringModel(points_per_segment=6)
        scatterers = model.scatterers(positions, velocities, rng)
        assert len(scatterers) == 6 * len(SKELETON_EDGES)

    def test_scatterer_array_shapes(self, posed_frame, rng):
        positions, velocities = posed_frame
        model = BodyScatteringModel(points_per_segment=4)
        pos, vel, rcs = model.scatterer_array(positions, velocities, rng)
        expected = 4 * len(SKELETON_EDGES)
        assert pos.shape == (expected, 3)
        assert vel.shape == (expected, 3)
        assert rcs.shape == (expected,)

    def test_rcs_positive(self, posed_frame, rng):
        positions, velocities = posed_frame
        _, _, rcs = BodyScatteringModel().scatterer_array(positions, velocities, rng)
        assert np.all(rcs > 0)

    def test_torso_reflects_more_than_wrist(self, posed_frame, rng):
        positions, velocities = posed_frame
        scatterers = BodyScatteringModel(points_per_segment=8).scatterers(positions, velocities, rng)
        torso = np.mean([s.rcs for s in scatterers if s.segment == "spine_mid"])
        wrist = np.mean([s.rcs for s in scatterers if s.segment == "wrist_left"])
        assert torso > 2.0 * wrist

    def test_scatterers_close_to_body(self, posed_frame, rng):
        positions, velocities = posed_frame
        pos, _, _ = BodyScatteringModel().scatterer_array(positions, velocities, rng)
        # Every scatterer must lie within half a metre of some joint.
        distances = np.linalg.norm(pos[:, None, :] - positions[None, :, :], axis=2).min(axis=1)
        assert distances.max() < 0.5

    def test_reflectivity_scales_rcs(self, posed_frame, rng):
        positions, velocities = posed_frame
        dim = BodyScatteringModel(reflectivity=0.5)
        bright = BodyScatteringModel(reflectivity=2.0)
        _, _, rcs_dim = dim.scatterer_array(positions, velocities, np.random.default_rng(1))
        _, _, rcs_bright = bright.scatterer_array(positions, velocities, np.random.default_rng(1))
        assert rcs_bright.mean() > 2.0 * rcs_dim.mean()

    def test_velocities_interpolated_from_joints(self, posed_frame, rng):
        positions, velocities = posed_frame
        scatterers = BodyScatteringModel().scatterers(positions, velocities, rng)
        max_joint_speed = np.linalg.norm(velocities, axis=1).max()
        for scatterer in scatterers:
            assert np.linalg.norm(scatterer.velocity) <= max_joint_speed + 1e-9

    def test_shape_mismatch_raises(self, posed_frame, rng):
        positions, velocities = posed_frame
        with pytest.raises(ValueError):
            BodyScatteringModel().scatterers(positions, velocities[:-1], rng)

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            BodyScatteringModel(points_per_segment=0)
        with pytest.raises(ValueError):
            BodyScatteringModel(surface_noise=-0.1)
        with pytest.raises(ValueError):
            BodyScatteringModel(reflectivity=0.0)

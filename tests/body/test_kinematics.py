"""Tests for rotations, forward kinematics and velocity estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.kinematics import (
    Pose,
    euler_rotation,
    forward_kinematics,
    ground_correction,
    interpolate_poses,
    joint_velocities,
    rotation_x,
    rotation_y,
    rotation_z,
)
from repro.body.skeleton import JOINT_INDEX, NUM_JOINTS, Skeleton


class TestRotations:
    @pytest.mark.parametrize("factory", [rotation_x, rotation_y, rotation_z])
    def test_orthonormal(self, factory):
        rotation = factory(0.7)
        np.testing.assert_allclose(rotation @ rotation.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rotation) == pytest.approx(1.0)

    @pytest.mark.parametrize("factory", [rotation_x, rotation_y, rotation_z])
    def test_zero_angle_is_identity(self, factory):
        np.testing.assert_allclose(factory(0.0), np.eye(3), atol=1e-15)

    def test_rotation_z_rotates_x_toward_y(self):
        rotated = rotation_z(np.pi / 2) @ np.array([1.0, 0.0, 0.0])
        np.testing.assert_allclose(rotated, [0.0, 1.0, 0.0], atol=1e-12)

    def test_rotation_x_rotates_y_toward_z(self):
        rotated = rotation_x(np.pi / 2) @ np.array([0.0, 1.0, 0.0])
        np.testing.assert_allclose(rotated, [0.0, 0.0, 1.0], atol=1e-12)

    def test_euler_composition_order(self):
        np.testing.assert_allclose(
            euler_rotation(rx=0.3, ry=-0.2, rz=0.5),
            rotation_z(0.5) @ rotation_y(-0.2) @ rotation_x(0.3),
        )


class TestPose:
    def test_default_rotation_is_identity(self):
        np.testing.assert_allclose(Pose().rotation_for("head"), np.eye(3))

    def test_with_rotation_returns_new_pose(self):
        pose = Pose()
        updated = pose.with_rotation("knee_left", rotation_x(0.4))
        assert "knee_left" not in pose.rotations
        assert "knee_left" in updated.rotations

    def test_with_rotation_unknown_joint_raises(self):
        with pytest.raises(KeyError):
            Pose().with_rotation("tail", np.eye(3))

    def test_validate_accepts_proper_rotations(self):
        Pose(rotations={"hip_left": rotation_x(0.3)}).validate()

    def test_validate_rejects_non_orthonormal(self):
        with pytest.raises(ValueError):
            Pose(rotations={"hip_left": np.eye(3) * 2.0}).validate()

    def test_validate_rejects_unknown_joint(self):
        with pytest.raises(KeyError):
            Pose(rotations={"nonexistent": np.eye(3)}).validate()


class TestForwardKinematics:
    def test_identity_pose_reproduces_neutral(self):
        skeleton = Skeleton()
        fk = forward_kinematics(skeleton, Pose(), keep_feet_on_ground=False)
        neutral = skeleton.neutral_joint_positions()
        np.testing.assert_allclose(fk, neutral, atol=1e-12)

    def test_bone_lengths_preserved_under_rotation(self):
        skeleton = Skeleton()
        pose = Pose(
            rotations={
                "shoulder_left": rotation_y(-1.2),
                "hip_right": rotation_x(-0.8),
                "knee_right": rotation_x(0.9),
            }
        )
        positions = forward_kinematics(skeleton, pose)
        expected = skeleton.bone_lengths()
        for (parent, child), length in expected.items():
            actual = np.linalg.norm(
                positions[JOINT_INDEX[child]] - positions[JOINT_INDEX[parent]]
            )
            assert actual == pytest.approx(length, abs=1e-9), f"{parent}->{child}"

    def test_arm_raise_lifts_wrist(self):
        skeleton = Skeleton()
        neutral = forward_kinematics(skeleton, Pose())
        raised = forward_kinematics(
            skeleton, Pose(rotations={"shoulder_left": rotation_y(-np.pi / 2)})
        )
        assert (
            raised[JOINT_INDEX["wrist_left"], 2]
            > neutral[JOINT_INDEX["wrist_left"], 2] + 0.3
        )

    def test_rotation_affects_only_subtree(self):
        skeleton = Skeleton()
        neutral = forward_kinematics(skeleton, Pose(), keep_feet_on_ground=False)
        posed = forward_kinematics(
            skeleton,
            Pose(rotations={"shoulder_left": rotation_y(-1.0)}),
            keep_feet_on_ground=False,
        )
        np.testing.assert_allclose(posed[JOINT_INDEX["head"]], neutral[JOINT_INDEX["head"]])
        np.testing.assert_allclose(
            posed[JOINT_INDEX["wrist_right"]], neutral[JOINT_INDEX["wrist_right"]]
        )
        assert not np.allclose(posed[JOINT_INDEX["wrist_left"]], neutral[JOINT_INDEX["wrist_left"]])

    def test_root_offset_translates_everything(self):
        skeleton = Skeleton()
        offset = np.array([0.2, 1.5, 0.0])
        base = forward_kinematics(skeleton, Pose(), keep_feet_on_ground=False)
        shifted = forward_kinematics(
            skeleton, Pose(root_offset=offset), keep_feet_on_ground=False
        )
        np.testing.assert_allclose(shifted, base + offset, atol=1e-12)

    def test_ground_contact_enforced_for_squat(self):
        skeleton = Skeleton()
        squat = Pose(
            rotations={
                "hip_left": rotation_x(-1.0),
                "hip_right": rotation_x(-1.0),
                "knee_left": rotation_x(1.3),
                "knee_right": rotation_x(1.3),
            }
        )
        positions = forward_kinematics(skeleton, squat, keep_feet_on_ground=True)
        foot_indices = [JOINT_INDEX[j] for j in ("foot_left", "foot_right", "ankle_left", "ankle_right")]
        assert positions[foot_indices, 2].min() == pytest.approx(0.0, abs=1e-9)


class TestGroundCorrection:
    def test_translates_to_floor(self):
        positions = Skeleton().neutral_joint_positions()
        floating = positions + np.array([0.0, 0.0, 0.5])
        corrected = ground_correction(floating)
        foot_indices = [JOINT_INDEX[j] for j in ("foot_left", "foot_right", "ankle_left", "ankle_right")]
        assert corrected[foot_indices, 2].min() == pytest.approx(0.0)

    def test_preserves_horizontal_coordinates(self):
        positions = Skeleton().neutral_joint_positions() + np.array([0.0, 0.0, 0.3])
        corrected = ground_correction(positions)
        np.testing.assert_allclose(corrected[:, :2], positions[:, :2])


class TestJointVelocities:
    def test_zero_for_static_trajectory(self):
        trajectory = np.repeat(Skeleton().neutral_joint_positions()[None], 10, axis=0)
        velocities = joint_velocities(trajectory, 0.1)
        np.testing.assert_allclose(velocities, 0.0)

    def test_constant_velocity_recovered(self):
        base = Skeleton().neutral_joint_positions()
        frames = 20
        trajectory = np.stack([base + np.array([0.05 * i, 0.0, 0.0]) for i in range(frames)])
        velocities = joint_velocities(trajectory, 0.1)
        np.testing.assert_allclose(velocities[..., 0], 0.5, atol=1e-9)
        np.testing.assert_allclose(velocities[..., 1:], 0.0, atol=1e-9)

    def test_single_frame_returns_zeros(self):
        trajectory = Skeleton().neutral_joint_positions()[None]
        np.testing.assert_allclose(joint_velocities(trajectory, 0.1), 0.0)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            joint_velocities(np.zeros((5, 10, 3)), 0.1)

    def test_invalid_period_raises(self):
        with pytest.raises(ValueError):
            joint_velocities(np.zeros((5, NUM_JOINTS, 3)), 0.0)


class TestInterpolatePoses:
    def test_endpoint_weights(self):
        pose_a = Pose(rotations={"hip_left": rotation_x(0.5)})
        pose_b = Pose(rotations={"hip_left": rotation_x(-0.5)})
        np.testing.assert_allclose(
            interpolate_poses(pose_a, pose_b, 0.0).rotation_for("hip_left"),
            pose_a.rotation_for("hip_left"),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            interpolate_poses(pose_a, pose_b, 1.0).rotation_for("hip_left"),
            pose_b.rotation_for("hip_left"),
            atol=1e-12,
        )

    def test_midpoint_is_valid_rotation(self):
        pose_a = Pose(rotations={"shoulder_left": rotation_y(1.0)})
        pose_b = Pose(rotations={"shoulder_left": rotation_y(-1.0)})
        mid = interpolate_poses(pose_a, pose_b, 0.5).rotation_for("shoulder_left")
        np.testing.assert_allclose(mid @ mid.T, np.eye(3), atol=1e-9)

    def test_invalid_weight_raises(self):
        with pytest.raises(ValueError):
            interpolate_poses(Pose(), Pose(), 1.5)

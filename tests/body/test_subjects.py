"""Tests for subject profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.subjects import SubjectProfile, default_subjects, make_subject


class TestDefaultSubjects:
    def test_four_subjects(self):
        subjects = default_subjects()
        assert [s.subject_id for s in subjects] == [1, 2, 3, 4]

    def test_subjects_are_distinct(self):
        heights = [s.height for s in default_subjects()]
        assert len(set(heights)) == 4

    def test_subject4_is_most_distinct(self):
        """Subject 4 is the held-out user; it must differ most from the others."""
        subjects = default_subjects()
        others_height = np.mean([s.height for s in subjects[:3]])
        assert abs(subjects[3].height - others_height) > 0.08
        assert subjects[3].tempo_scale == max(s.tempo_scale for s in subjects)

    def test_skeleton_built_from_profile(self):
        subject = default_subjects()[2]
        skeleton = subject.skeleton()
        assert skeleton.height == subject.height
        assert skeleton.shoulder_width == subject.shoulder_width


class TestMakeSubject:
    def test_canonical_ids_return_canonical_profiles(self):
        assert make_subject(1) == default_subjects()[0]
        assert make_subject(4) == default_subjects()[3]

    def test_synthetic_ids_are_reproducible(self):
        assert make_subject(17) == make_subject(17)

    def test_synthetic_ids_differ_between_ids(self):
        assert make_subject(17) != make_subject(18)

    def test_synthetic_profile_is_plausible(self):
        subject = make_subject(25)
        assert 1.2 < subject.height < 2.2
        assert subject.standoff > 0.3

    def test_invalid_id_raises(self):
        with pytest.raises(ValueError):
            make_subject(0)


class TestValidation:
    def test_rejects_implausible_height(self):
        with pytest.raises(ValueError):
            SubjectProfile(subject_id=1, height=2.8)

    def test_rejects_zero_amplitude(self):
        with pytest.raises(ValueError):
            SubjectProfile(subject_id=1, amplitude_scale=0.0)

    def test_rejects_tiny_standoff(self):
        with pytest.raises(ValueError):
            SubjectProfile(subject_id=1, standoff=0.1)

    def test_with_overrides(self):
        subject = default_subjects()[0].with_overrides(standoff=3.0)
        assert subject.standoff == 3.0
        assert subject.height == default_subjects()[0].height

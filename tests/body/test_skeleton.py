"""Tests for the 19-joint skeleton topology and neutral pose."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.skeleton import (
    JOINT_INDEX,
    JOINT_NAMES,
    JOINT_PARENTS,
    NUM_JOINTS,
    SKELETON_EDGES,
    Skeleton,
)


class TestTopology:
    def test_nineteen_joints(self):
        assert NUM_JOINTS == 19
        assert len(JOINT_NAMES) == 19
        assert len(set(JOINT_NAMES)) == 19

    def test_joint_index_consistent(self):
        for name, index in JOINT_INDEX.items():
            assert JOINT_NAMES[index] == name

    def test_every_joint_has_a_parent_in_the_skeleton(self):
        for child, parent in JOINT_PARENTS.items():
            assert child in JOINT_INDEX
            assert parent in JOINT_INDEX

    def test_single_root(self):
        roots = [child for child, parent in JOINT_PARENTS.items() if child == parent]
        assert roots == ["spine_base"]

    def test_eighteen_bones(self):
        assert len(SKELETON_EDGES) == 18

    def test_tree_is_connected(self):
        # Every joint must reach the root by following parents.
        for joint in JOINT_NAMES:
            current, steps = joint, 0
            while JOINT_PARENTS[current] != current:
                current = JOINT_PARENTS[current]
                steps += 1
                assert steps < 20, f"cycle detected starting from {joint}"
            assert current == "spine_base"

    def test_left_right_symmetry_of_topology(self):
        for name in JOINT_NAMES:
            if name.endswith("_left"):
                assert name.replace("_left", "_right") in JOINT_INDEX

    def test_children_of(self):
        assert set(Skeleton.children_of("spine_base")) == {"spine_mid", "hip_left", "hip_right"}

    def test_subtree_contains_descendants(self):
        subtree = Skeleton.subtree("shoulder_left")
        assert set(subtree) == {"shoulder_left", "elbow_left", "wrist_left"}


class TestNeutralPose:
    def test_positions_shape(self):
        positions = Skeleton().neutral_joint_positions()
        assert positions.shape == (19, 3)

    def test_head_is_highest_joint(self):
        positions = Skeleton().neutral_joint_positions()
        assert np.argmax(positions[:, 2]) == JOINT_INDEX["head"]

    def test_head_height_close_to_body_height(self):
        skeleton = Skeleton(height=1.80)
        positions = skeleton.neutral_joint_positions()
        head_z = positions[JOINT_INDEX["head"], 2]
        assert 0.85 * 1.80 <= head_z <= 1.80

    def test_feet_lowest_and_near_ground(self):
        positions = Skeleton().neutral_joint_positions()
        foot_z = positions[JOINT_INDEX["foot_left"], 2]
        assert foot_z == pytest.approx(positions[:, 2].min(), abs=1e-9)
        assert foot_z < 0.15

    def test_lateral_symmetry(self):
        positions = Skeleton().neutral_joint_positions()
        left = positions[JOINT_INDEX["shoulder_left"]]
        right = positions[JOINT_INDEX["shoulder_right"]]
        assert left[0] == pytest.approx(-right[0])
        assert left[2] == pytest.approx(right[2])

    def test_shoulder_width_respected(self):
        skeleton = Skeleton(shoulder_width=0.44)
        positions = skeleton.neutral_joint_positions()
        width = np.linalg.norm(
            positions[JOINT_INDEX["shoulder_left"]] - positions[JOINT_INDEX["shoulder_right"]]
        )
        assert width == pytest.approx(0.44, abs=1e-9)

    def test_custom_root_position(self):
        root = np.array([0.5, 2.0, 1.0])
        positions = Skeleton().neutral_joint_positions(root_position=root)
        np.testing.assert_allclose(positions[JOINT_INDEX["spine_base"]], root)

    def test_scaling_with_height(self):
        short = Skeleton(height=1.55).neutral_joint_positions()
        tall = Skeleton(height=1.95).neutral_joint_positions()
        assert tall[JOINT_INDEX["head"], 2] > short[JOINT_INDEX["head"], 2]

    def test_segment_scale_override(self):
        default = Skeleton()
        long_arms = Skeleton(segment_scale={"upper_arm": 0.25})
        assert long_arms.upper_arm_length > default.upper_arm_length


class TestBoneLengths:
    def test_all_bones_positive(self):
        for (parent, child), length in Skeleton().bone_lengths().items():
            assert length > 0, f"bone {parent}->{child} has non-positive length"

    def test_thigh_longer_than_foot(self):
        lengths = Skeleton().bone_lengths()
        assert lengths[("hip_left", "knee_left")] > lengths[("ankle_left", "foot_left")]

    def test_left_right_bone_lengths_match(self):
        lengths = Skeleton().bone_lengths()
        assert lengths[("shoulder_left", "elbow_left")] == pytest.approx(
            lengths[("shoulder_right", "elbow_right")]
        )


class TestValidation:
    def test_invalid_height_rejected(self):
        with pytest.raises(ValueError):
            Skeleton(height=-1.0)

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            Skeleton(shoulder_width=0.0)

    def test_validate_positions_accepts_valid(self):
        Skeleton.validate_positions(Skeleton().neutral_joint_positions())

    def test_validate_positions_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Skeleton.validate_positions(np.zeros((10, 3)))

    def test_validate_positions_rejects_nan(self):
        positions = Skeleton().neutral_joint_positions()
        positions[0, 0] = np.nan
        with pytest.raises(ValueError):
            Skeleton.validate_positions(positions)

"""Tests for motion synthesis (trajectory generation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import MotionSynthesizer, MotionTrajectory
from repro.body.movements import MOVEMENT_NAMES
from repro.body.skeleton import JOINT_INDEX, NUM_JOINTS


class TestMotionSynthesizer:
    def test_trajectory_shapes(self, subject_one, rng):
        trajectory = MotionSynthesizer(frame_rate=10).synthesize(subject_one, "squat", 5.0, rng=rng)
        assert trajectory.positions.shape == (50, NUM_JOINTS, 3)
        assert trajectory.velocities.shape == (50, NUM_JOINTS, 3)
        assert trajectory.timestamps.shape == (50,)
        assert trajectory.num_frames == 50
        assert trajectory.duration == pytest.approx(5.0)

    def test_metadata_propagated(self, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, "squat", 3.0, rng=rng)
        assert trajectory.subject_id == subject_one.subject_id
        assert trajectory.movement_name == "squat"

    def test_feet_stay_on_ground(self, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, "squat", 5.0, rng=rng)
        foot_z = trajectory.positions[:, JOINT_INDEX["foot_left"], 2]
        ankle_z = trajectory.positions[:, JOINT_INDEX["ankle_left"], 2]
        assert np.minimum(foot_z, ankle_z).min() >= -1e-9
        assert np.minimum(foot_z, ankle_z).max() < 0.4

    def test_subject_standoff_respected(self, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, "squat", 5.0, rng=rng)
        mean_depth = trajectory.positions[:, JOINT_INDEX["spine_base"], 1].mean()
        assert abs(mean_depth - subject_one.standoff) < 0.3

    def test_deterministic_given_seed(self, subject_one):
        synth = MotionSynthesizer()
        t1 = synth.synthesize(subject_one, "squat", 3.0, rng=np.random.default_rng(5))
        t2 = synth.synthesize(subject_one, "squat", 3.0, rng=np.random.default_rng(5))
        np.testing.assert_allclose(t1.positions, t2.positions)

    def test_different_seeds_differ(self, subject_one):
        synth = MotionSynthesizer()
        t1 = synth.synthesize(subject_one, "squat", 3.0, rng=np.random.default_rng(1))
        t2 = synth.synthesize(subject_one, "squat", 3.0, rng=np.random.default_rng(2))
        assert not np.allclose(t1.positions, t2.positions)

    @pytest.mark.parametrize("movement", MOVEMENT_NAMES)
    def test_every_movement_produces_motion(self, movement, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, movement, 4.0, rng=rng)
        speed = np.linalg.norm(trajectory.velocities, axis=2)
        assert speed.max() > 0.1, f"{movement} produced no visible motion"
        assert speed.max() < 10.0, f"{movement} produced implausible velocities"

    def test_velocities_consistent_with_positions(self, subject_one, rng):
        trajectory = MotionSynthesizer(frame_rate=10).synthesize(subject_one, "squat", 4.0, rng=rng)
        # Central differences of positions should match the stored velocities.
        manual = np.gradient(trajectory.positions, 0.1, axis=0)
        np.testing.assert_allclose(trajectory.velocities, manual, atol=1e-9)

    def test_frame_accessor(self, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, "squat", 2.0, rng=rng)
        positions, velocities = trajectory.frame(3)
        np.testing.assert_allclose(positions, trajectory.positions[3])
        np.testing.assert_allclose(velocities, trajectory.velocities[3])

    def test_invalid_duration_raises(self, subject_one, rng):
        with pytest.raises(ValueError):
            MotionSynthesizer().synthesize(subject_one, "squat", 0.0, rng=rng)

    def test_invalid_frame_rate_raises(self):
        with pytest.raises(ValueError):
            MotionSynthesizer(frame_rate=0.0)


class TestMotionTrajectoryValidation:
    def test_rejects_mismatched_velocities(self, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, "squat", 2.0, rng=rng)
        with pytest.raises(ValueError):
            MotionTrajectory(
                positions=trajectory.positions,
                velocities=trajectory.velocities[:-1],
                timestamps=trajectory.timestamps,
                subject_id=1,
                movement_name="squat",
                frame_rate=10.0,
            )

    def test_rejects_bad_timestamps(self, subject_one, rng):
        trajectory = MotionSynthesizer().synthesize(subject_one, "squat", 2.0, rng=rng)
        with pytest.raises(ValueError):
            MotionTrajectory(
                positions=trajectory.positions,
                velocities=trajectory.velocities,
                timestamps=trajectory.timestamps[:-2],
                subject_id=1,
                movement_name="squat",
                frame_rate=10.0,
            )

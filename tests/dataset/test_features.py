"""Tests for point-cloud feature-map construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.features import FeatureMapBuilder, FeatureNormalization
from repro.radar.pointcloud import PointCloudFrame


def frame_from(points):
    return PointCloudFrame(np.asarray(points, dtype=float))


def random_frame(n=30, seed=0):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            rng.uniform(-0.8, 0.8, n),
            rng.uniform(1.5, 3.5, n),
            rng.uniform(0.0, 1.9, n),
            rng.normal(0, 0.5, n),
            rng.uniform(0, 30, n),
        ]
    )
    return frame_from(points)


class TestNormalization:
    def test_maps_midpoints_to_zero(self):
        norm = FeatureNormalization(x_range=(-1.0, 1.0), y_range=(0.0, 4.0))
        points = np.array([[0.0, 2.0, 1.25, 0.0, 15.0]])
        out = norm.apply(points)
        assert out[0, 0] == pytest.approx(0.0)
        assert out[0, 1] == pytest.approx(0.0)

    def test_output_clipped(self):
        norm = FeatureNormalization()
        points = np.array([[100.0, -50.0, 100.0, 100.0, 1000.0]])
        out = norm.apply(points)
        assert np.all(np.abs(out) <= 1.5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            FeatureNormalization().apply(np.zeros((3, 4)))


class TestBuilderConfiguration:
    def test_default_shape_is_mars_8x8x5(self):
        builder = FeatureMapBuilder()
        assert builder.feature_shape == (5, 8, 8)
        assert builder.num_channels == 5

    def test_rejects_inconsistent_point_budget(self):
        with pytest.raises(ValueError):
            FeatureMapBuilder(num_points=60, grid_height=8, grid_width=8)

    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError):
            FeatureMapBuilder(layout="voxel")

    def test_rejects_unknown_sort(self):
        with pytest.raises(ValueError):
            FeatureMapBuilder(sort_axis="random")

    def test_rejects_bad_grid_range(self):
        with pytest.raises(ValueError):
            FeatureMapBuilder(x_grid_range=(1.0, -1.0))


class TestProjectionLayout:
    def test_output_shape(self):
        builder = FeatureMapBuilder(layout="projection")
        assert builder.build(random_frame()).shape == (5, 8, 8)

    def test_empty_frame_gives_zero_map(self):
        builder = FeatureMapBuilder(layout="projection")
        np.testing.assert_allclose(builder.build(PointCloudFrame.empty()), 0.0)

    def test_single_point_occupies_single_cell(self):
        builder = FeatureMapBuilder(layout="projection")
        frame = frame_from([[0.0, 2.5, 1.0, 0.1, 20.0]])
        feature_map = builder.build(frame)
        occupied = np.abs(feature_map).sum(axis=0) > 0
        assert occupied.sum() == 1

    def test_point_lands_in_expected_cell(self):
        builder = FeatureMapBuilder(layout="projection", x_grid_range=(-1.0, 1.0), z_grid_range=(0.0, 2.0))
        # x = -0.99 -> column 0; z = 1.99 -> row 0 (top of the image).
        frame = frame_from([[-0.99, 2.0, 1.99, 0.0, 10.0]])
        feature_map = builder.build(frame)
        occupied = np.argwhere(np.abs(feature_map).sum(axis=0) > 0)
        np.testing.assert_array_equal(occupied, [[0, 0]])

    def test_out_of_range_points_ignored(self):
        builder = FeatureMapBuilder(layout="projection")
        frame = frame_from([[5.0, 2.0, 1.0, 0.0, 10.0], [0.0, 2.0, 5.0, 0.0, 10.0]])
        np.testing.assert_allclose(builder.build(frame), 0.0)

    def test_more_points_occupy_more_cells(self):
        builder = FeatureMapBuilder(layout="projection")
        sparse = builder.build(random_frame(n=8, seed=1))
        dense = builder.build(random_frame(n=60, seed=1))
        occupied_sparse = (np.abs(sparse).sum(axis=0) > 0).sum()
        occupied_dense = (np.abs(dense).sum(axis=0) > 0).sum()
        assert occupied_dense > occupied_sparse

    def test_cell_values_are_weighted_averages_in_normalized_range(self):
        builder = FeatureMapBuilder(layout="projection")
        feature_map = builder.build(random_frame(n=50, seed=2))
        assert np.all(np.abs(feature_map) <= 1.5)

    def test_intensity_weighting_prefers_strong_points(self):
        builder = FeatureMapBuilder(layout="projection", x_grid_range=(-1.0, 1.0), z_grid_range=(0.0, 2.0))
        # Two points in the same cell with very different doppler and intensity.
        frame = frame_from(
            [
                [0.01, 2.0, 1.01, -2.0, 0.0],   # weak return
                [0.02, 2.0, 1.02, 2.0, 40.0],   # strong return
            ]
        )
        feature_map = builder.build(frame)
        row, col = np.argwhere(np.abs(feature_map).sum(axis=0) > 0)[0]
        doppler_channel = feature_map[3, row, col]
        assert doppler_channel > 0.5  # dominated by the strong +2 m/s return


class TestSortedLayout:
    def test_output_shape(self):
        builder = FeatureMapBuilder(layout="sorted")
        assert builder.build(random_frame()).shape == (5, 8, 8)

    def test_zero_padding_for_sparse_frames(self):
        builder = FeatureMapBuilder(layout="sorted")
        feature_map = builder.build(random_frame(n=5))
        flattened = feature_map.transpose(1, 2, 0).reshape(64, 5)
        # Exactly 5 non-zero rows (barring pathological zero points).
        non_zero_rows = np.sum(np.abs(flattened).sum(axis=1) > 0)
        assert non_zero_rows == 5

    def test_truncates_to_point_budget(self):
        builder = FeatureMapBuilder(layout="sorted", selection="intensity")
        feature_map = builder.build(random_frame(n=200))
        flattened = feature_map.transpose(1, 2, 0).reshape(64, 5)
        assert np.sum(np.abs(flattened).sum(axis=1) > 0) == 64

    def test_intensity_selection_keeps_strongest(self):
        builder = FeatureMapBuilder(layout="sorted", selection="intensity", sort_axis="none")
        points = np.zeros((100, 5))
        points[:, 0] = 0.5
        points[:, 4] = np.arange(100)  # increasing intensity
        frame = frame_from(points)
        feature_map = builder.build(frame)
        intensities = feature_map[4].reshape(-1)
        # The weakest kept point must be at least as strong as every dropped one.
        norm = FeatureNormalization()
        kept_raw_min = 36  # points 36..99 are the strongest 64
        expected_min = norm.apply(points[kept_raw_min : kept_raw_min + 1])[0, 4]
        assert intensities.min() >= expected_min - 1e-9

    def test_random_selection_uses_rng(self, rng):
        builder = FeatureMapBuilder(layout="sorted", selection="random")
        a = builder.build(random_frame(n=200), rng=np.random.default_rng(0))
        b = builder.build(random_frame(n=200), rng=np.random.default_rng(0))
        np.testing.assert_allclose(a, b)

    def test_spatial_sort_orders_by_height(self):
        builder = FeatureMapBuilder(layout="sorted", sort_axis="spatial")
        points = np.zeros((10, 5))
        points[:, 2] = np.linspace(0.0, 1.8, 10)
        points[:, 1] = 2.0
        feature_map = builder.build(frame_from(points))
        z_channel = feature_map[2].reshape(-1)[:10]
        assert np.all(np.diff(z_channel) <= 1e-9)  # descending height


class TestBatchConstruction:
    def test_build_batch_shape(self):
        builder = FeatureMapBuilder()
        batch = builder.build_batch([random_frame(seed=i) for i in range(4)])
        assert batch.shape == (4, 5, 8, 8)

    def test_build_batch_empty(self):
        builder = FeatureMapBuilder()
        assert builder.build_batch([]).shape == (0, 5, 8, 8)

    def test_build_dataset(self, tiny_dataset):
        builder = FeatureMapBuilder()
        samples = list(tiny_dataset)[:10]
        features, labels = builder.build_dataset(samples)
        assert features.shape == (10, 5, 8, 8)
        assert labels.shape == (10, 57)
        np.testing.assert_allclose(labels[0], samples[0].label_vector)

    def test_build_dataset_empty(self):
        features, labels = FeatureMapBuilder().build_dataset([])
        assert features.shape[0] == 0 and labels.shape[0] == 0

    def test_custom_grid_size(self):
        builder = FeatureMapBuilder(num_points=36, grid_height=6, grid_width=6)
        assert builder.build(random_frame()).shape == (5, 6, 6)

"""Shard transparency of dataset generation and bulk feature building.

The runtime contract: ``workers`` changes the wall clock, never the bits.
Generation derives every session's randomness from the session coordinates
(:func:`repro.runtime.rng_for_key`), so the shard layout cannot reorder any
draw; feature building is per-frame independent, so chunked builds
concatenate back to the whole-batch result exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.loader import build_array_dataset, build_features_sharded
from repro.dataset.synthetic import (
    SyntheticDatasetConfig,
    SyntheticDatasetGenerator,
    generate_dataset,
)
from repro.engine import BatchPlan


@pytest.fixture(scope="module")
def small_config():
    return SyntheticDatasetConfig(
        subject_ids=(1, 2),
        movement_names=("squat", "right_limb_extension"),
        seconds_per_pair=2.0,
        seed=31,
    )


def _assert_datasets_identical(a, b):
    assert len(a) == len(b)
    for frame_a, frame_b in zip(a, b):
        np.testing.assert_array_equal(frame_a.cloud.points, frame_b.cloud.points)
        np.testing.assert_array_equal(frame_a.joints, frame_b.joints)
        assert frame_a.subject_id == frame_b.subject_id
        assert frame_a.movement_name == frame_b.movement_name
        assert frame_a.sequence_id == frame_b.sequence_id
        assert frame_a.frame_index == frame_b.frame_index


class TestShardedGeneration:
    def test_workers_4_bitwise_identical_to_workers_1(self, small_config):
        serial = generate_dataset(small_config, use_cache=False, plan=BatchPlan(workers=1))
        sharded = generate_dataset(small_config, use_cache=False, plan=BatchPlan(workers=4))
        _assert_datasets_identical(serial, sharded)

    def test_shard_size_does_not_change_bits(self, small_config):
        """Cutting the four sessions into single-session shards (the least
        balanced layout) still reproduces the serial dataset exactly."""
        serial = generate_dataset(small_config, use_cache=False)
        fine = generate_dataset(
            small_config, use_cache=False, plan=BatchPlan(workers=2, shard_size=1)
        )
        _assert_datasets_identical(serial, fine)

    def test_reference_path_shards_identically(self, small_config):
        serial = generate_dataset(small_config, use_cache=False, vectorized=False)
        sharded = generate_dataset(
            small_config, use_cache=False, vectorized=False, plan=BatchPlan(workers=2)
        )
        _assert_datasets_identical(serial, sharded)

    def test_no_plan_means_serial(self, small_config):
        _assert_datasets_identical(
            generate_dataset(small_config, use_cache=False),
            generate_dataset(small_config, use_cache=False, plan=None),
        )

    def test_session_specs_cover_every_session_once(self, small_config):
        generator = SyntheticDatasetGenerator(small_config)
        specs = generator.session_specs()
        assert len(specs) == 4  # 2 subjects x 2 movements x 1 session
        assert [spec.sequence_id for spec in specs] == [0, 1, 2, 3]
        assert len({(s.subject_id, s.movement_name, s.session) for s in specs}) == 4


class TestShardedFeatureBuild:
    def test_sharded_build_bitwise_identical(self, tiny_dataset, feature_builder):
        serial_features, serial_labels = build_features_sharded(
            list(tiny_dataset), feature_builder, workers=1
        )
        # min_frames_per_worker=1 forces the pool even for this small batch,
        # so the equality below genuinely crosses the process boundary.
        sharded_features, sharded_labels = build_features_sharded(
            list(tiny_dataset), feature_builder, workers=4, min_frames_per_worker=1
        )
        np.testing.assert_array_equal(serial_features, sharded_features)
        np.testing.assert_array_equal(serial_labels, sharded_labels)

    def test_small_builds_stay_serial(self, tiny_dataset, feature_builder, monkeypatch):
        """Below the per-worker floor the pool is never forked (its start-up
        would dwarf the build)."""
        from repro.dataset import loader

        def _fail(*args, **kwargs):
            raise AssertionError("map_shards must not run for small builds")

        monkeypatch.setattr(loader, "map_shards", _fail)
        features, _ = build_features_sharded(list(tiny_dataset), feature_builder, workers=4)
        assert features.shape[0] == len(tiny_dataset)

    def test_build_array_dataset_workers(self, tiny_dataset, feature_builder):
        serial = build_array_dataset(tiny_dataset, builder=feature_builder)
        sharded = build_array_dataset(tiny_dataset, builder=feature_builder, workers=3)
        np.testing.assert_array_equal(serial.features, sharded.features)
        np.testing.assert_array_equal(serial.labels, sharded.labels)

    def test_estimator_prepare_with_workers(self, tiny_dataset):
        from repro.core import FuseConfig, FusePoseEstimator

        serial = FusePoseEstimator(FuseConfig(plan=BatchPlan(workers=1)))
        sharded = FusePoseEstimator(FuseConfig(plan=BatchPlan(workers=2)))
        np.testing.assert_array_equal(
            serial.prepare(tiny_dataset).features,
            sharded.prepare(tiny_dataset).features,
        )


class TestPlanVectorizedResolution:
    def test_reference_plan_selects_reference_path(self, small_config):
        """plan.vectorized is the master switch when no explicit argument."""
        explicit = generate_dataset(small_config, use_cache=False, vectorized=False)
        via_plan = generate_dataset(
            small_config, use_cache=False, plan=BatchPlan.reference()
        )
        _assert_datasets_identical(explicit, via_plan)

    def test_explicit_argument_wins_over_plan(self, small_config):
        explicit = generate_dataset(
            small_config, use_cache=False, vectorized=True, plan=BatchPlan.reference()
        )
        batched = generate_dataset(small_config, use_cache=False)
        _assert_datasets_identical(explicit, batched)

    def test_cache_keys_by_resolved_path(self, small_config):
        batched = generate_dataset(small_config, use_cache=True)
        via_plan = generate_dataset(
            small_config, use_cache=True, plan=BatchPlan(workers=1)
        )
        assert batched is via_plan  # same resolved path -> same cache entry

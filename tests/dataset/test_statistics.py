"""Tests for dataset summary statistics."""

from __future__ import annotations

import numpy as np

from repro.dataset.sample import PoseDataset
from repro.dataset.statistics import summarize


class TestSummarize:
    def test_counts(self, tiny_dataset, tiny_dataset_config):
        summary = summarize(tiny_dataset)
        assert summary.num_frames == len(tiny_dataset)
        assert summary.num_subjects == len(tiny_dataset_config.subject_ids)
        assert summary.num_movements == len(tiny_dataset_config.movement_names)

    def test_per_subject_counts_sum_to_total(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        assert sum(summary.frames_per_subject.values()) == summary.num_frames
        assert sum(summary.frames_per_movement.values()) == summary.num_frames

    def test_point_statistics_consistent(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        counts = tiny_dataset.point_counts()
        assert summary.min_points_per_frame == counts.min()
        assert summary.max_points_per_frame == counts.max()
        assert summary.mean_points_per_frame == counts.mean()

    def test_label_bounds(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        assert np.all(summary.label_min <= summary.label_max)

    def test_empty_dataset(self):
        summary = summarize(PoseDataset())
        assert summary.num_frames == 0
        assert summary.frames_per_subject == {}

    def test_as_text_contains_key_numbers(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        text = summary.as_text()
        assert f"frames: {summary.num_frames}" in text
        assert "points/frame" in text

"""Tests for labelled-frame containers and dataset selectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.skeleton import NUM_JOINTS
from repro.dataset.sample import LABEL_DIM, LabelledFrame, PoseDataset
from repro.radar.pointcloud import PointCloudFrame


def make_sample(subject=1, movement="squat", sequence=0, frame=0, n_points=10, seed=0):
    rng = np.random.default_rng(seed)
    cloud = PointCloudFrame(rng.normal(size=(n_points, 5)))
    joints = rng.normal(size=(NUM_JOINTS, 3))
    return LabelledFrame(
        cloud=cloud,
        joints=joints,
        subject_id=subject,
        movement_name=movement,
        sequence_id=sequence,
        frame_index=frame,
    )


class TestLabelledFrame:
    def test_label_dim(self):
        assert LABEL_DIM == 57

    def test_label_vector_flattens_joints(self):
        sample = make_sample()
        assert sample.label_vector.shape == (57,)
        np.testing.assert_allclose(sample.label_vector.reshape(19, 3), sample.joints)

    def test_accepts_flat_label_vector(self):
        flat = np.arange(57.0)
        sample = LabelledFrame(
            cloud=PointCloudFrame.empty(), joints=flat, subject_id=1, movement_name="squat"
        )
        assert sample.joints.shape == (19, 3)

    def test_rejects_wrong_joint_shape(self):
        with pytest.raises(ValueError):
            LabelledFrame(
                cloud=PointCloudFrame.empty(),
                joints=np.zeros((18, 3)),
                subject_id=1,
                movement_name="squat",
            )

    def test_with_cloud_keeps_label_and_metadata(self):
        sample = make_sample(subject=3, movement="squat", sequence=7, frame=42)
        new_cloud = PointCloudFrame(np.zeros((2, 5)))
        updated = sample.with_cloud(new_cloud)
        assert updated.cloud.num_points == 2
        assert updated.subject_id == 3
        assert updated.sequence_id == 7
        assert updated.frame_index == 42
        np.testing.assert_allclose(updated.joints, sample.joints)


class TestPoseDataset:
    @pytest.fixture
    def dataset(self):
        samples = [
            make_sample(subject=1, movement="squat", sequence=0, frame=i, seed=i) for i in range(5)
        ] + [
            make_sample(subject=2, movement="left_front_lunge", sequence=1, frame=i, seed=10 + i)
            for i in range(3)
        ]
        return PoseDataset(samples, name="unit")

    def test_len_and_iteration(self, dataset):
        assert len(dataset) == 8
        assert len(list(dataset)) == 8

    def test_indexing_and_slicing(self, dataset):
        assert isinstance(dataset[0], LabelledFrame)
        subset = dataset[2:5]
        assert isinstance(subset, PoseDataset)
        assert len(subset) == 3

    def test_subjects_and_movements(self, dataset):
        assert dataset.subjects() == [1, 2]
        assert dataset.movements() == ["left_front_lunge", "squat"]
        assert dataset.sequence_ids() == [0, 1]

    def test_for_subject(self, dataset):
        assert len(dataset.for_subject(1)) == 5
        assert len(dataset.for_subject(2)) == 3

    def test_for_movement(self, dataset):
        assert len(dataset.for_movement("squat")) == 5

    def test_for_sequence(self, dataset):
        assert len(dataset.for_sequence(1)) == 3

    def test_exclude_union(self, dataset):
        remaining = dataset.exclude(subject_id=1, movement_name="left_front_lunge")
        assert len(remaining) == 0

    def test_exclude_subject_only(self, dataset):
        remaining = dataset.exclude(subject_id=2)
        assert remaining.subjects() == [1]

    def test_filter_predicate(self, dataset):
        late = dataset.filter(lambda s: s.frame_index >= 2)
        assert all(s.frame_index >= 2 for s in late)

    def test_label_matrix_shape(self, dataset):
        assert dataset.label_matrix().shape == (8, 57)

    def test_label_matrix_empty(self):
        assert PoseDataset().label_matrix().shape == (0, 57)

    def test_point_counts(self, dataset):
        assert dataset.point_counts().shape == (8,)

    def test_append_and_extend(self):
        dataset = PoseDataset()
        dataset.append(make_sample())
        dataset.extend([make_sample(seed=1), make_sample(seed=2)])
        assert len(dataset) == 3

    def test_concatenated(self, dataset):
        combined = dataset.concatenated(dataset)
        assert len(combined) == 16

"""Tests of the content-addressed feature cache (:mod:`repro.dataset.cache`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.cache import FeatureCache
from repro.dataset.features import FeatureMapBuilder
from repro.dataset.sample import LabelledFrame
from repro.radar.pointcloud import PointCloudFrame


def make_samples(count: int, seed: int) -> list[LabelledFrame]:
    rng = np.random.default_rng(seed)
    samples = []
    for index in range(count):
        points = np.column_stack(
            [
                rng.uniform(-1.0, 1.0, 20),
                rng.uniform(0.5, 4.0, 20),
                rng.uniform(0.0, 2.0, 20),
                rng.normal(0.0, 1.0, 20),
                rng.uniform(0.0, 30.0, 20),
            ]
        )
        samples.append(
            LabelledFrame(
                cloud=PointCloudFrame(points),
                joints=rng.normal(size=(19, 3)),
                subject_id=1,
                movement_name="squat",
                frame_index=index,
            )
        )
    return samples


class TestFeatureCache:
    def test_hit_returns_identical_arrays(self):
        cache = FeatureCache()
        samples = make_samples(8, seed=0)
        builder = FeatureMapBuilder()
        first_features, first_labels = cache.get_or_build(samples, builder)
        second_features, second_labels = cache.get_or_build(samples, builder)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        np.testing.assert_array_equal(first_features, second_features)
        np.testing.assert_array_equal(first_labels, second_labels)
        reference_features, reference_labels = builder.build_dataset(samples)
        np.testing.assert_allclose(first_features, reference_features)
        np.testing.assert_allclose(first_labels, reference_labels)

    def test_invalidates_on_builder_config_change(self):
        """The satellite requirement: a config change must miss the cache."""
        cache = FeatureCache()
        samples = make_samples(6, seed=1)
        narrow = FeatureMapBuilder(x_grid_range=(-0.9, 0.9))
        wide = FeatureMapBuilder(x_grid_range=(-1.5, 1.5))
        features_narrow, _ = cache.get_or_build(samples, narrow)
        features_wide, _ = cache.get_or_build(samples, wide)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert not np.allclose(features_narrow, features_wide)
        # Re-requesting either configuration now hits its own entry.
        cache.get_or_build(samples, narrow)
        cache.get_or_build(samples, wide)
        assert cache.stats.hits == 2

    def test_invalidates_on_data_change(self):
        cache = FeatureCache()
        builder = FeatureMapBuilder()
        cache.get_or_build(make_samples(6, seed=2), builder)
        cache.get_or_build(make_samples(6, seed=3), builder)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_lru_eviction(self):
        cache = FeatureCache(capacity=2)
        builder = FeatureMapBuilder()
        batches = [make_samples(4, seed=10 + index) for index in range(3)]
        for batch in batches:
            cache.get_or_build(batch, builder)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (seed=10) was evicted; re-requesting it misses.
        cache.get_or_build(batches[0], builder)
        assert cache.stats.misses == 4

    def test_cached_arrays_are_read_only(self):
        cache = FeatureCache()
        features, labels = cache.get_or_build(make_samples(4, seed=4), FeatureMapBuilder())
        with pytest.raises(ValueError):
            features[0, 0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            labels[0, 0] = 1.0

    def test_random_selection_bypasses_cache(self):
        cache = FeatureCache()
        samples = make_samples(4, seed=5)
        builder = FeatureMapBuilder(layout="sorted", selection="random")
        rng = np.random.default_rng(0)
        cache.get_or_build(samples, builder, rng=rng)
        cache.get_or_build(samples, builder, rng=rng)
        assert len(cache) == 0
        assert cache.stats.misses == 2

    def test_clear(self):
        cache = FeatureCache()
        cache.get_or_build(make_samples(4, seed=6), FeatureMapBuilder())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0


class TestDiskSpill:
    """The satellite requirement: optional persistence for cross-process reuse."""

    def test_fresh_instance_recovers_entries_from_disk(self, tmp_path):
        samples = make_samples(8, seed=20)
        builder = FeatureMapBuilder()
        writer = FeatureCache(cache_dir=tmp_path)
        features, labels = writer.get_or_build(samples, builder)
        assert writer.stats.misses == 1
        assert len(list(tmp_path.glob("*.npz"))) == 1

        # A second instance (simulating another process) hits disk, not a
        # rebuild, and returns bitwise-identical arrays.
        reader = FeatureCache(cache_dir=tmp_path)
        recovered_features, recovered_labels = reader.get_or_build(samples, builder)
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
        np.testing.assert_array_equal(recovered_features, features)
        np.testing.assert_array_equal(recovered_labels, labels)
        # Once recovered, the entry lives in memory.
        reader.get_or_build(samples, builder)
        assert reader.stats.hits == 1

    def test_disk_entries_are_read_only(self, tmp_path):
        samples = make_samples(4, seed=21)
        FeatureCache(cache_dir=tmp_path).get_or_build(samples, FeatureMapBuilder())
        reader = FeatureCache(cache_dir=tmp_path)
        features, _ = reader.get_or_build(samples, FeatureMapBuilder())
        with pytest.raises(ValueError):
            features[0, 0, 0, 0] = 1.0

    def test_disk_eviction_bounds_the_directory(self, tmp_path):
        cache = FeatureCache(cache_dir=tmp_path, disk_capacity=2)
        for index in range(4):
            cache.get_or_build(make_samples(4, seed=30 + index), FeatureMapBuilder())
        assert len(list(tmp_path.glob("*.npz"))) == 2
        assert cache.stats.disk_evictions == 2

    def test_corrupt_disk_entry_is_rebuilt_and_replaced(self, tmp_path):
        samples = make_samples(4, seed=40)
        builder = FeatureMapBuilder()
        writer = FeatureCache(cache_dir=tmp_path)
        expected, _ = writer.get_or_build(samples, builder)
        (entry,) = tmp_path.glob("*.npz")
        entry.write_bytes(b"not an npz archive")

        reader = FeatureCache(cache_dir=tmp_path)
        rebuilt, _ = reader.get_or_build(samples, builder)
        assert reader.stats.misses == 1 and reader.stats.disk_hits == 0
        np.testing.assert_array_equal(rebuilt, expected)

    def test_hit_rate_counts_disk_hits(self, tmp_path):
        samples = make_samples(4, seed=50)
        builder = FeatureMapBuilder()
        FeatureCache(cache_dir=tmp_path).get_or_build(samples, builder)
        reader = FeatureCache(cache_dir=tmp_path)
        reader.get_or_build(samples, builder)
        assert reader.stats.hit_rate == 1.0
        assert reader.stats.as_dict()["disk_hits"] == 1

"""Tests for array datasets and batch iteration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.features import FeatureMapBuilder
from repro.dataset.loader import ArrayDataset, BatchLoader, build_array_dataset


def make_arrays(n=20, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.normal(size=(n, 5, 8, 8)), rng.normal(size=(n, 57)))


class TestArrayDataset:
    def test_length(self):
        assert len(make_arrays(13)) == 13

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((4, 5, 8, 8)), np.zeros((3, 57)))

    def test_subset(self):
        data = make_arrays(10)
        subset = data.subset([1, 3, 5])
        assert len(subset) == 3
        np.testing.assert_allclose(subset.features[1], data.features[3])

    def test_sample_without_replacement(self, rng):
        data = make_arrays(10)
        sample = data.sample(5, rng)
        assert len(sample) == 5

    def test_sample_with_replacement_when_larger(self, rng):
        data = make_arrays(4)
        sample = data.sample(10, rng)
        assert len(sample) == 10

    def test_sample_rejects_non_positive(self, rng):
        with pytest.raises(ValueError):
            make_arrays().sample(0, rng)

    def test_split_partitions_everything(self, rng):
        data = make_arrays(20)
        left, right = data.split(0.7, rng)
        assert len(left) + len(right) == 20
        assert len(left) == 14

    def test_split_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            make_arrays().split(1.5, rng)


class TestBatchLoader:
    def test_number_of_batches(self):
        loader = BatchLoader(make_arrays(25), batch_size=10, shuffle=False)
        assert len(loader) == 3
        batches = list(loader)
        assert [b[0].shape[0] for b in batches] == [10, 10, 5]

    def test_drop_last(self):
        loader = BatchLoader(make_arrays(25), batch_size=10, shuffle=False, drop_last=True)
        assert len(loader) == 2
        assert all(features.shape[0] == 10 for features, _ in loader)

    def test_covers_every_sample_once(self):
        data = make_arrays(17)
        loader = BatchLoader(data, batch_size=5, shuffle=True, seed=3)
        seen = np.concatenate([labels for _, labels in loader])
        assert seen.shape[0] == 17
        # Sorting both sets of labels row-wise should give identical multisets.
        np.testing.assert_allclose(
            np.sort(seen.sum(axis=1)), np.sort(data.labels.sum(axis=1))
        )

    def test_shuffle_changes_order_between_epochs(self):
        data = make_arrays(32)
        loader = BatchLoader(data, batch_size=32, shuffle=True, seed=0)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.allclose(first_epoch, second_epoch)

    def test_no_shuffle_preserves_order(self):
        data = make_arrays(8)
        loader = BatchLoader(data, batch_size=4, shuffle=False)
        features, labels = next(iter(loader))
        np.testing.assert_allclose(labels, data.labels[:4])

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            BatchLoader(make_arrays(), batch_size=0)


class TestBuildArrayDataset:
    def test_from_pose_dataset(self, tiny_dataset):
        arrays = build_array_dataset(tiny_dataset[:12], builder=FeatureMapBuilder())
        assert len(arrays) == 12
        assert arrays.features.shape[1:] == (5, 8, 8)
        assert arrays.labels.shape[1] == 57

    def test_from_sample_list(self, tiny_dataset):
        arrays = build_array_dataset(list(tiny_dataset)[:5])
        assert len(arrays) == 5

    def test_labels_match_source(self, tiny_dataset):
        samples = list(tiny_dataset)[:6]
        arrays = build_array_dataset(samples)
        np.testing.assert_allclose(arrays.labels[2], samples[2].label_vector)

"""Tests for the synthetic MARS-like dataset generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.movements import MOVEMENT_NAMES
from repro.dataset.synthetic import (
    SyntheticDatasetConfig,
    SyntheticDatasetGenerator,
    generate_dataset,
)


class TestConfig:
    def test_defaults_cover_mars_composition(self):
        config = SyntheticDatasetConfig()
        assert config.subject_ids == (1, 2, 3, 4)
        assert config.movement_names == MOVEMENT_NAMES
        assert config.frame_rate == 10.0

    def test_expected_frames(self):
        config = SyntheticDatasetConfig(
            subject_ids=(1, 2), movement_names=("squat",), seconds_per_pair=5.0
        )
        assert config.expected_frames == 2 * 1 * 50

    def test_mars_scale_matches_dataset_size(self):
        # 4 subjects x 10 movements x 100 s x 10 Hz = 40,000 frames (paper: 40,083).
        assert SyntheticDatasetConfig.mars_scale().expected_frames == 40_000

    def test_ci_scale_is_small(self):
        assert SyntheticDatasetConfig.ci_scale().expected_frames < 5_000

    def test_scaled(self):
        config = SyntheticDatasetConfig(seconds_per_pair=10.0)
        assert config.scaled(0.5).seconds_per_pair == 5.0

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig().scaled(0.0)

    def test_invalid_movement_rejected(self):
        with pytest.raises(KeyError):
            SyntheticDatasetConfig(movement_names=("flying",))

    def test_invalid_sessions_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(sessions_per_pair=0)

    def test_empty_subjects_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatasetConfig(subject_ids=())


class TestGeneration:
    def test_frame_count_matches_expectation(self, tiny_dataset, tiny_dataset_config):
        assert len(tiny_dataset) == tiny_dataset_config.expected_frames

    def test_all_subject_movement_pairs_present(self, tiny_dataset, tiny_dataset_config):
        for subject_id in tiny_dataset_config.subject_ids:
            for movement in tiny_dataset_config.movement_names:
                subset = tiny_dataset.for_subject(subject_id).for_movement(movement)
                assert len(subset) > 0

    def test_sequences_have_unique_ids_per_pair(self, tiny_dataset):
        for sequence_id in tiny_dataset.sequence_ids():
            subset = tiny_dataset.for_sequence(sequence_id)
            assert len({(s.subject_id, s.movement_name) for s in subset}) == 1

    def test_frame_indices_are_contiguous_within_sequence(self, tiny_dataset):
        sequence = tiny_dataset.for_sequence(tiny_dataset.sequence_ids()[0])
        indices = sorted(s.frame_index for s in sequence)
        assert indices == list(range(len(sequence)))

    def test_labels_are_plausible_human_poses(self, tiny_dataset):
        labels = np.stack([s.joints for s in tiny_dataset])
        assert labels[..., 2].min() > -0.2  # nothing far below the floor
        assert labels[..., 2].max() < 2.3  # nothing above a tall person's reach
        assert 1.0 < labels[..., 1].mean() < 4.0  # subjects stand in front of the radar

    def test_point_clouds_are_sparse(self, tiny_dataset):
        counts = tiny_dataset.point_counts()
        assert counts.max() <= 64
        assert 5 < counts.mean() < 64

    def test_determinism_across_generators(self, tiny_dataset_config):
        first = SyntheticDatasetGenerator(tiny_dataset_config).generate()
        second = SyntheticDatasetGenerator(tiny_dataset_config).generate()
        assert len(first) == len(second)
        np.testing.assert_allclose(first[0].cloud.points, second[0].cloud.points)
        np.testing.assert_allclose(first[-1].joints, second[-1].joints)

    def test_seed_changes_data(self, tiny_dataset_config):
        other = SyntheticDatasetGenerator(
            SyntheticDatasetConfig(
                subject_ids=tiny_dataset_config.subject_ids,
                movement_names=tiny_dataset_config.movement_names,
                seconds_per_pair=tiny_dataset_config.seconds_per_pair,
                seed=7,
            )
        ).generate()
        base = SyntheticDatasetGenerator(tiny_dataset_config).generate()
        assert not np.allclose(other[0].cloud.points.shape, base[0].cloud.points.shape) or not np.allclose(
            other[0].joints, base[0].joints
        )

    def test_cache_returns_same_object(self, tiny_dataset_config):
        a = generate_dataset(tiny_dataset_config, use_cache=True)
        b = generate_dataset(tiny_dataset_config, use_cache=True)
        assert a is b

    def test_cache_bypass_returns_new_object(self, tiny_dataset_config):
        a = generate_dataset(tiny_dataset_config, use_cache=True)
        b = generate_dataset(tiny_dataset_config, use_cache=False)
        assert a is not b

    def test_label_noise_perturbs_labels(self):
        clean_config = SyntheticDatasetConfig(
            subject_ids=(1,), movement_names=("squat",), seconds_per_pair=2.0, label_noise_std=0.0
        )
        noisy_config = SyntheticDatasetConfig(
            subject_ids=(1,), movement_names=("squat",), seconds_per_pair=2.0, label_noise_std=0.05
        )
        clean = generate_dataset(clean_config, use_cache=False)
        noisy = generate_dataset(noisy_config, use_cache=False)
        difference = np.abs(clean.label_matrix() - noisy.label_matrix()).mean()
        assert 0.01 < difference < 0.2

    def test_signal_backend_supported(self):
        config = SyntheticDatasetConfig(
            subject_ids=(1,),
            movement_names=("squat",),
            seconds_per_pair=0.5,
            radar_backend="signal",
        )
        dataset = generate_dataset(config, use_cache=False)
        assert len(dataset) == 5

"""Tests for the paper's dataset splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.splits import leave_out_split, per_movement_split


def _keys(dataset):
    return {(s.subject_id, s.movement_name, s.sequence_id, s.frame_index) for s in dataset}


class TestPerMovementSplit:
    def test_partition_sizes_roughly_60_20_20(self, tiny_dataset):
        split = per_movement_split(tiny_dataset)
        total = len(tiny_dataset)
        train, val, test = split.sizes()
        assert train + val + test == total
        assert train / total == pytest.approx(0.6, abs=0.05)
        assert val / total == pytest.approx(0.2, abs=0.05)
        assert test / total == pytest.approx(0.2, abs=0.05)

    def test_partitions_are_disjoint(self, tiny_dataset):
        split = per_movement_split(tiny_dataset)
        assert _keys(split.train) & _keys(split.validation) == set()
        assert _keys(split.train) & _keys(split.test) == set()
        assert _keys(split.validation) & _keys(split.test) == set()

    def test_every_movement_in_every_partition(self, tiny_dataset):
        split = per_movement_split(tiny_dataset)
        movements = set(tiny_dataset.movements())
        assert set(split.train.movements()) == movements
        assert set(split.validation.movements()) == movements
        assert set(split.test.movements()) == movements

    def test_every_subject_in_every_partition(self, tiny_dataset):
        split = per_movement_split(tiny_dataset)
        subjects = set(tiny_dataset.subjects())
        assert set(split.train.subjects()) == subjects
        assert set(split.test.subjects()) == subjects

    def test_chronological_order_preserved(self, tiny_dataset):
        """Training frames of a block must precede test frames of the same block."""
        split = per_movement_split(tiny_dataset)
        for subject in tiny_dataset.subjects():
            for movement in tiny_dataset.movements():
                train_block = split.train.for_subject(subject).for_movement(movement)
                test_block = split.test.for_subject(subject).for_movement(movement)
                if len(train_block) and len(test_block):
                    assert max(s.frame_index for s in train_block) < min(
                        s.frame_index for s in test_block
                    )

    def test_custom_fractions(self, tiny_dataset):
        split = per_movement_split(tiny_dataset, train_fraction=0.8, validation_fraction=0.1)
        train, val, test = split.sizes()
        assert train > 4 * val

    def test_invalid_fractions_raise(self, tiny_dataset):
        with pytest.raises(ValueError):
            per_movement_split(tiny_dataset, train_fraction=1.2)
        with pytest.raises(ValueError):
            per_movement_split(tiny_dataset, train_fraction=0.6, validation_fraction=0.5)


class TestLeaveOutSplit:
    def test_training_excludes_held_out_subject_and_movement(self, tiny_dataset):
        split = leave_out_split(
            tiny_dataset, held_out_subject=4, held_out_movement="right_limb_extension",
            finetune_frames=10,
        )
        assert 4 not in split.train.subjects()
        assert "right_limb_extension" not in split.train.movements()
        assert 4 not in split.original_eval.subjects()
        assert "right_limb_extension" not in split.original_eval.movements()

    def test_dtest_is_the_intersection_pair(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        for dataset in (split.finetune, split.evaluation):
            assert dataset.subjects() == [4]
            assert dataset.movements() == ["right_limb_extension"]

    def test_finetune_frames_respected(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        assert len(split.finetune) == 10

    def test_finetune_frames_capped_at_half(self, tiny_dataset):
        pair_size = len(tiny_dataset.for_subject(4).for_movement("right_limb_extension"))
        split = leave_out_split(tiny_dataset, finetune_frames=10 * pair_size)
        assert len(split.finetune) <= pair_size // 2 + 1

    def test_finetune_frames_are_earliest(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        last_finetune = max(s.frame_index for s in split.finetune)
        first_eval = min(s.frame_index for s in split.evaluation)
        assert last_finetune < first_eval

    def test_original_eval_disjoint_from_train(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        assert _keys(split.train) & _keys(split.original_eval) == set()

    def test_no_overlap_between_finetune_and_evaluation(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        assert _keys(split.finetune) & _keys(split.evaluation) == set()

    def test_all_frames_accounted_for(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        used = (
            len(split.train)
            + len(split.original_eval)
            + len(split.finetune)
            + len(split.evaluation)
        )
        pair = len(tiny_dataset.for_subject(4).for_movement("right_limb_extension"))
        unused_excluded = (
            len(tiny_dataset.for_subject(4)) + len(tiny_dataset.for_movement("right_limb_extension")) - 2 * pair
        )
        assert used + unused_excluded == len(tiny_dataset)

    def test_describe_mentions_held_out_choice(self, tiny_dataset):
        split = leave_out_split(tiny_dataset, finetune_frames=10)
        text = split.describe()
        assert "subject 4" in text
        assert "right_limb_extension" in text

    def test_missing_pair_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            leave_out_split(tiny_dataset, held_out_subject=9, finetune_frames=10)

    def test_different_held_out_movement(self, tiny_dataset):
        split = leave_out_split(
            tiny_dataset, held_out_subject=1, held_out_movement="squat", finetune_frames=10
        )
        assert split.evaluation.movements() == ["squat"]
        assert "squat" not in split.train.movements()

"""Tests for the real-MARS CSV loader (exercised on synthetic CSV files)."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np
import pytest

from repro.body.skeleton import NUM_JOINTS
from repro.dataset.mars import load_mars_directory, load_mars_pair


def write_pair(directory: Path, movement: str, num_frames: int = 5, points_per_frame: int = 4,
               header: bool = False, skip_cloud_frames: tuple = ()):
    """Write a (pointcloud, labels) CSV pair in the documented MARS layout."""
    directory.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(0)

    cloud_path = directory / f"{movement}_pointcloud.csv"
    with open(cloud_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["frame", "x", "y", "z", "doppler", "intensity"])
        for frame in range(num_frames):
            if frame in skip_cloud_frames:
                continue
            for _ in range(points_per_frame):
                writer.writerow([frame, *rng.normal(size=5).round(4)])

    labels_path = directory / f"{movement}_labels.csv"
    with open(labels_path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(["frame"] + [f"v{i}" for i in range(NUM_JOINTS * 3)])
        for frame in range(num_frames):
            writer.writerow([frame, *rng.normal(size=NUM_JOINTS * 3).round(4)])
    return cloud_path, labels_path


class TestLoadMarsPair:
    def test_loads_all_frames(self, tmp_path):
        cloud, labels = write_pair(tmp_path / "subject1", "squat", num_frames=6)
        samples, report = load_mars_pair(cloud, labels, subject_id=1, movement_name="squat")
        assert len(samples) == 6
        assert report.num_frames == 6
        assert samples[0].cloud.num_points == 4
        assert samples[0].joints.shape == (NUM_JOINTS, 3)

    def test_headers_are_skipped(self, tmp_path):
        cloud, labels = write_pair(tmp_path / "subject1", "squat", num_frames=3, header=True)
        samples, _ = load_mars_pair(cloud, labels, 1, "squat")
        assert len(samples) == 3

    def test_frames_missing_pointcloud_are_dropped(self, tmp_path):
        cloud, labels = write_pair(
            tmp_path / "subject1", "squat", num_frames=5, skip_cloud_frames=(2,)
        )
        samples, report = load_mars_pair(cloud, labels, 1, "squat")
        assert len(samples) == 4
        assert report.num_dropped_unlabelled == 1

    def test_metadata_propagated(self, tmp_path):
        cloud, labels = write_pair(tmp_path / "subject3", "squat", num_frames=2)
        samples, _ = load_mars_pair(cloud, labels, subject_id=3, movement_name="squat", sequence_id=9)
        assert samples[0].subject_id == 3
        assert samples[0].sequence_id == 9
        assert samples[0].movement_name == "squat"

    def test_timestamps_follow_10hz(self, tmp_path):
        cloud, labels = write_pair(tmp_path / "subject1", "squat", num_frames=3)
        samples, _ = load_mars_pair(cloud, labels, 1, "squat")
        assert samples[1].cloud.timestamp == pytest.approx(0.1)


class TestLoadMarsDirectory:
    def test_loads_multiple_subjects_and_movements(self, tmp_path):
        write_pair(tmp_path / "subject1", "squat", num_frames=4)
        write_pair(tmp_path / "subject1", "left_front_lunge", num_frames=3)
        write_pair(tmp_path / "subject2", "squat", num_frames=5)
        dataset, report = load_mars_directory(tmp_path)
        assert len(dataset) == 12
        assert dataset.subjects() == [1, 2]
        assert set(dataset.movements()) == {"squat", "left_front_lunge"}
        assert report.files_loaded == 6

    def test_sequence_ids_unique_per_file_pair(self, tmp_path):
        write_pair(tmp_path / "subject1", "squat", num_frames=2)
        write_pair(tmp_path / "subject2", "squat", num_frames=2)
        dataset, _ = load_mars_directory(tmp_path)
        assert len(dataset.sequence_ids()) == 2

    def test_movement_name_normalization(self, tmp_path):
        # File uses a dash and capital letters; it must map to the canonical name.
        directory = tmp_path / "subject1"
        write_pair(directory, "Left-Front-Lunge".lower().replace("-", "_"), num_frames=2)
        dataset, _ = load_mars_directory(tmp_path)
        assert dataset.movements() == ["left_front_lunge"]

    def test_missing_root_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mars_directory(tmp_path / "nope")

    def test_unknown_movement_files_skipped(self, tmp_path):
        write_pair(tmp_path / "subject1", "squat", num_frames=2)
        write_pair(tmp_path / "subject1", "jumping_jacks", num_frames=2)
        dataset, _ = load_mars_directory(tmp_path)
        assert dataset.movements() == ["squat"]

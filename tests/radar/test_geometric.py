"""Tests for the fast geometric point-cloud backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import MotionSynthesizer
from repro.body.subjects import default_subjects
from repro.body.surface import BodyScatteringModel
from repro.radar.config import RadarConfig
from repro.radar.geometric import GeometricBackendConfig, GeometricPointCloudGenerator
from repro.radar.scene import targets_from_scatterers


@pytest.fixture(scope="module")
def scene():
    subject = default_subjects()[0]
    trajectory = MotionSynthesizer().synthesize(
        subject, "squat", 3.0, rng=np.random.default_rng(0)
    )
    positions, velocities = trajectory.frame(12)
    scatterers = BodyScatteringModel(points_per_segment=8).scatterers(
        positions, velocities, np.random.default_rng(1)
    )
    return targets_from_scatterers(scatterers, RadarConfig())


@pytest.fixture
def generator():
    return GeometricPointCloudGenerator(radar_config=RadarConfig())


class TestBackendConfig:
    def test_defaults_valid(self):
        GeometricBackendConfig()

    def test_rejects_zero_max_points(self):
        with pytest.raises(ValueError):
            GeometricBackendConfig(max_points=0)

    def test_rejects_bad_floor(self):
        with pytest.raises(ValueError):
            GeometricBackendConfig(static_detection_floor=1.5)

    def test_rejects_bad_efficiency_range(self):
        with pytest.raises(ValueError):
            GeometricBackendConfig(frame_efficiency_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            GeometricBackendConfig(frame_efficiency_range=(0.9, 0.5))


class TestGeneration:
    def test_produces_sparse_frame(self, scene, generator):
        frame = generator.generate_frame(scene, np.random.default_rng(2))
        assert 0 < frame.num_points <= generator.backend_config.max_points

    def test_points_near_the_body(self, scene, generator):
        frame = generator.generate_frame(scene, np.random.default_rng(3))
        centroid = frame.centroid()
        # Body stands ~2.5 m in front of the radar, roughly centred laterally.
        assert abs(centroid[0]) < 0.6
        assert 1.5 < centroid[1] < 3.5
        assert 0.0 < centroid[2] < 2.0

    def test_respects_max_points(self, scene):
        generator = GeometricPointCloudGenerator(
            radar_config=RadarConfig(),
            backend_config=GeometricBackendConfig(max_points=10, frame_efficiency_range=(1.0, 1.0)),
        )
        frame = generator.generate_frame(scene, np.random.default_rng(4))
        assert frame.num_points <= 10

    def test_deterministic_given_rng(self, scene, generator):
        frame_a = generator.generate_frame(scene, np.random.default_rng(7))
        frame_b = generator.generate_frame(scene, np.random.default_rng(7))
        np.testing.assert_allclose(frame_a.points, frame_b.points)

    def test_empty_scene_gives_empty_frame(self, generator):
        from repro.radar.scene import Scene

        frame = generator.generate_frame(Scene([]), np.random.default_rng(0))
        assert frame.num_points == 0

    def test_metadata_propagated(self, scene, generator):
        frame = generator.generate_frame(scene, np.random.default_rng(5), timestamp=1.2, frame_index=12)
        assert frame.timestamp == 1.2
        assert frame.frame_index == 12

    def test_quantization_snaps_ranges(self, scene):
        config = RadarConfig()
        generator = GeometricPointCloudGenerator(
            radar_config=config,
            backend_config=GeometricBackendConfig(
                quantize=True, angle_noise_deg=0.0, range_noise_scale=0.0, doppler_noise_scale=0.0
            ),
        )
        frame = generator.generate_frame(scene, np.random.default_rng(6))
        assert frame.num_points > 0
        # Radial velocities must sit on the Doppler-resolution grid.
        remainder = np.abs(
            frame.doppler / config.velocity_resolution
            - np.round(frame.doppler / config.velocity_resolution)
        )
        assert np.all(remainder < 1e-6)

    def test_higher_noise_floor_reduces_detections(self, scene):
        quiet = GeometricPointCloudGenerator(radar_config=RadarConfig(noise_figure_db=-32.0))
        noisy = GeometricPointCloudGenerator(radar_config=RadarConfig(noise_figure_db=-18.0))
        counts_quiet = np.mean(
            [quiet.generate_frame(scene, np.random.default_rng(s)).num_points for s in range(8)]
        )
        counts_noisy = np.mean(
            [noisy.generate_frame(scene, np.random.default_rng(s)).num_points for s in range(8)]
        )
        assert counts_noisy < counts_quiet

    def test_frame_efficiency_creates_bursty_counts(self, scene):
        stationary = GeometricPointCloudGenerator(
            radar_config=RadarConfig(),
            backend_config=GeometricBackendConfig(frame_efficiency_range=(1.0, 1.0)),
        )
        bursty = GeometricPointCloudGenerator(
            radar_config=RadarConfig(),
            backend_config=GeometricBackendConfig(frame_efficiency_range=(0.2, 1.0)),
        )
        counts_stationary = [
            stationary.generate_frame(scene, np.random.default_rng(s)).num_points for s in range(20)
        ]
        counts_bursty = [
            bursty.generate_frame(scene, np.random.default_rng(s)).num_points for s in range(20)
        ]
        assert np.std(counts_bursty) > np.std(counts_stationary)

    def test_intensity_correlates_with_rcs(self, scene, generator):
        frame = generator.generate_frame(scene, np.random.default_rng(9))
        # Intensities are SNR values in dB: they must be finite and spread out.
        assert np.all(np.isfinite(frame.intensity))
        assert frame.intensity.std() > 0.5

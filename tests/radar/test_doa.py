"""Tests for direction-of-arrival estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.config import RadarConfig
from repro.radar.doa import detections_to_points, estimate_angles
from repro.radar.scene import RadarTarget, Scene
from repro.radar.signal_chain import range_doppler_processing, synthesize_data_cube


@pytest.fixture(scope="module")
def config():
    return RadarConfig.low_resolution()


def snapshot_for(config, azimuth, elevation):
    """Build the ideal antenna snapshot for a plane wave from (azimuth, elevation)."""
    az_idx = np.arange(config.num_azimuth_antennas)
    el_idx = np.arange(config.num_elevation_antennas)
    azimuth_phase = np.pi * np.sin(azimuth) * np.cos(elevation)
    elevation_phase = np.pi * np.sin(elevation)
    return np.exp(1j * np.add.outer(azimuth_phase * az_idx, elevation_phase * el_idx))


class TestEstimateAngles:
    @pytest.mark.parametrize("azimuth_deg", [-40, -20, 0, 15, 35])
    def test_azimuth_recovered(self, config, azimuth_deg):
        azimuth = np.deg2rad(azimuth_deg)
        estimate = estimate_angles(snapshot_for(config, azimuth, 0.0), config)
        assert estimate is not None
        assert np.rad2deg(estimate.azimuth) == pytest.approx(azimuth_deg, abs=4.0)

    @pytest.mark.parametrize("elevation_deg", [-20, 0, 25])
    def test_elevation_recovered(self, config, elevation_deg):
        elevation = np.deg2rad(elevation_deg)
        estimate = estimate_angles(snapshot_for(config, 0.0, elevation), config)
        assert estimate is not None
        assert np.rad2deg(estimate.elevation) == pytest.approx(elevation_deg, abs=3.0)

    def test_combined_angles(self, config):
        estimate = estimate_angles(snapshot_for(config, np.deg2rad(20), np.deg2rad(10)), config)
        assert estimate is not None
        assert np.rad2deg(estimate.azimuth) == pytest.approx(20, abs=5)
        assert np.rad2deg(estimate.elevation) == pytest.approx(10, abs=3)

    def test_power_reported_positive(self, config):
        estimate = estimate_angles(snapshot_for(config, 0.2, 0.0), config)
        assert estimate is not None and estimate.power > 0

    def test_wrong_snapshot_shape_raises(self, config):
        with pytest.raises(ValueError):
            estimate_angles(np.zeros((3, 3), dtype=complex), config)


class TestDetectionsToPoints:
    def test_single_target_geometry(self, config, rng):
        distance, azimuth = 2.0, np.deg2rad(20)
        position = np.array([distance * np.sin(azimuth), distance * np.cos(azimuth), 0.0])
        scene = Scene([RadarTarget(position=position, velocity=np.zeros(3), rcs=10.0)])
        cube = synthesize_data_cube(scene, config, rng=rng, add_noise=False)
        rd_map = range_doppler_processing(cube)
        half = rd_map.power[: config.num_samples // 2]
        peak = np.unravel_index(np.argmax(half), half.shape)
        points = detections_to_points(rd_map, [tuple(peak)], config)
        assert points.shape == (1, 5)
        x, y, z, doppler, intensity = points[0]
        assert np.hypot(x, y) == pytest.approx(distance, abs=3 * config.range_resolution)
        assert np.arctan2(x, y) == pytest.approx(azimuth, abs=np.deg2rad(6))
        assert doppler == pytest.approx(0.0, abs=config.velocity_resolution)

    def test_empty_detections(self, config, rng):
        cube = synthesize_data_cube(Scene([]), config, rng=rng)
        rd_map = range_doppler_processing(cube)
        points = detections_to_points(rd_map, [], config)
        assert points.shape == (0, 5)

    def test_zero_range_detection_skipped(self, config, rng):
        cube = synthesize_data_cube(Scene([]), config, rng=rng)
        rd_map = range_doppler_processing(cube)
        points = detections_to_points(rd_map, [(0, config.num_chirps // 2)], config)
        assert points.shape[0] == 0

"""Tests for the end-to-end radar pipelines (both backends)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import MotionSynthesizer
from repro.body.subjects import default_subjects
from repro.body.surface import BodyScatteringModel
from repro.radar.config import RadarConfig
from repro.radar.pipeline import GeometricPipeline, SignalChainPipeline, make_pipeline


@pytest.fixture(scope="module")
def body_frame():
    subject = default_subjects()[0]
    trajectory = MotionSynthesizer().synthesize(
        subject, "squat", 3.0, rng=np.random.default_rng(0)
    )
    positions, velocities = trajectory.frame(15)
    scatterers = BodyScatteringModel(points_per_segment=6).scatterers(
        positions, velocities, np.random.default_rng(1)
    )
    return positions, scatterers


class TestMakePipeline:
    def test_geometric_default(self):
        assert isinstance(make_pipeline(), GeometricPipeline)

    def test_signal_backend(self):
        assert isinstance(make_pipeline("signal"), SignalChainPipeline)

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            make_pipeline("lidar")

    def test_custom_config_respected(self):
        config = RadarConfig(radar_height=1.4)
        pipeline = make_pipeline("geometric", config=config)
        assert pipeline.config.radar_height == 1.4


class TestGeometricPipeline:
    def test_world_frame_output(self, body_frame):
        positions, scatterers = body_frame
        pipeline = make_pipeline("geometric")
        frame = pipeline.process_scatterers(scatterers, np.random.default_rng(2))
        assert frame.num_points > 0
        # Cloud centroid should be near the body centroid (world frame).
        assert np.linalg.norm(frame.centroid() - positions.mean(axis=0)) < 0.6

    def test_points_span_body_height(self, body_frame):
        _, scatterers = body_frame
        pipeline = make_pipeline("geometric")
        frame = pipeline.process_scatterers(scatterers, np.random.default_rng(3))
        z = frame.xyz[:, 2]
        assert z.max() - z.min() > 0.5


class TestSignalChainPipeline:
    def test_produces_points_near_body(self, body_frame):
        positions, scatterers = body_frame
        pipeline = make_pipeline("signal", config=RadarConfig.low_resolution())
        frame = pipeline.process_scatterers(scatterers, np.random.default_rng(4))
        assert frame.num_points > 0
        centroid = frame.centroid()
        assert abs(centroid[0] - positions[:, 0].mean()) < 0.5
        assert abs(centroid[1] - positions[:, 1].mean()) < 0.5

    def test_timestamp_and_index_propagated(self, body_frame):
        _, scatterers = body_frame
        pipeline = make_pipeline("signal", config=RadarConfig.low_resolution())
        frame = pipeline.process_scatterers(
            scatterers, np.random.default_rng(5), timestamp=3.3, frame_index=33
        )
        assert frame.timestamp == 3.3
        assert frame.frame_index == 33


class TestBackendAgreement:
    def test_backends_report_similar_body_location(self, body_frame):
        """Both backends must localize the body at the same place (coarse check)."""
        positions, scatterers = body_frame
        geometric = make_pipeline("geometric").process_scatterers(
            scatterers, np.random.default_rng(6)
        )
        signal = make_pipeline("signal", config=RadarConfig.low_resolution()).process_scatterers(
            scatterers, np.random.default_rng(6)
        )
        assert geometric.num_points > 0 and signal.num_points > 0
        assert np.linalg.norm(geometric.centroid()[:2] - signal.centroid()[:2]) < 0.7

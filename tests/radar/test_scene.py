"""Tests for radar scene geometry (ranges, angles, coordinate transforms)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.surface import Scatterer
from repro.radar.config import RadarConfig
from repro.radar.scene import (
    RadarTarget,
    Scene,
    radar_to_world,
    targets_from_scatterers,
    world_to_radar,
)


def make_target(position, velocity=(0.0, 0.0, 0.0), rcs=1.0):
    return RadarTarget(
        position=np.asarray(position, dtype=float),
        velocity=np.asarray(velocity, dtype=float),
        rcs=rcs,
    )


class TestRadarTarget:
    def test_range(self):
        assert make_target([3.0, 4.0, 0.0]).range == pytest.approx(5.0)

    def test_radial_velocity_receding(self):
        target = make_target([0.0, 2.0, 0.0], velocity=[0.0, 1.0, 0.0])
        assert target.radial_velocity == pytest.approx(1.0)

    def test_radial_velocity_approaching_is_negative(self):
        target = make_target([0.0, 2.0, 0.0], velocity=[0.0, -0.5, 0.0])
        assert target.radial_velocity == pytest.approx(-0.5)

    def test_tangential_velocity_has_zero_radial_component(self):
        target = make_target([0.0, 2.0, 0.0], velocity=[1.0, 0.0, 0.0])
        assert target.radial_velocity == pytest.approx(0.0)

    def test_azimuth_sign_convention(self):
        # +x is to the radar's right -> positive azimuth.
        assert make_target([1.0, 1.0, 0.0]).azimuth == pytest.approx(np.pi / 4)
        assert make_target([-1.0, 1.0, 0.0]).azimuth == pytest.approx(-np.pi / 4)

    def test_boresight_target_has_zero_angles(self):
        target = make_target([0.0, 3.0, 0.0])
        assert target.azimuth == pytest.approx(0.0)
        assert target.elevation == pytest.approx(0.0)

    def test_elevation_sign_convention(self):
        assert make_target([0.0, 1.0, 1.0]).elevation == pytest.approx(np.pi / 4)
        assert make_target([0.0, 1.0, -1.0]).elevation == pytest.approx(-np.pi / 4)

    def test_zero_range_target_has_zero_radial_velocity(self):
        target = make_target([0.0, 0.0, 0.0], velocity=[1.0, 1.0, 1.0])
        assert target.radial_velocity == 0.0


class TestScene:
    def test_vector_accessors(self):
        scene = Scene([make_target([0.0, 2.0, 0.0]), make_target([1.0, 1.0, 0.0], rcs=2.0)])
        assert len(scene) == 2
        assert scene.ranges().shape == (2,)
        assert scene.rcs()[1] == pytest.approx(2.0)

    def test_field_of_view_filters_behind_and_far(self):
        config = RadarConfig()
        scene = Scene(
            [
                make_target([0.0, 2.0, 0.0]),  # visible
                make_target([0.0, 100.0, 0.0]),  # beyond max range
                make_target([5.0, 0.5, 0.0]),  # extreme azimuth
            ]
        )
        visible = scene.within_field_of_view(config)
        assert len(visible) == 1

    def test_field_of_view_keeps_everything_when_wide(self):
        config = RadarConfig()
        scene = Scene([make_target([0.3, 2.0, 0.2]), make_target([-0.5, 3.0, -0.3])])
        assert len(scene.within_field_of_view(config)) == 2


class TestCoordinateTransforms:
    def test_world_to_radar_shifts_height(self):
        config = RadarConfig(radar_height=1.2)
        world = np.array([0.5, 2.0, 1.2])
        radar = world_to_radar(world, config)
        np.testing.assert_allclose(radar, [0.5, 2.0, 0.0])

    def test_roundtrip(self):
        config = RadarConfig()
        world = np.random.default_rng(0).normal(size=(10, 3))
        np.testing.assert_allclose(radar_to_world(world_to_radar(world, config), config), world)

    def test_targets_from_scatterers(self):
        config = RadarConfig(radar_height=1.0)
        scatterers = [
            Scatterer(
                position=np.array([0.0, 2.5, 1.0]),
                velocity=np.array([0.0, 0.1, 0.0]),
                rcs=1.5,
                segment="spine_mid",
            )
        ]
        scene = targets_from_scatterers(scatterers, config)
        assert len(scene) == 1
        target = scene.targets[0]
        # At the radar's mounting height the elevation should be zero.
        assert target.elevation == pytest.approx(0.0, abs=1e-9)
        assert target.rcs == pytest.approx(1.5)
        assert target.range == pytest.approx(2.5)

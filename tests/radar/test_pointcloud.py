"""Tests for point-cloud containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.pointcloud import (
    POINT_FIELDS,
    PointCloudFrame,
    PointCloudSequence,
    merge_frames,
)


def make_frame(n=5, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            rng.uniform(-1, 1, n),
            rng.uniform(1, 4, n),
            rng.uniform(0, 2, n),
            rng.normal(0, 0.5, n),
            rng.uniform(0, 30, n),
        ]
    )
    return PointCloudFrame(points, **kwargs)


class TestPointCloudFrame:
    def test_fields_order_matches_eq1(self):
        assert POINT_FIELDS == ("x", "y", "z", "doppler", "intensity")

    def test_num_points(self):
        assert make_frame(7).num_points == 7
        assert len(make_frame(7)) == 7

    def test_empty_frame(self):
        frame = PointCloudFrame.empty(timestamp=1.5, frame_index=3)
        assert frame.num_points == 0
        assert frame.points.shape == (0, 5)
        assert frame.timestamp == 1.5

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            PointCloudFrame(np.zeros((4, 3)))

    def test_accepts_empty_array_of_any_shape(self):
        frame = PointCloudFrame(np.zeros((0,)))
        assert frame.points.shape == (0, 5)

    def test_column_accessors(self):
        frame = make_frame(6)
        np.testing.assert_allclose(frame.xyz, frame.points[:, :3])
        np.testing.assert_allclose(frame.doppler, frame.points[:, 3])
        np.testing.assert_allclose(frame.intensity, frame.points[:, 4])
        np.testing.assert_allclose(frame.column("z"), frame.points[:, 2])

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            make_frame().column("snr")

    def test_centroid_weighted_by_intensity(self):
        points = np.array(
            [
                [0.0, 0.0, 0.0, 0.0, 1.0],
                [1.0, 1.0, 1.0, 0.0, 3.0],
            ]
        )
        frame = PointCloudFrame(points)
        np.testing.assert_allclose(frame.centroid(), [0.75, 0.75, 0.75])

    def test_centroid_of_empty_frame(self):
        np.testing.assert_allclose(PointCloudFrame.empty().centroid(), np.zeros(3))

    def test_bounding_box(self):
        frame = make_frame(20)
        low, high = frame.bounding_box()
        assert np.all(low <= high)
        np.testing.assert_allclose(low, frame.xyz.min(axis=0))

    def test_translated(self):
        frame = make_frame(4)
        shifted = frame.translated([1.0, -2.0, 0.5])
        np.testing.assert_allclose(shifted.xyz, frame.xyz + [1.0, -2.0, 0.5])
        # Doppler/intensity untouched.
        np.testing.assert_allclose(shifted.points[:, 3:], frame.points[:, 3:])

    def test_translated_rejects_bad_offset(self):
        with pytest.raises(ValueError):
            make_frame().translated([1.0, 2.0])

    def test_subsampled_caps_points(self, rng):
        frame = make_frame(50)
        small = frame.subsampled(10, rng)
        assert small.num_points == 10

    def test_subsampled_noop_when_under_budget(self, rng):
        frame = make_frame(5)
        assert frame.subsampled(10, rng).num_points == 5

    def test_from_components(self):
        xyz = np.zeros((3, 3))
        frame = PointCloudFrame.from_components(xyz, np.ones(3), np.full(3, 5.0))
        assert frame.num_points == 3
        np.testing.assert_allclose(frame.doppler, 1.0)

    def test_from_components_length_mismatch(self):
        with pytest.raises(ValueError):
            PointCloudFrame.from_components(np.zeros((3, 3)), np.ones(2), np.ones(3))


class TestPointCloudSequence:
    def test_append_assigns_index_and_timestamp(self):
        sequence = PointCloudSequence(frame_period=0.1)
        sequence.append(make_frame(3))
        sequence.append(make_frame(4))
        assert sequence[1].frame_index == 1
        assert sequence[1].timestamp == pytest.approx(0.1)

    def test_point_counts_and_mean(self):
        sequence = PointCloudSequence()
        for n in (3, 5, 7):
            sequence.append(make_frame(n))
        np.testing.assert_array_equal(sequence.point_counts(), [3, 5, 7])
        assert sequence.mean_points_per_frame() == pytest.approx(5.0)

    def test_empty_sequence_mean(self):
        assert PointCloudSequence().mean_points_per_frame() == 0.0

    def test_iteration(self):
        sequence = PointCloudSequence()
        sequence.append(make_frame(2))
        assert len(list(sequence)) == 1

    def test_invalid_frame_period(self):
        with pytest.raises(ValueError):
            PointCloudSequence(frame_period=0.0)


class TestMergeFrames:
    def test_concatenates_points(self):
        merged = merge_frames([make_frame(3), make_frame(4, seed=1), make_frame(5, seed=2)])
        assert merged.num_points == 12

    def test_keeps_centre_frame_metadata(self):
        frames = [
            make_frame(2, timestamp=0.0, frame_index=0),
            make_frame(2, timestamp=0.1, frame_index=1),
            make_frame(2, timestamp=0.2, frame_index=2),
        ]
        merged = merge_frames(frames)
        assert merged.frame_index == 1
        assert merged.timestamp == pytest.approx(0.1)

    def test_merge_empty_list(self):
        assert merge_frames([]).num_points == 0

    def test_merge_with_empty_frames(self):
        merged = merge_frames([PointCloudFrame.empty(), make_frame(4), PointCloudFrame.empty()])
        assert merged.num_points == 4

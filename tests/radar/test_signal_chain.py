"""Tests for FMCW beat-signal synthesis and range/Doppler processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.config import RadarConfig
from repro.radar.scene import RadarTarget, Scene
from repro.radar.signal_chain import (
    RadarDataCube,
    range_doppler_processing,
    synthesize_data_cube,
)


@pytest.fixture(scope="module")
def config():
    return RadarConfig.low_resolution()


def single_target_scene(distance=2.0, velocity=0.0, azimuth=0.0, rcs=5.0):
    position = np.array([distance * np.sin(azimuth), distance * np.cos(azimuth), 0.0])
    direction = position / np.linalg.norm(position)
    return Scene([RadarTarget(position=position, velocity=velocity * direction, rcs=rcs)])


class TestDataCube:
    def test_shape(self, config, rng):
        cube = synthesize_data_cube(single_target_scene(), config, rng=rng)
        assert cube.samples.shape == (
            config.num_samples,
            config.num_chirps,
            config.num_azimuth_antennas,
            config.num_elevation_antennas,
        )

    def test_complex_dtype(self, config, rng):
        cube = synthesize_data_cube(single_target_scene(), config, rng=rng)
        assert np.iscomplexobj(cube.samples)

    def test_empty_scene_is_pure_noise(self, config, rng):
        cube = synthesize_data_cube(Scene([]), config, rng=rng, add_noise=True)
        power = np.mean(np.abs(cube.samples) ** 2)
        assert power == pytest.approx(config.noise_power, rel=0.2)

    def test_no_noise_option(self, config, rng):
        cube = synthesize_data_cube(Scene([]), config, rng=rng, add_noise=False)
        assert np.all(cube.samples == 0)

    def test_wrong_shape_rejected(self, config):
        with pytest.raises(ValueError):
            RadarDataCube(samples=np.zeros((2, 2, 2, 2), dtype=complex), config=config)

    def test_out_of_range_target_contributes_nothing(self, config, rng):
        scene = single_target_scene(distance=config.max_range * 2)
        cube = synthesize_data_cube(scene, config, rng=rng, add_noise=False)
        assert np.allclose(cube.samples, 0)


class TestRangeDopplerProcessing:
    def test_peak_at_expected_range_bin(self, config, rng):
        distance = 2.0
        cube = synthesize_data_cube(
            single_target_scene(distance=distance), config, rng=rng, add_noise=False
        )
        rd_map = range_doppler_processing(cube)
        # Only search the unambiguous (positive-beat) half of the range axis.
        half = rd_map.power[: config.num_samples // 2]
        peak_range_bin = np.unravel_index(np.argmax(half), half.shape)[0]
        expected_bin = distance / config.range_resolution
        assert abs(peak_range_bin - expected_bin) <= 1.5

    def test_static_target_lands_in_zero_doppler_bin(self, config, rng):
        cube = synthesize_data_cube(single_target_scene(velocity=0.0), config, rng=rng, add_noise=False)
        rd_map = range_doppler_processing(cube)
        peak = np.unravel_index(np.argmax(rd_map.power), rd_map.power.shape)
        assert abs(peak[1] - config.num_chirps // 2) <= 1

    def test_moving_target_shifts_doppler_bin(self, config, rng):
        velocity = 1.0
        cube = synthesize_data_cube(
            single_target_scene(velocity=velocity), config, rng=rng, add_noise=False
        )
        rd_map = range_doppler_processing(cube)
        peak = np.unravel_index(np.argmax(rd_map.power), rd_map.power.shape)
        measured_velocity = rd_map.velocity_of_bin(peak[1])
        assert measured_velocity == pytest.approx(velocity, abs=2 * config.velocity_resolution)

    def test_bin_conversions(self, config, rng):
        cube = synthesize_data_cube(single_target_scene(), config, rng=rng)
        rd_map = range_doppler_processing(cube)
        assert rd_map.range_of_bin(0) == 0.0
        assert rd_map.range_of_bin(10) == pytest.approx(10 * config.range_resolution)
        assert rd_map.velocity_of_bin(config.num_chirps // 2) == pytest.approx(0.0)

    def test_power_map_shape(self, config, rng):
        cube = synthesize_data_cube(single_target_scene(), config, rng=rng)
        rd_map = range_doppler_processing(cube)
        assert rd_map.power.shape == (config.num_samples, config.num_chirps)
        assert rd_map.spectrum.shape[:2] == rd_map.power.shape

    def test_stronger_rcs_gives_stronger_peak(self, config, rng):
        weak = range_doppler_processing(
            synthesize_data_cube(single_target_scene(rcs=1.0), config, rng=np.random.default_rng(0), add_noise=False)
        ).power.max()
        strong = range_doppler_processing(
            synthesize_data_cube(single_target_scene(rcs=9.0), config, rng=np.random.default_rng(0), add_noise=False)
        ).power.max()
        assert strong > 4.0 * weak

"""Tests for the radar configuration and its derived quantities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.config import SPEED_OF_LIGHT, RadarConfig


class TestDerivedQuantities:
    def test_wavelength_at_77ghz(self):
        config = RadarConfig(carrier_frequency=77e9)
        assert config.wavelength == pytest.approx(3.89e-3, rel=1e-2)

    def test_range_resolution_formula(self):
        config = RadarConfig(bandwidth=4.0e9)
        assert config.range_resolution == pytest.approx(SPEED_OF_LIGHT / (2 * 4.0e9))

    def test_default_range_resolution_is_centimetres(self):
        # The IWR1443-class sweep gives a few-centimetre range resolution.
        assert 0.02 < RadarConfig().range_resolution < 0.08

    def test_max_range_covers_indoor_scene(self):
        assert RadarConfig().max_range > 4.0

    def test_velocity_resolution_formula(self):
        config = RadarConfig()
        expected = config.wavelength / (2 * config.num_chirps * config.chirp_repetition)
        assert config.velocity_resolution == pytest.approx(expected)

    def test_max_velocity_covers_human_motion(self):
        # Fast limb motion reaches ~2 m/s; the radar must not alias it.
        assert RadarConfig().max_velocity >= 2.0

    def test_virtual_antenna_count(self):
        config = RadarConfig(num_azimuth_antennas=8, num_elevation_antennas=2)
        assert config.num_virtual_antennas == 16

    def test_chirp_slope(self):
        config = RadarConfig(bandwidth=2e9, chirp_duration=50e-6)
        assert config.chirp_slope == pytest.approx(2e9 / 50e-6)

    def test_sample_rate(self):
        config = RadarConfig(num_samples=128, chirp_duration=64e-6)
        assert config.sample_rate == pytest.approx(2e6)

    def test_noise_power_is_linear_scale(self):
        config = RadarConfig(noise_figure_db=-30.0)
        assert config.noise_power == pytest.approx(1e-3)

    def test_describe_mentions_key_figures(self):
        text = RadarConfig().describe()
        assert "GHz" in text and "range res" in text and "virtual antennas" in text


class TestConstructorsAndValidation:
    def test_default_equals_iwr1443_default(self):
        assert RadarConfig() == RadarConfig.iwr1443_default()

    def test_low_resolution_is_cheaper(self):
        low = RadarConfig.low_resolution()
        default = RadarConfig()
        assert low.num_samples * low.num_chirps < default.num_samples * default.num_chirps

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            RadarConfig(bandwidth=-1.0)

    def test_rejects_chirp_repetition_shorter_than_chirp(self):
        with pytest.raises(ValueError):
            RadarConfig(chirp_duration=100e-6, chirp_repetition=50e-6)

    def test_rejects_too_few_chirps(self):
        with pytest.raises(ValueError):
            RadarConfig(num_chirps=1)

    def test_rejects_single_azimuth_antenna(self):
        with pytest.raises(ValueError):
            RadarConfig(num_azimuth_antennas=1)

    def test_rejects_non_positive_frame_period(self):
        with pytest.raises(ValueError):
            RadarConfig(frame_period=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            RadarConfig().bandwidth = 1e9  # type: ignore[misc]

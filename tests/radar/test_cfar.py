"""Tests for the CA-CFAR detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar.cfar import CfarConfig, ca_cfar_2d, detect_peaks, group_peaks


def noise_map(shape=(64, 32), seed=0, level=1.0):
    rng = np.random.default_rng(seed)
    # Exponentially distributed power (complex Gaussian noise magnitude squared).
    return rng.exponential(scale=level, size=shape)


class TestCfarConfig:
    def test_defaults_valid(self):
        CfarConfig()

    def test_rejects_negative_windows(self):
        with pytest.raises(ValueError):
            CfarConfig(guard_cells=(-1, 2))

    def test_rejects_empty_training_window(self):
        with pytest.raises(ValueError):
            CfarConfig(training_cells=(0, 0))

    def test_rejects_zero_max_detections(self):
        with pytest.raises(ValueError):
            CfarConfig(max_detections=0)


class TestCaCfar:
    def test_detects_strong_injected_target(self):
        power = noise_map()
        power[30, 16] = 500.0
        mask = ca_cfar_2d(power, CfarConfig())
        assert mask[30, 16]

    def test_low_false_alarm_rate_on_pure_noise(self):
        power = noise_map(seed=3)
        mask = ca_cfar_2d(power, CfarConfig(threshold_db=12.0))
        assert mask.mean() < 0.01

    def test_adapts_to_noise_floor_changes(self):
        """A target must be detected relative to its LOCAL noise level."""
        power = noise_map(seed=1)
        power[:, 16:] *= 100.0  # high-noise region
        power[10, 4] = 60.0  # strong relative to the low-noise region only
        mask = ca_cfar_2d(power, CfarConfig())
        assert mask[10, 4]

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError):
            ca_cfar_2d(np.zeros(10))

    def test_threshold_monotonicity(self):
        power = noise_map(seed=2)
        power[20, 10] = 30.0
        low = ca_cfar_2d(power, CfarConfig(threshold_db=6.0)).sum()
        high = ca_cfar_2d(power, CfarConfig(threshold_db=15.0)).sum()
        assert high <= low


class TestGroupPeaks:
    def test_collapses_blob_to_single_peak(self):
        power = np.ones((20, 20))
        power[9:12, 9:12] = [[5, 6, 5], [6, 9, 6], [5, 6, 5]]
        mask = power > 4
        grouped = group_peaks(power, mask)
        assert grouped.sum() == 1
        assert grouped[10, 10]

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            group_peaks(np.zeros((4, 4)), np.zeros((5, 5), dtype=bool))


class TestDetectPeaks:
    def test_returns_sorted_by_power(self):
        power = noise_map(seed=5)
        power[10, 5] = 200.0
        power[40, 20] = 400.0
        peaks = detect_peaks(power, CfarConfig())
        assert peaks[0] == (40, 20)
        assert (10, 5) in peaks

    def test_respects_max_detections(self):
        power = noise_map(seed=6)
        strong = np.random.default_rng(1).choice(64 * 32, size=40, replace=False)
        power.flat[strong] = 300.0
        peaks = detect_peaks(power, CfarConfig(max_detections=8))
        assert len(peaks) <= 8

    def test_empty_on_flat_map(self):
        peaks = detect_peaks(np.ones((32, 32)), CfarConfig())
        assert peaks == []

    def test_peak_grouping_flag_reduces_detections(self):
        power = noise_map(seed=7)
        power[20:23, 10:13] = 300.0
        ungrouped = detect_peaks(power, CfarConfig(), peak_grouping=False)
        grouped = detect_peaks(power, CfarConfig(), peak_grouping=True)
        assert len(grouped) <= len(ungrouped)

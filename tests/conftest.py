"""Shared fixtures for the test suite.

The heavier fixtures (synthetic datasets, trained models) are session-scoped
so the cost is paid once; individual tests treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.subjects import default_subjects
from repro.dataset.features import FeatureMapBuilder
from repro.dataset.loader import build_array_dataset
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset_config() -> SyntheticDatasetConfig:
    """A two-subject, two-movement configuration small enough for unit tests."""
    return SyntheticDatasetConfig(
        subject_ids=(1, 4),
        movement_names=("squat", "right_limb_extension"),
        seconds_per_pair=3.0,
        seed=99,
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_dataset_config):
    """A small labelled synthetic dataset (120 frames), generated once."""
    return generate_dataset(tiny_dataset_config)


@pytest.fixture(scope="session")
def feature_builder() -> FeatureMapBuilder:
    """The default projection-layout feature builder."""
    return FeatureMapBuilder()


@pytest.fixture(scope="session")
def tiny_arrays(tiny_dataset, feature_builder):
    """Feature/label arrays of the tiny dataset."""
    return build_array_dataset(tiny_dataset, builder=feature_builder)


@pytest.fixture(scope="session")
def subject_one():
    """The first canonical subject profile."""
    return default_subjects()[0]

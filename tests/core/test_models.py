"""Tests for the MARS baseline / FUSE CNN architecture."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core.models import PoseCNN, PoseCNNConfig, build_baseline_model, build_fuse_model
from repro.dataset.features import FeatureMapBuilder


class TestConfig:
    def test_defaults_match_mars_architecture(self):
        config = PoseCNNConfig()
        assert config.conv_channels == (16, 32)
        assert config.hidden_units == 512
        assert config.output_dim == 57
        assert (config.input_channels, config.input_height, config.input_width) == (5, 8, 8)

    def test_for_feature_builder(self):
        builder = FeatureMapBuilder(num_points=36, grid_height=6, grid_width=6)
        config = PoseCNNConfig.for_feature_builder(builder)
        assert (config.input_height, config.input_width) == (6, 6)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            PoseCNNConfig(input_channels=0)
        with pytest.raises(ValueError):
            PoseCNNConfig(conv_channels=())
        with pytest.raises(ValueError):
            PoseCNNConfig(dropout=1.5)


class TestArchitecture:
    def test_parameter_count_close_to_paper(self):
        """The paper reports 1,095,115 parameters for the MARS baseline."""
        model = build_baseline_model()
        assert abs(model.num_parameters() - 1_095_115) / 1_095_115 < 0.05

    def test_output_shape(self):
        model = PoseCNN()
        out = model(nn.Tensor(np.zeros((4, 5, 8, 8))))
        assert out.shape == (4, 57)

    def test_fuse_model_same_size_as_baseline(self):
        """Section 4.1: the FUSE model has the same dimensions and model size."""
        assert build_fuse_model().num_parameters() == build_baseline_model().num_parameters()

    def test_seed_controls_initialization(self):
        a = PoseCNN(seed=0)
        b = PoseCNN(seed=0)
        c = PoseCNN(seed=1)
        np.testing.assert_allclose(a.parameters()[0].data, b.parameters()[0].data)
        assert not np.allclose(a.parameters()[0].data, c.parameters()[0].data)

    def test_rejects_wrong_input_rank(self):
        with pytest.raises(ValueError):
            PoseCNN()(nn.Tensor(np.zeros((4, 5, 8))))

    def test_rejects_wrong_input_shape(self):
        with pytest.raises(ValueError):
            PoseCNN()(nn.Tensor(np.zeros((4, 5, 6, 6))))

    def test_dropout_variant(self):
        model = PoseCNN(PoseCNNConfig(dropout=0.3))
        out = model(nn.Tensor(np.random.default_rng(0).normal(size=(2, 5, 8, 8))))
        assert out.shape == (2, 57)

    def test_custom_architecture(self):
        config = PoseCNNConfig(conv_channels=(8,), hidden_units=64)
        model = PoseCNN(config)
        assert model(nn.Tensor(np.zeros((1, 5, 8, 8)))).shape == (1, 57)
        assert model.num_parameters() < 300_000


class TestInference:
    def test_predict_returns_numpy(self):
        model = PoseCNN()
        out = model.predict(np.zeros((3, 5, 8, 8)))
        assert isinstance(out, np.ndarray)
        assert out.shape == (3, 57)

    def test_predict_joints_shape(self):
        model = PoseCNN()
        joints = model.predict_joints(np.zeros((2, 5, 8, 8)))
        assert joints.shape == (2, 19, 3)

    def test_predict_does_not_build_graph(self):
        model = PoseCNN()
        model.predict(np.zeros((1, 5, 8, 8)))
        assert all(p.grad is None for p in model.parameters())


class TestLastLayerAccess:
    def test_last_layer_is_output_linear(self):
        model = PoseCNN()
        assert isinstance(model.last_layer, nn.Linear)
        assert model.last_layer.out_features == 57

    def test_last_layer_parameters_subset(self):
        model = PoseCNN()
        last = model.last_layer_parameters()
        assert len(last) == 2  # weight + bias
        all_ids = {id(p) for p in model.parameters()}
        assert all(id(p) in all_ids for p in last)

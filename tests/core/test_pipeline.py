"""Tests for the high-level FusePoseEstimator API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import FineTuneConfig
from repro.core.maml import MetaLearningConfig
from repro.core.models import PoseCNN, PoseCNNConfig
from repro.core.pipeline import FuseConfig, FusePoseEstimator
from repro.core.training import TrainingConfig
from repro.dataset.loader import ArrayDataset
from repro.dataset.splits import per_movement_split


def small_estimator(num_context_frames=1):
    """An estimator with a reduced model so the tests stay fast."""
    config = FuseConfig(
        num_context_frames=num_context_frames,
        training=TrainingConfig(epochs=3, batch_size=32),
        meta=MetaLearningConfig(
            meta_iterations=3, tasks_per_batch=2, support_size=16, query_size=16
        ),
        finetune=FineTuneConfig(epochs=2),
    )
    model = PoseCNN(
        PoseCNNConfig(conv_channels=(8, 8), hidden_units=32), seed=config.model_seed
    )
    return FusePoseEstimator(config, model=model)


class TestPreparation:
    def test_prepare_shapes(self, tiny_dataset):
        estimator = small_estimator()
        arrays = estimator.prepare(tiny_dataset[:20])
        assert arrays.features.shape == (20, 5, 8, 8)
        assert arrays.labels.shape == (20, 57)

    def test_prepare_applies_fusion(self, tiny_dataset):
        fused = small_estimator(num_context_frames=1).prepare(tiny_dataset[:30])
        single = small_estimator(num_context_frames=0).prepare(tiny_dataset[:30])
        # Fused feature maps should have more occupied cells on average.
        occupied_fused = (np.abs(fused.features).sum(axis=1) > 0).mean()
        occupied_single = (np.abs(single.features).sum(axis=1) > 0).mean()
        assert occupied_fused > occupied_single

    def test_as_arrays_passthrough(self, tiny_arrays):
        estimator = small_estimator()
        assert estimator._as_arrays(tiny_arrays) is tiny_arrays

    def test_disk_cache_plan_persists_prepared_features(self, tiny_dataset, tmp_path):
        from repro.engine import BatchPlan

        plan = BatchPlan(cache_policy="disk", cache_dir=str(tmp_path / "features"))
        first = FusePoseEstimator(FuseConfig(num_context_frames=1, plan=plan))
        arrays = first.prepare(tiny_dataset[:10])
        assert first.feature_cache is not None
        assert first.feature_cache.stats.misses == 1

        second = FusePoseEstimator(FuseConfig(num_context_frames=1, plan=plan))
        recovered = second.prepare(tiny_dataset[:10])
        assert second.feature_cache.stats.disk_hits == 1
        np.testing.assert_array_equal(recovered.features, arrays.features)

    def test_as_arrays_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            small_estimator()._as_arrays([1, 2, 3])


class TestTraining:
    def test_supervised_training_reduces_error(self, tiny_dataset):
        estimator = small_estimator()
        split = per_movement_split(tiny_dataset)
        train = estimator.prepare(split.train)
        test = estimator.prepare(split.test)
        before = estimator.evaluate(test).mae_average
        estimator.fit_supervised(train, epochs=8)
        after = estimator.evaluate(test).mae_average
        assert after < before
        assert estimator.training_history is not None

    def test_meta_training_runs(self, tiny_dataset):
        estimator = small_estimator()
        history = estimator.fit_meta(tiny_dataset[:60], meta_iterations=2)
        assert len(history.query_loss) == 2
        assert estimator.meta_history is history

    def test_adapt_records_result(self, tiny_dataset):
        estimator = small_estimator()
        adaptation = tiny_dataset[:20]
        evaluation = tiny_dataset[20:40]
        result = estimator.adapt(adaptation, evaluation_sets={"new": evaluation}, epochs=2)
        assert len(result.curves["new"]) == 2
        assert estimator.finetune_result is result


class TestPrediction:
    def test_predict_from_feature_array(self):
        estimator = small_estimator()
        joints = estimator.predict(np.zeros((3, 5, 8, 8)))
        assert joints.shape == (3, 19, 3)

    def test_predict_from_pose_dataset(self, tiny_dataset):
        estimator = small_estimator()
        joints = estimator.predict(tiny_dataset[:5])
        assert joints.shape == (5, 19, 3)

    def test_predict_from_raw_frames(self, tiny_dataset):
        estimator = small_estimator()
        frames = [sample.cloud for sample in list(tiny_dataset)[:6]]
        joints = estimator.predict(frames)
        assert joints.shape == (6, 19, 3)

    def test_predict_with_explicit_parameters_does_not_touch_model(self):
        """The serving refactor: inference through a caller-supplied parameter
        set leaves the estimator's own weights alone."""
        estimator = small_estimator()
        rng = np.random.default_rng(3)
        features = rng.normal(size=(4, 5, 8, 8))
        own = estimator.predict(features)
        snapshot = [param.data.copy() for param in estimator.model.parameters()]

        foreign = [rng.normal(size=param.data.shape) for param in estimator.model.parameters()]
        adapted = estimator.predict(features, parameters=foreign)
        assert adapted.shape == (4, 19, 3)
        assert not np.allclose(adapted, own)
        for param, before in zip(estimator.model.parameters(), snapshot):
            np.testing.assert_array_equal(param.data, before)
        # And the model's own state still answers unchanged afterwards.
        np.testing.assert_array_equal(estimator.predict(features), own)

    def test_predict_with_own_parameters_matches_model_closely(self):
        estimator = small_estimator()
        features = np.random.default_rng(4).normal(size=(3, 5, 8, 8))
        own = [param.data.copy() for param in estimator.model.parameters()]
        np.testing.assert_allclose(
            estimator.predict(features, parameters=own),
            estimator.predict(features),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_predict_with_wrong_parameter_count_raises(self):
        estimator = small_estimator()
        with pytest.raises(ValueError, match="parameters"):
            estimator.predict(np.zeros((1, 5, 8, 8)), parameters=[np.zeros((2, 2))])

    def test_predictions_in_scene_ballpark_after_training(self, tiny_dataset):
        estimator = small_estimator()
        split = per_movement_split(tiny_dataset)
        estimator.fit_supervised(estimator.prepare(split.train), epochs=10)
        joints = estimator.predict(split.test[:10])
        # Depth (y) predictions should be in front of the radar, heights plausible.
        assert 0.5 < joints[..., 1].mean() < 4.0
        assert -0.5 < joints[..., 2].mean() < 2.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, tiny_dataset):
        estimator = small_estimator()
        estimator.fit_supervised(estimator.prepare(tiny_dataset[:40]), epochs=2)
        features = np.random.default_rng(0).normal(size=(4, 5, 8, 8))
        expected = estimator.predict(features)

        path = estimator.save(tmp_path / "fuse_model.npz")
        fresh = small_estimator()
        fresh.load(path)
        np.testing.assert_allclose(fresh.predict(features), expected)

    def test_evaluate_accepts_arrays_and_datasets(self, tiny_dataset, tiny_arrays):
        estimator = small_estimator()
        report_a = estimator.evaluate(tiny_dataset[:10])
        report_b = estimator.evaluate(ArrayDataset(tiny_arrays.features[:10], tiny_arrays.labels[:10]))
        assert report_a.num_samples == report_b.num_samples == 10

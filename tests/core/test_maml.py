"""Tests for the meta-learning trainer (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import evaluate_model
from repro.core.maml import MetaLearningConfig, MetaTrainer
from repro.core.models import PoseCNN, PoseCNNConfig
from repro.dataset.loader import ArrayDataset


def small_model(seed=0):
    return PoseCNN(PoseCNNConfig(conv_channels=(8, 8), hidden_units=32), seed=seed)


def toy_data(n=160, seed=0):
    """A learnable toy regression: labels are linear images of pooled features."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 5, 8, 8))
    mixing = rng.normal(size=(5, 57)) * 0.1
    labels = features.mean(axis=(2, 3)) @ mixing + 1.0
    return ArrayDataset(features, labels)


class TestMetaLearningConfig:
    def test_defaults_valid(self):
        MetaLearningConfig()

    def test_paper_scale_matches_section_41(self):
        config = MetaLearningConfig.paper_scale()
        assert config.meta_iterations == 20_000
        assert config.tasks_per_batch == 32
        assert config.support_size == 1_000
        assert config.meta_lr == pytest.approx(0.001)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MetaLearningConfig(meta_iterations=0)
        with pytest.raises(ValueError):
            MetaLearningConfig(inner_lr=0.0)
        with pytest.raises(ValueError):
            MetaLearningConfig(algorithm="second-order")
        with pytest.raises(ValueError):
            MetaLearningConfig(warmstart_epochs=-1)


class TestMetaTrainer:
    def test_history_lengths(self):
        config = MetaLearningConfig(
            meta_iterations=4, tasks_per_batch=2, support_size=16, query_size=16
        )
        trainer = MetaTrainer(small_model(), config)
        history = trainer.meta_train(toy_data())
        assert len(history.query_loss) == 4
        assert len(history.support_loss) == 4

    def test_parameters_change(self):
        config = MetaLearningConfig(
            meta_iterations=3, tasks_per_batch=2, support_size=16, query_size=16
        )
        model = small_model()
        before = [p.data.copy() for p in model.parameters()]
        MetaTrainer(model, config).meta_train(toy_data())
        changed = any(
            not np.allclose(prev, param.data) for prev, param in zip(before, model.parameters())
        )
        assert changed

    def test_no_leftover_gradients(self):
        config = MetaLearningConfig(
            meta_iterations=2, tasks_per_batch=2, support_size=8, query_size=8
        )
        model = small_model()
        MetaTrainer(model, config).meta_train(toy_data(64))
        assert all(p.grad is None for p in model.parameters())

    def test_query_loss_decreases_on_toy_problem(self):
        config = MetaLearningConfig(
            meta_iterations=40, tasks_per_batch=2, support_size=32, query_size=32, meta_lr=2e-3
        )
        trainer = MetaTrainer(small_model(), config)
        history = trainer.meta_train(toy_data())
        early = np.mean(history.query_loss[:5])
        late = np.mean(history.query_loss[-5:])
        assert late < early

    def test_validation_tracked_at_requested_interval(self):
        config = MetaLearningConfig(
            meta_iterations=6, tasks_per_batch=2, support_size=16, query_size=16
        )
        trainer = MetaTrainer(small_model(), config)
        history = trainer.meta_train(toy_data(), validation_data=toy_data(32, seed=1), validation_every=3)
        assert history.validation_iterations == [3, 6]
        assert len(history.validation_mae_cm) == 2

    def test_iteration_override(self):
        config = MetaLearningConfig(
            meta_iterations=50, tasks_per_batch=2, support_size=8, query_size=8
        )
        history = MetaTrainer(small_model(), config).meta_train(toy_data(64), meta_iterations=2)
        assert len(history.query_loss) == 2

    def test_warmstart_improves_initial_fit(self):
        data = toy_data()
        no_warm = small_model(seed=2)
        warm = small_model(seed=2)
        cfg_no_warm = MetaLearningConfig(
            meta_iterations=1, tasks_per_batch=1, support_size=16, query_size=16
        )
        cfg_warm = MetaLearningConfig(
            meta_iterations=1, tasks_per_batch=1, support_size=16, query_size=16,
            warmstart_epochs=10, warmstart_batch_size=32,
        )
        MetaTrainer(no_warm, cfg_no_warm).meta_train(data)
        MetaTrainer(warm, cfg_warm).meta_train(data)
        assert (
            evaluate_model(warm, data).mae_average < evaluate_model(no_warm, data).mae_average
        )

    def test_reptile_mode_runs_and_changes_parameters(self):
        config = MetaLearningConfig(
            meta_iterations=3, tasks_per_batch=2, support_size=16, query_size=16, algorithm="reptile"
        )
        model = small_model()
        before = [p.data.copy() for p in model.parameters()]
        history = MetaTrainer(model, config).meta_train(toy_data())
        assert len(history.query_loss) == 3
        assert any(
            not np.allclose(prev, p.data) for prev, p in zip(before, model.parameters())
        )

    def test_adapted_model_beats_initial_on_support_task(self):
        """After meta-training, one inner step on a task must reduce its loss."""
        data = toy_data()
        config = MetaLearningConfig(
            meta_iterations=25, tasks_per_batch=2, support_size=32, query_size=32, meta_lr=2e-3
        )
        trainer = MetaTrainer(small_model(), config)
        history = trainer.meta_train(data)
        # Support loss (pre-adaptation) should exceed query loss (post-adaptation)
        # on average in the later iterations: adaptation helps.
        later = slice(-10, None)
        assert np.mean(history.query_loss[later]) <= np.mean(history.support_loss[later]) * 1.05

    def test_history_as_dict(self):
        config = MetaLearningConfig(
            meta_iterations=2, tasks_per_batch=1, support_size=8, query_size=8
        )
        history = MetaTrainer(small_model(), config).meta_train(toy_data(32))
        payload = history.as_dict()
        assert set(payload) == {
            "query_loss",
            "support_loss",
            "validation_mae_cm",
            "validation_iterations",
        }


class TestShardedMetaTraining:
    """``plan.workers`` shards the task loop over processes without moving a bit."""

    @pytest.mark.parametrize("algorithm", ["fomaml", "reptile"])
    def test_sharded_training_is_bitwise_identical_to_serial(self, algorithm):
        from repro.engine import BatchPlan

        config = MetaLearningConfig(
            meta_iterations=3,
            tasks_per_batch=4,
            support_size=16,
            query_size=16,
            algorithm=algorithm,
        )
        data = toy_data()
        results = {}
        for workers in (1, 2):
            model = small_model(seed=7)
            history = MetaTrainer(model, config, BatchPlan().with_workers(workers)).meta_train(
                data
            )
            results[workers] = (
                [p.data.copy() for p in model.parameters()],
                list(history.query_loss),
                list(history.support_loss),
            )
        serial_params, serial_query, serial_support = results[1]
        sharded_params, sharded_query, sharded_support = results[2]
        assert serial_query == sharded_query
        assert serial_support == sharded_support
        for serial, sharded in zip(serial_params, sharded_params):
            np.testing.assert_array_equal(serial, sharded)

    def test_plan_kernel_backend_is_honoured_and_close_to_reference(self):
        from repro.engine import BatchPlan

        config = MetaLearningConfig(
            meta_iterations=2, tasks_per_batch=2, support_size=16, query_size=16
        )
        data = toy_data(96)
        reference_model = small_model(seed=5)
        MetaTrainer(reference_model, config, BatchPlan()).meta_train(data)
        fast_model = small_model(seed=5)
        MetaTrainer(fast_model, config, BatchPlan(kernel_backend="fast")).meta_train(data)
        for ref, fast in zip(reference_model.parameters(), fast_model.parameters()):
            np.testing.assert_allclose(ref.data, fast.data, rtol=1e-9, atol=1e-11)

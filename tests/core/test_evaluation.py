"""Tests for MAE metrics and convergence statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.skeleton import JOINT_NAMES
from repro.core.evaluation import (
    epochs_to_reach,
    evaluate_model,
    intersection_epoch,
    mae_cm,
    mae_per_axis_cm,
    per_joint_mae_cm,
)
from repro.core.models import PoseCNN
from repro.dataset.loader import ArrayDataset


class TestMaeMetrics:
    def test_per_axis_values(self):
        targets = np.zeros((2, 19, 3))
        predictions = np.zeros((2, 19, 3))
        predictions[..., 0] = 0.05  # 5 cm error on x only
        mae = mae_per_axis_cm(predictions, targets)
        np.testing.assert_allclose(mae, [5.0, 0.0, 0.0])

    def test_average(self):
        targets = np.zeros((4, 19, 3))
        predictions = np.full((4, 19, 3), 0.03)
        assert mae_cm(predictions, targets) == pytest.approx(3.0)

    def test_flat_vectors_accepted(self):
        targets = np.zeros((3, 57))
        predictions = np.full((3, 57), 0.02)
        assert mae_cm(predictions, targets) == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mae_cm(np.zeros((2, 57)), np.zeros((3, 57)))

    def test_invalid_width_raises(self):
        with pytest.raises(ValueError):
            mae_cm(np.zeros((2, 58)), np.zeros((2, 58)))

    def test_per_joint_names(self):
        errors = per_joint_mae_cm(np.zeros((2, 19, 3)), np.zeros((2, 19, 3)))
        assert set(errors) == set(JOINT_NAMES)

    def test_per_joint_localizes_error(self):
        targets = np.zeros((2, 19, 3))
        predictions = np.zeros((2, 19, 3))
        predictions[:, 4, :] = 0.10  # head is joint index 4
        errors = per_joint_mae_cm(predictions, targets)
        assert errors["head"] == pytest.approx(10.0)
        assert errors["spine_base"] == 0.0


class TestEvaluateModel:
    def test_report_fields(self, tiny_arrays):
        model = PoseCNN()
        report = evaluate_model(model, tiny_arrays)
        assert report.num_samples == len(tiny_arrays)
        assert report.mae_average == pytest.approx(
            np.mean([report.mae_x, report.mae_y, report.mae_z])
        )
        assert set(report.per_joint) == set(JOINT_NAMES)
        assert report.mae_average > 0

    def test_as_row_format(self, tiny_arrays):
        report = evaluate_model(PoseCNN(), tiny_arrays)
        row = report.as_row()
        assert set(row) == {"X (cm)", "Y (cm)", "Z (cm)", "Average (cm)"}

    def test_batching_does_not_change_result(self, tiny_arrays):
        model = PoseCNN(seed=3)
        small = evaluate_model(model, tiny_arrays, batch_size=7)
        large = evaluate_model(model, tiny_arrays, batch_size=1024)
        assert small.mae_average == pytest.approx(large.mae_average)

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            evaluate_model(PoseCNN(), ArrayDataset(np.zeros((0, 5, 8, 8)), np.zeros((0, 57))))

    def test_perfect_predictions_give_zero_mae(self):
        model = PoseCNN(seed=1)
        features = np.random.default_rng(0).normal(size=(10, 5, 8, 8))
        labels = model.predict(features)
        report = evaluate_model(model, ArrayDataset(features, labels))
        assert report.mae_average == pytest.approx(0.0, abs=1e-9)


class TestConvergenceStatistics:
    def test_epochs_to_reach(self):
        curve = [10.0, 8.0, 6.5, 6.0, 5.0]
        assert epochs_to_reach(curve, 6.0) == 4
        assert epochs_to_reach(curve, 10.0) == 1
        assert epochs_to_reach(curve, 1.0) is None

    def test_epochs_to_reach_empty(self):
        assert epochs_to_reach([], 5.0) is None

    def test_intersection_epoch_basic(self):
        fuse = [12.0, 8.0, 6.0, 5.5, 5.4, 5.4]
        baseline = [9.0, 8.5, 8.0, 7.0, 6.0, 5.0]
        # Baseline first matches FUSE's best-so-far at epoch 6 (5.0 <= 5.4).
        assert intersection_epoch(baseline, fuse) == 6

    def test_intersection_immediately_when_baseline_ahead(self):
        assert intersection_epoch([5.0, 5.0], [10.0, 9.0]) == 1

    def test_intersection_never_reached(self):
        assert intersection_epoch([9.0, 9.0, 9.0], [5.0, 4.0, 3.0]) is None

    def test_intersection_empty_curves(self):
        assert intersection_epoch([], [1.0]) is None

"""Tests for supervised training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import evaluate_model
from repro.core.models import PoseCNN, PoseCNNConfig
from repro.core.training import SupervisedTrainer, TrainingConfig
from repro.dataset.loader import ArrayDataset, BatchLoader


def small_model():
    return PoseCNN(PoseCNNConfig(conv_channels=(8, 8), hidden_units=64), seed=0)


def toy_data(n=64, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 5, 8, 8))
    labels = rng.normal(scale=0.2, size=(n, 57)) + 1.0
    return ArrayDataset(features, labels)


class TestTrainingConfig:
    def test_defaults_follow_paper(self):
        config = TrainingConfig()
        assert config.batch_size == 128
        assert config.loss == "l1"

    def test_loss_function_selection(self):
        assert TrainingConfig(loss="l1").loss_function().__name__ == "l1_loss"
        assert TrainingConfig(loss="l2").loss_function().__name__ == "mse_loss"
        assert TrainingConfig(loss="huber").loss_function().__name__ == "huber_loss"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1.0)
        with pytest.raises(ValueError):
            TrainingConfig(loss="hinge")


class TestSupervisedTrainer:
    def test_loss_decreases(self):
        data = toy_data()
        trainer = SupervisedTrainer(small_model(), TrainingConfig(epochs=15, batch_size=32, seed=0))
        history = trainer.fit(data)
        assert history.train_loss[-1] < history.train_loss[0] * 0.7

    def test_validation_curve_recorded(self):
        data = toy_data()
        val = toy_data(n=32, seed=1)
        trainer = SupervisedTrainer(small_model(), TrainingConfig(epochs=4, batch_size=32))
        history = trainer.fit(data, validation_data=val)
        assert len(history.validation_mae_cm) == 4
        assert history.best_validation_epoch() is not None

    def test_no_validation_curve_when_not_provided(self):
        trainer = SupervisedTrainer(small_model(), TrainingConfig(epochs=2, batch_size=32))
        history = trainer.fit(toy_data())
        assert history.validation_mae_cm == []
        assert history.best_validation_epoch() is None

    def test_epoch_override(self):
        trainer = SupervisedTrainer(small_model(), TrainingConfig(epochs=10, batch_size=32))
        history = trainer.fit(toy_data(), epochs=3)
        assert len(history.train_loss) == 3

    def test_training_improves_mae_on_training_distribution(self):
        data = toy_data(n=96)
        model = small_model()
        before = evaluate_model(model, data).mae_average
        SupervisedTrainer(model, TrainingConfig(epochs=20, batch_size=32)).fit(data)
        after = evaluate_model(model, data).mae_average
        assert after < 0.6 * before

    def test_history_as_dict(self):
        trainer = SupervisedTrainer(small_model(), TrainingConfig(epochs=2, batch_size=32))
        history = trainer.fit(toy_data(), validation_data=toy_data(n=16, seed=2))
        payload = history.as_dict()
        assert set(payload) == {"train_loss", "validation_mae_cm"}

    def test_train_epoch_returns_mean_loss(self):
        data = toy_data()
        trainer = SupervisedTrainer(small_model(), TrainingConfig(epochs=1, batch_size=32))
        loader = BatchLoader(data, batch_size=32, shuffle=False)
        loss = trainer.train_epoch(loader)
        assert loss > 0

"""Tests for online fine-tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import FineTuneConfig, FineTuner
from repro.core.models import PoseCNN, PoseCNNConfig
from repro.core.training import SupervisedTrainer, TrainingConfig
from repro.dataset.loader import ArrayDataset


def small_model(seed=0):
    return PoseCNN(PoseCNNConfig(conv_channels=(8, 8), hidden_units=32), seed=seed)


def shifted_data(n=48, seed=0, offset=0.0):
    """Toy data whose labels depend on the features plus a distribution shift."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 5, 8, 8))
    mixing = np.random.default_rng(99).normal(size=(5, 57)) * 0.1
    labels = features.mean(axis=(2, 3)) @ mixing + offset
    return ArrayDataset(features, labels)


@pytest.fixture
def pretrained():
    """A model fit to the 'original' distribution."""
    model = small_model()
    SupervisedTrainer(model, TrainingConfig(epochs=15, batch_size=16)).fit(shifted_data(seed=1))
    return model


class TestFineTuneConfig:
    def test_defaults(self):
        config = FineTuneConfig()
        assert config.scope == "all"
        assert config.optimizer == "sgd"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)
        with pytest.raises(ValueError):
            FineTuneConfig(scope="first")
        with pytest.raises(ValueError):
            FineTuneConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            FineTuneConfig(learning_rate=0.0)


class TestFineTuner:
    def test_curve_lengths(self, pretrained):
        new_data = shifted_data(seed=2, offset=0.3)
        result = FineTuner(pretrained, FineTuneConfig(epochs=4)).finetune(
            new_data, evaluation_sets={"new": new_data}
        )
        assert len(result.curves["new"]) == 4
        assert len(result.curve_with_initial("new")) == 5
        assert len(result.train_loss) == 4

    def test_adaptation_improves_new_data(self, pretrained):
        new_data = shifted_data(seed=3, offset=0.4)
        result = FineTuner(
            pretrained, FineTuneConfig(epochs=15, optimizer="adam", learning_rate=1e-2)
        ).finetune(new_data, evaluation_sets={"new": new_data})
        curve = result.curve_with_initial("new")
        assert curve[-1] < curve[0] * 0.7

    def test_forgetting_is_measurable(self, pretrained):
        original = shifted_data(seed=1)
        new_data = shifted_data(seed=4, offset=0.8)
        result = FineTuner(
            pretrained, FineTuneConfig(epochs=15, optimizer="adam", learning_rate=1e-2)
        ).finetune(new_data, evaluation_sets={"original": original, "new": new_data})
        original_curve = result.curve_with_initial("original")
        # Adapting to a shifted distribution must degrade the original fit.
        assert original_curve[-1] > original_curve[0]

    def test_last_layer_scope_freezes_backbone(self, pretrained):
        backbone_before = [p.data.copy() for p in pretrained.parameters()[:-2]]
        last_before = [p.data.copy() for p in pretrained.last_layer_parameters()]
        new_data = shifted_data(seed=5, offset=0.5)
        FineTuner(pretrained, FineTuneConfig(epochs=3, scope="last")).finetune(new_data)
        backbone_after = pretrained.parameters()[:-2]
        last_after = pretrained.last_layer_parameters()
        for before, after in zip(backbone_before, backbone_after):
            np.testing.assert_allclose(before, after.data)
        assert any(
            not np.allclose(before, after.data) for before, after in zip(last_before, last_after)
        )

    def test_all_scope_changes_backbone(self, pretrained):
        backbone_before = [p.data.copy() for p in pretrained.parameters()[:-2]]
        new_data = shifted_data(seed=6, offset=0.5)
        FineTuner(pretrained, FineTuneConfig(epochs=3, scope="all")).finetune(new_data)
        assert any(
            not np.allclose(before, after.data)
            for before, after in zip(backbone_before, pretrained.parameters()[:-2])
        )

    def test_adam_optimizer_option(self, pretrained):
        new_data = shifted_data(seed=7, offset=0.3)
        result = FineTuner(
            pretrained, FineTuneConfig(epochs=3, optimizer="adam", learning_rate=1e-3)
        ).finetune(new_data, evaluation_sets={"new": new_data})
        assert len(result.curves["new"]) == 3

    def test_initial_mae_recorded_before_any_update(self, pretrained):
        new_data = shifted_data(seed=8, offset=0.3)
        from repro.core.evaluation import evaluate_model

        expected_initial = evaluate_model(pretrained, new_data).mae_average
        result = FineTuner(pretrained, FineTuneConfig(epochs=1)).finetune(
            new_data, evaluation_sets={"new": new_data}
        )
        assert result.initial_mae_cm["new"] == pytest.approx(expected_initial)

    def test_mae_at_epoch_clamps_to_curve_end(self, pretrained):
        new_data = shifted_data(seed=9)
        result = FineTuner(pretrained, FineTuneConfig(epochs=2)).finetune(
            new_data, evaluation_sets={"new": new_data}
        )
        assert result.mae_at_epoch("new", 100) == result.curve_with_initial("new")[-1]
        assert result.mae_at_epoch("new", 0) == result.initial_mae_cm["new"]

    def test_unknown_curve_raises(self, pretrained):
        new_data = shifted_data(seed=10)
        result = FineTuner(pretrained, FineTuneConfig(epochs=1)).finetune(new_data)
        with pytest.raises(KeyError):
            result.curve_with_initial("new")

    def test_empty_adaptation_set_raises(self, pretrained):
        with pytest.raises(ValueError):
            FineTuner(pretrained, FineTuneConfig()).finetune(
                ArrayDataset(np.zeros((0, 5, 8, 8)), np.zeros((0, 57)))
            )

    def test_epoch_override(self, pretrained):
        new_data = shifted_data(seed=11)
        result = FineTuner(pretrained, FineTuneConfig(epochs=20)).finetune(
            new_data, evaluation_sets={"new": new_data}, epochs=2
        )
        assert len(result.curves["new"]) == 2

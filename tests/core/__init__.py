"""Test package marker (prevents basename collisions across test directories)."""

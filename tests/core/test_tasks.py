"""Tests for meta-learning task sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tasks import Task, TaskSampler
from repro.dataset.loader import ArrayDataset


def arrays(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.normal(size=(n, 5, 8, 8)), rng.normal(size=(n, 57)))


class TestTask:
    def test_rejects_empty_sets(self):
        data = arrays(10)
        with pytest.raises(ValueError):
            Task(support=data.subset([]), query=data.subset([0]))


class TestTaskSampler:
    def test_sample_sizes(self, rng):
        sampler = TaskSampler(arrays(), support_size=16, query_size=24)
        task = sampler.sample_task(rng)
        assert len(task.support) == 16
        assert len(task.query) == 24

    def test_batch_size(self, rng):
        sampler = TaskSampler(arrays(), support_size=8, query_size=8, tasks_per_batch=5)
        batch = sampler.sample_batch(rng)
        assert len(batch) == 5

    def test_tasks_differ_within_batch(self, rng):
        sampler = TaskSampler(arrays(), support_size=8, query_size=8, tasks_per_batch=2)
        batch = sampler.sample_batch(rng)
        assert not np.allclose(batch[0].support.labels, batch[1].support.labels)

    def test_sampling_with_small_dataset_uses_replacement(self, rng):
        sampler = TaskSampler(arrays(4), support_size=16, query_size=16)
        task = sampler.sample_task(rng)
        assert len(task.support) == 16

    def test_deterministic_given_rng(self):
        sampler = TaskSampler(arrays(), support_size=8, query_size=8)
        a = sampler.sample_task(np.random.default_rng(3))
        b = sampler.sample_task(np.random.default_rng(3))
        np.testing.assert_allclose(a.support.labels, b.support.labels)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            TaskSampler(arrays(0))

    def test_rejects_invalid_sizes(self):
        with pytest.raises(ValueError):
            TaskSampler(arrays(), support_size=0)
        with pytest.raises(ValueError):
            TaskSampler(arrays(), tasks_per_batch=0)

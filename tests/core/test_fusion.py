"""Tests for multi-frame point-cloud fusion (Eq. 2-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fusion import FrameFusion, fuse_dataset
from repro.dataset.sample import LabelledFrame, PoseDataset
from repro.radar.pointcloud import PointCloudFrame


def make_frames(counts):
    return [
        PointCloudFrame(np.full((count, 5), float(index)), timestamp=0.1 * index, frame_index=index)
        for index, count in enumerate(counts)
    ]


def make_sequence_dataset(frames_per_sequence=6, sequences=2, points=3):
    dataset = PoseDataset(name="fusion-test")
    for sequence in range(sequences):
        for frame in range(frames_per_sequence):
            cloud = PointCloudFrame(
                np.full((points, 5), float(frame)), timestamp=0.1 * frame, frame_index=frame
            )
            dataset.append(
                LabelledFrame(
                    cloud=cloud,
                    joints=np.full((19, 3), float(frame)),
                    subject_id=1,
                    movement_name="squat",
                    sequence_id=sequence,
                    frame_index=frame,
                )
            )
    return dataset


class TestConfiguration:
    def test_window_size(self):
        assert FrameFusion(0).window_size == 1
        assert FrameFusion(1).window_size == 3
        assert FrameFusion(2).window_size == 5

    def test_rejects_negative_m(self):
        with pytest.raises(ValueError):
            FrameFusion(-1)

    def test_rejects_unknown_boundary(self):
        with pytest.raises(ValueError):
            FrameFusion(1, boundary="wrap")


class TestSequenceFusion:
    def test_m0_is_identity(self):
        frames = make_frames([3, 4, 5])
        fused = FrameFusion(0).fuse_sequence(frames)
        assert [f.num_points for f in fused] == [3, 4, 5]

    def test_m1_interior_frame_merges_three(self):
        frames = make_frames([2, 3, 4, 5, 6])
        fused = FrameFusion(1).fuse_sequence(frames)
        assert fused[2].num_points == 3 + 4 + 5

    def test_clamp_boundary_repeats_edge_frame(self):
        frames = make_frames([2, 3, 4])
        fused = FrameFusion(1, boundary="clamp").fuse_sequence(frames)
        # First window clamps to [0, 0, 1] -> 2 + 2 + 3 points.
        assert fused[0].num_points == 7
        assert len(fused) == 3

    def test_drop_boundary_removes_incomplete_windows(self):
        frames = make_frames([2, 3, 4, 5])
        fused = FrameFusion(1, boundary="drop").fuse_sequence(frames)
        assert len(fused) == 2

    def test_fused_frame_keeps_centre_metadata(self):
        frames = make_frames([1, 1, 1, 1, 1])
        fused = FrameFusion(1).fuse_sequence(frames)
        assert fused[2].frame_index == 2
        assert fused[2].timestamp == pytest.approx(0.2)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            FrameFusion(1).fuse_window([])

    def test_window_size_points_multiply(self):
        frames = make_frames([10] * 9)
        for m in (0, 1, 2):
            fused = FrameFusion(m).fuse_sequence(frames)
            assert fused[4].num_points == 10 * (2 * m + 1)


class TestDatasetFusion:
    def test_labels_unchanged(self):
        dataset = make_sequence_dataset()
        fused = FrameFusion(1).fuse_dataset(dataset)
        for original, merged in zip(dataset, fused):
            np.testing.assert_allclose(merged.joints, original.joints)

    def test_sample_count_preserved_with_clamp(self):
        dataset = make_sequence_dataset(frames_per_sequence=8, sequences=3)
        fused = FrameFusion(1).fuse_dataset(dataset)
        assert len(fused) == len(dataset)

    def test_fusion_does_not_cross_sequences(self):
        dataset = make_sequence_dataset(frames_per_sequence=4, sequences=2, points=2)
        fused = FrameFusion(1).fuse_dataset(dataset)
        # The first frame of the second sequence must only contain points
        # whose payload value is a frame index of that same sequence (0 or 1),
        # never the large indices of the previous sequence's tail.
        second_sequence_first = [
            s for s in fused if s.sequence_id == 1 and s.frame_index == 0
        ][0]
        assert set(np.unique(second_sequence_first.cloud.points)) <= {0.0, 1.0}

    def test_m0_returns_same_dataset_object(self):
        dataset = make_sequence_dataset()
        assert FrameFusion(0).fuse_dataset(dataset) is dataset

    def test_metadata_preserved(self):
        dataset = make_sequence_dataset()
        fused = FrameFusion(2).fuse_dataset(dataset)
        assert fused[0].subject_id == 1
        assert fused[0].movement_name == "squat"

    def test_convenience_wrapper(self):
        dataset = make_sequence_dataset()
        fused = fuse_dataset(dataset, num_context_frames=1)
        assert len(fused) == len(dataset)
        assert fused[2].cloud.num_points == 9

    def test_real_synthetic_dataset_point_enrichment(self, tiny_dataset):
        fused = fuse_dataset(tiny_dataset, num_context_frames=1)
        original_mean = tiny_dataset.point_counts().mean()
        fused_mean = fused.point_counts().mean()
        assert fused_mean > 2.0 * original_mean

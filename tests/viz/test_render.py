"""Tests for ASCII rendering of point clouds and skeletons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.skeleton import Skeleton
from repro.radar.pointcloud import PointCloudFrame
from repro.viz.render import RenderConfig, occupancy_grid, render_point_cloud, render_skeleton


def frame_with_points(points):
    return PointCloudFrame(np.asarray(points, dtype=float))


class TestRenderConfig:
    def test_defaults_valid(self):
        RenderConfig()

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            RenderConfig(width=1)

    def test_rejects_inverted_ranges(self):
        with pytest.raises(ValueError):
            RenderConfig(x_range=(1.0, -1.0))


class TestOccupancyGrid:
    def test_shape(self):
        grid = occupancy_grid(frame_with_points([[0.0, 2.0, 1.0, 0.0, 10.0]]))
        assert grid.shape == (24, 48)

    def test_single_point_single_cell(self):
        grid = occupancy_grid(frame_with_points([[0.0, 2.0, 1.0, 0.0, 10.0]]))
        assert grid.sum() == 1

    def test_empty_frame(self):
        assert occupancy_grid(PointCloudFrame.empty()).sum() == 0

    def test_out_of_range_points_ignored(self):
        grid = occupancy_grid(frame_with_points([[10.0, 2.0, 1.0, 0.0, 10.0]]))
        assert grid.sum() == 0

    def test_higher_point_maps_to_lower_row_index(self):
        config = RenderConfig()
        high = occupancy_grid(frame_with_points([[0.0, 2.0, 1.8, 0.0, 1.0]]), config)
        low = occupancy_grid(frame_with_points([[0.0, 2.0, 0.2, 0.0, 1.0]]), config)
        assert np.argwhere(high)[0][0] < np.argwhere(low)[0][0]


class TestRenderPointCloud:
    def test_contains_header_and_frame(self):
        text = render_point_cloud(frame_with_points([[0.0, 2.0, 1.0, 0.0, 10.0]]), title="demo")
        assert "demo" in text
        assert "1 points" in text
        assert text.count("+") >= 2  # top and bottom rulers

    def test_line_widths_consistent(self):
        config = RenderConfig(width=30, height=10)
        text = render_point_cloud(frame_with_points([[0.0, 2.0, 1.0, 0.0, 10.0]]), config)
        body_lines = [line for line in text.splitlines() if line.startswith("|")]
        assert len(body_lines) == 10
        assert all(len(line) == 32 for line in body_lines)

    def test_denser_cloud_renders_darker(self):
        sparse = frame_with_points([[0.0, 2.0, 1.0, 0.0, 10.0]])
        rng = np.random.default_rng(0)
        dense_points = np.column_stack(
            [
                rng.uniform(-0.1, 0.1, 50),
                np.full(50, 2.0),
                rng.uniform(0.9, 1.1, 50),
                np.zeros(50),
                np.full(50, 10.0),
            ]
        )
        dense = frame_with_points(dense_points)
        # The dense cloud uses high-density glyphs somewhere.
        assert "@" in render_point_cloud(dense)
        assert "@" in render_point_cloud(sparse)  # single cell is also the max


class TestRenderSkeleton:
    def test_contains_joints_and_bones(self):
        positions = Skeleton().neutral_joint_positions()
        text = render_skeleton(positions, title="pose")
        assert "pose" in text
        assert "o" in text
        assert "." in text

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            render_skeleton(np.zeros((5, 3)))

"""Tests for plain-text table formatting."""

from __future__ import annotations

import pytest

from repro.viz.tables import format_comparison, format_curve, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["alpha", 1.234], ["beta", 5]], title="demo")
        assert "demo" in text
        assert "alpha" in text
        assert "1.23" in text
        assert "5" in text

    def test_alignment_produces_equal_length_data_lines(self):
        text = format_table(["a", "b"], [["x", 1.0], ["longer", 123.456]])
        lines = text.splitlines()
        assert len(set(len(line) for line in lines[:1] + lines[2:])) == 1

    def test_precision_control(self):
        text = format_table(["v"], [[3.14159]], precision=4)
        assert "3.1416" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_table_without_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatCurve:
    def test_epoch_indices_present(self):
        text = format_curve("mae", [5.0, 4.5, 4.0])
        assert "mae" in text
        assert "0:" in text and "2:" in text

    def test_line_wrapping(self):
        text = format_curve("mae", list(range(25)), per_line=10)
        # Header plus three wrapped lines.
        assert len(text.splitlines()) == 4


class TestFormatComparison:
    def test_paper_and_measured_columns(self):
        text = format_comparison({"MAE": 5.5}, {"MAE": 6.1}, title="table 1")
        assert "paper" in text and "measured" in text
        assert "5.50" in text and "6.10" in text

    def test_missing_measured_value_rendered_as_nan(self):
        text = format_comparison({"MAE": 5.5}, {})
        assert "nan" in text

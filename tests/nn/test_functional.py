"""Tests for losses and functional activations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.grad_check import check_gradients
from repro.nn.tensor import Tensor


class TestL1Loss:
    def test_value_matches_numpy(self, rng):
        pred = rng.normal(size=(8, 57))
        target = rng.normal(size=(8, 57))
        loss = nn.l1_loss(Tensor(pred), Tensor(target))
        assert loss.item() == pytest.approx(np.abs(pred - target).mean())

    def test_zero_when_equal(self, rng):
        x = rng.normal(size=(4, 3))
        assert nn.l1_loss(Tensor(x), Tensor(x)).item() == 0.0

    def test_gradient(self, rng):
        pred = Tensor(rng.normal(size=(3, 4)) + 0.3, requires_grad=True)
        target = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda inp: nn.l1_loss(inp[0], target), [pred], tolerance=1e-4)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.l1_loss(Tensor(np.zeros((2, 3))), Tensor(np.zeros((3, 2))))

    def test_accepts_raw_arrays(self, rng):
        pred = rng.normal(size=(2, 2))
        target = rng.normal(size=(2, 2))
        assert nn.l1_loss(pred, target).item() == pytest.approx(np.abs(pred - target).mean())


class TestMseLoss:
    def test_value(self, rng):
        pred = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 3))
        assert nn.mse_loss(Tensor(pred), Tensor(target)).item() == pytest.approx(
            ((pred - target) ** 2).mean()
        )

    def test_l2_alias(self, rng):
        pred, target = rng.normal(size=(4,)), rng.normal(size=(4,))
        assert nn.l2_loss(Tensor(pred), Tensor(target)).item() == pytest.approx(
            nn.mse_loss(Tensor(pred), Tensor(target)).item()
        )

    def test_gradient(self, rng):
        pred = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        target = Tensor(rng.normal(size=(3, 3)))
        check_gradients(lambda inp: nn.mse_loss(inp[0], target), [pred])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.mse_loss(Tensor(np.zeros((2,))), Tensor(np.zeros((3,))))


class TestHuberLoss:
    def test_quadratic_for_small_residuals(self):
        pred = Tensor(np.array([0.1]))
        target = Tensor(np.array([0.0]))
        assert nn.huber_loss(pred, target, delta=1.0).item() == pytest.approx(0.5 * 0.01)

    def test_linear_for_large_residuals(self):
        pred = Tensor(np.array([10.0]))
        target = Tensor(np.array([0.0]))
        # 0.5 * delta^2 + delta * (|r| - delta) = 0.5 + 9 = 9.5
        assert nn.huber_loss(pred, target, delta=1.0).item() == pytest.approx(9.5)

    def test_between_l1_and_l2_behaviour(self, rng):
        pred = rng.normal(size=(50,)) * 3
        target = np.zeros(50)
        huber = nn.huber_loss(Tensor(pred), Tensor(target)).item()
        l1 = nn.l1_loss(Tensor(pred), Tensor(target)).item()
        l2 = nn.mse_loss(Tensor(pred), Tensor(target)).item()
        assert huber <= l2 + 1e-9
        assert huber >= 0.3 * l1

    def test_gradient(self, rng):
        pred = Tensor(rng.normal(size=(6,)) * 2 + 0.2, requires_grad=True)
        target = Tensor(np.zeros(6))
        check_gradients(lambda inp: nn.huber_loss(inp[0], target), [pred], tolerance=1e-4)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(4, 10)) * 10)
        probs = nn.softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_stability_with_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1000.0]]))
        probs = nn.softmax(logits).numpy()
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(
            nn.log_softmax(logits).numpy(), np.log(nn.softmax(logits).numpy()), atol=1e-10
        )


class TestCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = nn.cross_entropy_loss(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_classes(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = nn.cross_entropy_loss(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(5))

    def test_gradient(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        labels = np.array([0, 2, 3])
        check_gradients(lambda inp: nn.cross_entropy_loss(inp[0], labels), [logits], tolerance=1e-4)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            nn.cross_entropy_loss(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            nn.cross_entropy_loss(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))


class TestFunctionalActivations:
    def test_relu(self):
        np.testing.assert_allclose(nn.relu(Tensor([-1.0, 1.0])).numpy(), [0.0, 1.0])

    def test_sigmoid_symmetry(self, rng):
        x = rng.normal(size=(10,))
        s_pos = nn.sigmoid(Tensor(x)).numpy()
        s_neg = nn.sigmoid(Tensor(-x)).numpy()
        np.testing.assert_allclose(s_pos + s_neg, 1.0, atol=1e-12)

    def test_tanh_range(self, rng):
        out = nn.tanh(Tensor(rng.normal(size=(100,)) * 10)).numpy()
        assert np.all(np.abs(out) <= 1.0)

"""Equivalence and gradient tests for the shared-base low-rank ops.

The low-rank batched ops promise two things:

1. **Dense equivalence** — applying the rank-r factors as two small
   products is numerically identical (to float64 round-off) to running the
   plain task-batched op with materialized dense weights
   ``base + b[t] @ a[t]``.
2. **Grouping invariance** — a task's output does not depend on which
   other tasks share the batched call, the bitwise property per-user
   adaptation and grouped serving are built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.grad_check import check_gradients
from repro.nn.tensor import Tensor


def _dense_linear_weights(weight: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return weight[None] + np.matmul(b, a)


class TestLinearLowRankBatched:
    @pytest.mark.parametrize(
        "tasks,batch,in_features,out_features,rank",
        [
            (1, 1, 3, 2, 1),
            (2, 4, 6, 5, 2),
            (3, 2, 8, 8, 4),
            (5, 3, 4, 7, 3),
        ],
    )
    def test_matches_dense_batched(self, rng, tasks, batch, in_features, out_features, rank):
        x = rng.normal(size=(tasks, batch, in_features))
        weight = rng.normal(size=(out_features, in_features))
        a = rng.normal(size=(tasks, rank, in_features))
        b = rng.normal(size=(tasks, out_features, rank))
        bias = rng.normal(size=(out_features,))

        lowrank = nn.linear_lowrank_batched(
            Tensor(x), Tensor(weight), Tensor(a), Tensor(b), Tensor(bias)
        ).numpy()
        dense = nn.linear_batched(
            Tensor(x),
            Tensor(_dense_linear_weights(weight, a, b)),
            Tensor(np.broadcast_to(bias, (tasks, out_features)).copy()),
        ).numpy()
        np.testing.assert_allclose(lowrank, dense, rtol=1e-12, atol=1e-12)

    def test_bias_optional(self, rng):
        x = rng.normal(size=(2, 3, 4))
        weight = rng.normal(size=(5, 4))
        a = rng.normal(size=(2, 2, 4))
        b = rng.normal(size=(2, 5, 2))
        out = nn.linear_lowrank_batched(Tensor(x), Tensor(weight), Tensor(a), Tensor(b)).numpy()
        dense = np.einsum("tbi,toi->tbo", x, _dense_linear_weights(weight, a, b))
        np.testing.assert_allclose(out, dense, rtol=1e-12, atol=1e-12)

    def test_zero_b_factor_reduces_to_base(self, rng):
        """The freshly initialized adapter (B = 0) is exactly the base model."""
        x = rng.normal(size=(3, 2, 6))
        weight = rng.normal(size=(4, 6))
        bias = rng.normal(size=(4,))
        a = rng.normal(size=(3, 2, 6))
        b = np.zeros((3, 4, 2))
        out = nn.linear_lowrank_batched(
            Tensor(x), Tensor(weight), Tensor(a), Tensor(b), Tensor(bias)
        ).numpy()
        base = x @ weight.T + bias
        np.testing.assert_array_equal(out, base)

    @pytest.mark.parametrize("peers", [0, 1, 3])
    def test_grouping_invariance(self, rng, peers):
        """A task's row is bitwise identical however the group is composed."""
        x = rng.normal(size=(1 + peers, 2, 5))
        weight = rng.normal(size=(3, 5))
        a = rng.normal(size=(1 + peers, 2, 5))
        b = rng.normal(size=(1 + peers, 3, 2))
        grouped = nn.linear_lowrank_batched(
            Tensor(x), Tensor(weight), Tensor(a), Tensor(b)
        ).numpy()
        solo = nn.linear_lowrank_batched(
            Tensor(x[:1]), Tensor(weight), Tensor(a[:1]), Tensor(b[:1])
        ).numpy()
        np.testing.assert_array_equal(grouped[0], solo[0])

    def test_gradients_flow_to_factors(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        weight = Tensor(rng.normal(size=(5, 4)))
        a = Tensor(rng.normal(size=(2, 2, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 5, 2)) * 0.3, requires_grad=True)
        bias = Tensor(rng.normal(size=(5,)))

        def f(inputs):
            xx, aa, bb = inputs
            return (nn.linear_lowrank_batched(xx, weight, aa, bb, bias) ** 2).sum()

        check_gradients(f, [x, a, b], tolerance=1e-4)

    def test_frozen_base_receives_no_gradient(self, rng):
        weight = Tensor(rng.normal(size=(3, 4)))
        a = Tensor(rng.normal(size=(1, 2, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3, 2)), requires_grad=True)
        out = nn.linear_lowrank_batched(
            Tensor(rng.normal(size=(1, 2, 4))), weight, a, b
        )
        (out ** 2).sum().backward()
        assert a.grad is not None and b.grad is not None
        assert weight.grad is None

    def test_shape_validation(self, rng):
        good = dict(
            x=Tensor(rng.normal(size=(2, 3, 4))),
            weight=Tensor(rng.normal(size=(5, 4))),
            a=Tensor(rng.normal(size=(2, 2, 4))),
            b=Tensor(rng.normal(size=(2, 5, 2))),
        )
        with pytest.raises(ValueError):
            nn.linear_lowrank_batched(
                good["x"], good["weight"], Tensor(rng.normal(size=(3, 2, 4))), good["b"]
            )
        with pytest.raises(ValueError):
            nn.linear_lowrank_batched(
                good["x"], good["weight"], good["a"], Tensor(rng.normal(size=(2, 4, 2)))
            )
        with pytest.raises(ValueError):
            nn.linear_lowrank_batched(
                good["x"], Tensor(rng.normal(size=(5, 6))), good["a"], good["b"]
            )


class TestConv2dLowRankBatched:
    @pytest.mark.parametrize(
        "tasks,batch,channels,out_channels,size,kernel,rank,stride,padding",
        [
            (1, 1, 1, 2, 5, 3, 1, 1, 0),
            (2, 2, 3, 4, 6, 3, 2, 1, 1),
            (3, 1, 2, 5, 8, 3, 4, 2, 1),
            (2, 3, 4, 3, 5, 2, 3, 1, 0),
        ],
    )
    def test_matches_dense_batched(
        self, rng, tasks, batch, channels, out_channels, size, kernel, rank, stride, padding
    ):
        patch = channels * kernel * kernel
        x = rng.normal(size=(tasks, batch, channels, size, size))
        weight = rng.normal(size=(out_channels, channels, kernel, kernel))
        a = rng.normal(size=(tasks, rank, patch))
        b = rng.normal(size=(tasks, out_channels, rank))
        bias = rng.normal(size=(out_channels,))

        lowrank = nn.conv2d_lowrank_batched(
            Tensor(x), Tensor(weight), Tensor(a), Tensor(b), Tensor(bias),
            stride=stride, padding=padding,
        ).numpy()
        dense_weight = (
            weight.reshape(out_channels, patch)[None] + np.matmul(b, a)
        ).reshape(tasks, out_channels, channels, kernel, kernel)
        dense = nn.conv2d_batched(
            Tensor(x),
            Tensor(dense_weight),
            Tensor(np.broadcast_to(bias, (tasks, out_channels)).copy()),
            stride=stride, padding=padding,
        ).numpy()
        np.testing.assert_allclose(lowrank, dense, rtol=1e-12, atol=1e-12)

    def test_zero_b_factor_reduces_to_base(self, rng):
        x = rng.normal(size=(2, 1, 2, 5, 5))
        weight = rng.normal(size=(3, 2, 3, 3))
        bias = rng.normal(size=(3,))
        a = rng.normal(size=(2, 2, 2 * 3 * 3))
        b = np.zeros((2, 3, 2))
        out = nn.conv2d_lowrank_batched(
            Tensor(x), Tensor(weight), Tensor(a), Tensor(b), Tensor(bias), padding=1
        ).numpy()
        base = nn.conv2d(
            Tensor(x.reshape(2, 2, 5, 5)), Tensor(weight), Tensor(bias), padding=1
        ).numpy()
        np.testing.assert_array_equal(out.reshape(base.shape), base)

    @pytest.mark.parametrize("peers", [0, 2])
    def test_grouping_invariance(self, rng, peers):
        tasks = 1 + peers
        x = rng.normal(size=(tasks, 2, 2, 4, 4))
        weight = rng.normal(size=(3, 2, 3, 3))
        a = rng.normal(size=(tasks, 2, 2 * 3 * 3))
        b = rng.normal(size=(tasks, 3, 2))
        grouped = nn.conv2d_lowrank_batched(
            Tensor(x), Tensor(weight), Tensor(a), Tensor(b), padding=1
        ).numpy()
        solo = nn.conv2d_lowrank_batched(
            Tensor(x[:1]), Tensor(weight), Tensor(a[:1]), Tensor(b[:1]), padding=1
        ).numpy()
        np.testing.assert_array_equal(grouped[0], solo[0])

    def test_gradients_flow_to_factors(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 2, 4, 4)), requires_grad=True)
        weight = Tensor(rng.normal(size=(3, 2, 2, 2)))
        a = Tensor(rng.normal(size=(2, 2, 2 * 2 * 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 3, 2)) * 0.3, requires_grad=True)

        def f(inputs):
            xx, aa, bb = inputs
            return (nn.conv2d_lowrank_batched(xx, weight, aa, bb) ** 2).sum()

        check_gradients(f, [x, a, b], tolerance=1e-4)

    def test_shape_validation(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 2, 4, 4)))
        weight = Tensor(rng.normal(size=(3, 2, 2, 2)))
        a = Tensor(rng.normal(size=(2, 2, 8)))
        b = Tensor(rng.normal(size=(2, 3, 2)))
        with pytest.raises(ValueError):
            nn.conv2d_lowrank_batched(Tensor(rng.normal(size=(2, 2, 4, 4))), weight, a, b)
        with pytest.raises(ValueError):
            nn.conv2d_lowrank_batched(x, weight, Tensor(rng.normal(size=(2, 2, 7))), b)
        with pytest.raises(ValueError):
            nn.conv2d_lowrank_batched(x, weight, a, Tensor(rng.normal(size=(2, 2, 2))))

"""Tests for the SGD and Adam optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.layers import Parameter
from repro.nn.tensor import Tensor


def quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestOptimizerBase:
    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_non_positive_lr_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        opt = nn.SGD([p], lr=0.1)
        quadratic_loss(p, np.zeros(3)).backward()
        assert p.grad is not None
        opt.zero_grad()
        assert p.grad is None

    def test_step_skips_parameters_without_gradients(self):
        p = Parameter(np.ones(2))
        opt = nn.SGD([p], lr=0.5)
        opt.step()  # no gradient computed — should be a no-op
        np.testing.assert_allclose(p.data, 1.0)


class TestSGD:
    def test_converges_on_quadratic(self):
        target = np.array([1.0, -2.0, 3.0])
        p = Parameter(np.zeros(3))
        opt = nn.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([5.0])

        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = nn.SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p, target).backward()
                opt.step()
            return abs(p.data[0] - target[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # Zero task gradient: only decay acts.
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_momentum_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_state_dict_roundtrip(self):
        p = Parameter(np.zeros(2))
        opt = nn.SGD([p], lr=0.1, momentum=0.9)
        quadratic_loss(p, np.ones(2)).backward()
        opt.step()
        state = opt.state_dict()
        fresh = nn.SGD([p], lr=0.5, momentum=0.5)
        fresh.load_state_dict(state)
        assert fresh.lr == pytest.approx(0.1)
        assert fresh.momentum == pytest.approx(0.9)
        np.testing.assert_allclose(fresh._velocity[0], opt._velocity[0])


class TestAdam:
    def test_converges_on_quadratic(self):
        target = np.array([2.0, -1.0])
        p = Parameter(np.zeros(2))
        opt = nn.Adam([p], lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_trains_small_network_below_initial_loss(self, rng):
        model = nn.Sequential(nn.Linear(5, 16, rng=rng), nn.ReLU(), nn.Linear(16, 3, rng=rng))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        x = Tensor(rng.normal(size=(32, 5)))
        y = Tensor(rng.normal(size=(32, 3)))
        initial = nn.l1_loss(model(x), y).item()
        for _ in range(60):
            opt.zero_grad()
            loss = nn.l1_loss(model(x), y)
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * initial

    def test_first_step_magnitude_bounded_by_lr(self):
        p = Parameter(np.array([0.0]))
        opt = nn.Adam([p], lr=0.01)
        p.grad = np.array([1000.0])
        opt.step()
        # Adam normalizes by the gradient magnitude, so the first update is ~lr.
        assert abs(p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_invalid_betas_raise(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        opt = nn.Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 2.0

    def test_state_dict_roundtrip_preserves_step_count(self):
        p = Parameter(np.zeros(2))
        opt = nn.Adam([p], lr=0.01)
        for _ in range(3):
            opt.zero_grad()
            quadratic_loss(p, np.ones(2)).backward()
            opt.step()
        state = opt.state_dict()
        fresh = nn.Adam([p], lr=0.01)
        fresh.load_state_dict(state)
        assert fresh._step == 3
        np.testing.assert_allclose(fresh._m[0], opt._m[0])
        np.testing.assert_allclose(fresh._v[0], opt._v[0])

"""Behavioural tests of the kernel-backend registry and selection precedence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import backend as kb


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate selection state: env var cleared, process default restored."""
    monkeypatch.delenv(kb.ENV_VAR, raising=False)
    yield
    kb.set_default_backend(None)


class TestRegistry:
    def test_shipped_backends_registered_in_order(self):
        assert kb.available_backends()[:3] == ("reference", "fast", "compiled")

    def test_get_backend_caches_instances(self):
        assert kb.get_backend("reference") is kb.get_backend("reference")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown kernel backend 'turbo'"):
            kb.get_backend("turbo")
        with pytest.raises(ValueError, match="reference"):
            kb.get_backend("turbo")

    def test_reregistering_requires_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            kb.register_backend("reference", kb.ReferenceBackend)

    def test_register_replace_and_restore(self):
        class Marked(kb.ReferenceBackend):
            name = "reference"
            marked = True

        kb.register_backend("reference", Marked, replace=True)
        try:
            assert getattr(kb.get_backend("reference"), "marked", False)
        finally:
            kb.register_backend("reference", kb.ReferenceBackend, replace=True)
        assert not getattr(kb.get_backend("reference"), "marked", False)

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            kb.register_backend("", kb.ReferenceBackend)
        with pytest.raises(ValueError):
            kb.register_backend(None, kb.ReferenceBackend)  # type: ignore[arg-type]

    def test_importable_excludes_unavailable(self):
        importable = kb.importable_backends()
        assert "reference" in importable and "fast" in importable
        if not kb.CompiledBackend.is_available():
            assert "compiled" not in importable

    @pytest.mark.skipif(
        kb.CompiledBackend.is_available(), reason="numba present: backend importable"
    )
    def test_unavailable_backend_error_names_the_extras(self):
        with pytest.raises(kb.BackendUnavailableError, match=r"fuse-repro\[compiled\]"):
            kb.get_backend("compiled")


class TestSelectionPrecedence:
    def test_default_is_reference(self):
        assert kb.default_backend() == "reference"
        assert kb.active_backend_name() == "reference"

    def test_env_var_overrides_builtin_default(self, monkeypatch):
        monkeypatch.setenv(kb.ENV_VAR, "fast")
        assert kb.default_backend() == "fast"
        assert isinstance(kb.get_active_backend(), kb.FastBackend)

    def test_unknown_env_var_is_a_readable_error(self, monkeypatch):
        monkeypatch.setenv(kb.ENV_VAR, "warp")
        with pytest.raises(ValueError, match="REPRO_KERNEL_BACKEND"):
            kb.default_backend()

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(kb.ENV_VAR, "fast")
        kb.set_default_backend("reference")
        assert kb.default_backend() == "reference"
        kb.set_default_backend(None)
        assert kb.default_backend() == "fast"

    def test_use_backend_beats_process_default_and_nests(self):
        kb.set_default_backend("reference")
        with kb.use_backend("fast") as outer:
            assert kb.active_backend_name() == "fast"
            assert isinstance(outer, kb.FastBackend)
            with kb.use_backend("reference"):
                assert kb.active_backend_name() == "reference"
            assert kb.active_backend_name() == "fast"
        assert kb.active_backend_name() == "reference"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with kb.use_backend("fast"):
                raise RuntimeError("boom")
        assert kb.active_backend_name() == "reference"

    def test_use_backend_validates_eagerly(self):
        with pytest.raises(ValueError):
            with kb.use_backend("warp"):
                pass  # pragma: no cover

    def test_resolve_backend(self):
        fast = kb.get_backend("fast")
        assert kb.resolve_backend(fast) is fast
        assert kb.resolve_backend("fast") is fast
        with kb.use_backend("fast"):
            assert kb.resolve_backend(None) is fast
        assert isinstance(kb.resolve_backend(None), kb.ReferenceBackend)


class TestCapabilityDispatch:
    def test_active_for_uses_capable_active_backend(self):
        with kb.use_backend("fast"):
            assert kb.active_for("gemm") is kb.get_backend("fast")

    def test_active_for_falls_back_to_reference(self):
        class Partial(kb.ReferenceBackend):
            name = "partial-op-set"

            def capabilities(self):
                return frozenset({"gemm"})

        kb.register_backend("partial-op-set", Partial, replace=True)
        try:
            with kb.use_backend("partial-op-set"):
                assert kb.active_for("gemm").name == "partial-op-set"
                assert kb.active_for("conv2d_batched").name == "reference"
        finally:
            kb._FACTORIES.pop("partial-op-set", None)
            kb._INSTANCES.pop("partial-op-set", None)

    def test_ops_dispatch_through_active_backend(self, rng):
        """A counting backend observes the nn ops actually routing through it."""
        from repro import nn
        from repro.nn.tensor import Tensor

        class Counting(kb.ReferenceBackend):
            name = "counting"
            calls = 0

            def linear_batched_forward(self, x, weight, bias):
                Counting.calls += 1
                return super().linear_batched_forward(x, weight, bias)

        kb.register_backend("counting", Counting, replace=True)
        try:
            x = Tensor(rng.normal(size=(2, 3, 4)))
            weight = Tensor(rng.normal(size=(2, 5, 4)))
            with kb.use_backend("counting"):
                nn.linear_batched(x, weight)
            assert Counting.calls == 1
        finally:
            kb._FACTORIES.pop("counting", None)
            kb._INSTANCES.pop("counting", None)


class TestFastBackendMechanics:
    def test_thread_count_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
        assert kb.FastBackend().parallelism == 3

    def test_pickle_round_trip_preserves_threads(self):
        import pickle

        backend = kb.FastBackend(threads=4)
        clone = pickle.loads(pickle.dumps(backend))
        assert isinstance(clone, kb.FastBackend)
        assert clone.parallelism == 4
        a = np.arange(12.0).reshape(3, 4)
        b = np.arange(8.0).reshape(4, 2)
        np.testing.assert_array_equal(clone.gemm(a, b), a @ b)

    def test_describe_reports_registry_facts(self):
        description = kb.get_backend("fast").describe()
        assert description["name"] == "fast"
        assert description["parallelism"] >= 1
        assert "gemm" in description["capabilities"]

    def test_threaded_results_are_deterministic_and_match_serial(self, rng):
        threaded = kb.FastBackend(threads=4)
        serial = kb.FastBackend(threads=1)
        a = rng.normal(size=(64, 48))
        b = rng.normal(size=(48, 32))
        first = threaded.gemm(a, b)
        np.testing.assert_array_equal(first, threaded.gemm(a, b))
        np.testing.assert_allclose(first, serial.gemm(a, b), rtol=1e-12, atol=1e-13)

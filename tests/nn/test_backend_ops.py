"""Op-database equivalence suite: every registered kernel backend vs reference.

Every op the :mod:`repro.nn.backend` interface exposes is exercised over a
table of (shape x dtype x input layout) cases, and every registered backend
other than ``reference`` is compared against the ``reference`` answer —
forward values *and* every gradient the fused ops produce.  Backends whose
dependency is absent in this environment (e.g. ``compiled`` without numba)
are skipped with the registry's own unavailability message, never silently
dropped from the table.

Tolerances are pinned per dtype: float64 comparisons allow only reassociation
-level error (threaded backends split reductions), float32 proportionally
more.  The ``reference`` backend itself is *not* compared against anything
here — its bit-for-bit agreement with the pre-registry code is what the rest
of the test suite pins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import backend as kb

REFERENCE = kb.get_backend("reference")

#: Pinned per-dtype comparison tolerances of the equivalence suite.
TOLERANCES = {
    "float64": {"rtol": 1e-9, "atol": 1e-12},
    "float32": {"rtol": 1e-4, "atol": 1e-6},
}

DTYPES = ("float64", "float32")


def _backend_params():
    """One pytest param per non-reference registered backend.

    Unavailable backends become skip-marked params so the suite's collected
    table always shows the full registry.
    """
    params = []
    for name in kb.available_backends():
        if name == "reference":
            continue
        marks = ()
        try:
            kb.get_backend(name)
        except kb.BackendUnavailableError as error:
            marks = (pytest.mark.skip(reason=str(error)),)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


BACKENDS = _backend_params()


def _as_layout(array: np.ndarray, layout: str) -> np.ndarray:
    """Materialize an input in the requested memory layout (values unchanged)."""
    if layout == "planar":
        return np.ascontiguousarray(array)
    return np.asfortranarray(array)


def _close(actual, expected, dtype: str) -> None:
    np.testing.assert_allclose(actual, expected, **TOLERANCES[dtype])


def _draw(rng, shape, dtype: str) -> np.ndarray:
    return rng.normal(size=shape).astype(dtype)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return kb.get_backend(request.param)


# ----------------------------------------------------------------------
# Dense products
# ----------------------------------------------------------------------
class TestGemm:
    SHAPES = [(1, 1, 1), (3, 4, 5), (16, 8, 32), (64, 48, 24), (7, 1, 9)]

    @pytest.mark.parametrize("m,k,n", SHAPES)
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("layout", kb.LAYOUTS)
    def test_matches_reference(self, backend, rng, m, k, n, dtype, layout):
        a = _as_layout(_draw(rng, (m, k), dtype), layout)
        b = _as_layout(_draw(rng, (k, n), dtype), layout)
        _close(backend.gemm(a, b), REFERENCE.gemm(a, b), dtype)

    def test_out_buffer_is_used_and_returned(self, backend, rng):
        a, b = rng.normal(size=(6, 4)), rng.normal(size=(4, 5))
        out = np.empty((6, 5))
        result = backend.gemm(a, b, out=out)
        assert result is out
        _close(out, REFERENCE.gemm(a, b), "float64")

    def test_deterministic_across_calls(self, backend, rng):
        """Repeat calls yield identical bits (thread splits are pinned)."""
        a, b = rng.normal(size=(33, 17)), rng.normal(size=(17, 29))
        np.testing.assert_array_equal(backend.gemm(a, b), backend.gemm(a, b))


class TestMatmul:
    @pytest.mark.parametrize(
        "a_shape,b_shape",
        [
            ((4, 5), (5, 3)),  # 2-D degenerates to gemm
            ((3, 4, 5), (3, 5, 2)),  # per-task stacked product
            ((6, 2, 8), (8, 3)),  # broadcast 2-D rhs
            ((2, 3, 4, 5), (2, 3, 5, 1)),  # >3-D falls through to numpy
        ],
    )
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_reference(self, backend, rng, a_shape, b_shape, dtype):
        a = _draw(rng, a_shape, dtype)
        b = _draw(rng, b_shape, dtype)
        _close(backend.matmul(a, b), REFERENCE.matmul(a, b), dtype)

    def test_broadcast_rhs_with_mismatched_leading_dim(self, backend, rng):
        """(1, m, k) @ (T, k, n) broadcasts the lhs — no task-axis split applies."""
        a = rng.normal(size=(1, 4, 6))
        b = rng.normal(size=(5, 6, 3))
        _close(backend.matmul(a, b), REFERENCE.matmul(a, b), "float64")


# ----------------------------------------------------------------------
# Elementwise activations and reductions
# ----------------------------------------------------------------------
class TestElementwise:
    SHAPES = [(1,), (7,), (3, 4), (2, 3, 4, 5), (4, 1024)]

    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid"])
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_reference(self, backend, rng, op, shape, dtype):
        x = _draw(rng, shape, dtype)
        _close(getattr(backend, op)(x), getattr(REFERENCE, op)(x), dtype)

    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid"])
    def test_does_not_mutate_input(self, backend, rng, op):
        x = rng.normal(size=(5, 6))
        before = x.copy()
        getattr(backend, op)(x)
        np.testing.assert_array_equal(x, before)


class TestReductions:
    @pytest.mark.parametrize("op", ["reduce_sum", "reduce_mean"])
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 1)])
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_matches_reference(self, backend, rng, op, axis, dtype):
        x = _draw(rng, (6, 7, 8), dtype)
        _close(
            getattr(backend, op)(x, axis=axis),
            getattr(REFERENCE, op)(x, axis=axis),
            dtype,
        )


# ----------------------------------------------------------------------
# Fused batched ops: forward + every gradient
# ----------------------------------------------------------------------
class TestLinearBatched:
    CASES = [(1, 1, 3, 2), (2, 4, 6, 5), (3, 2, 8, 8), (5, 16, 24, 12)]

    @pytest.mark.parametrize("tasks,batch,features_in,features_out", CASES)
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("layout", kb.LAYOUTS)
    def test_forward_and_gradients(
        self, backend, rng, tasks, batch, features_in, features_out, dtype, layout
    ):
        x = _as_layout(_draw(rng, (tasks, batch, features_in), dtype), layout)
        weight = _as_layout(_draw(rng, (tasks, features_out, features_in), dtype), layout)
        bias = _draw(rng, (tasks, features_out), dtype)
        grad = _draw(rng, (tasks, batch, features_out), dtype)
        needs = (True, True, True)

        out, ctx = backend.linear_batched_forward(x, weight, bias)
        ref_out, ref_ctx = REFERENCE.linear_batched_forward(x, weight, bias)
        _close(out, ref_out, dtype)

        grads = backend.linear_batched_backward(ctx, grad, needs)
        ref_grads = REFERENCE.linear_batched_backward(ref_ctx, grad, needs)
        for got, want in zip(grads, ref_grads):
            _close(got, want, dtype)

    def test_no_bias_and_partial_needs(self, backend, rng):
        x = rng.normal(size=(2, 3, 4))
        weight = rng.normal(size=(2, 5, 4))
        grad = rng.normal(size=(2, 3, 5))
        out, ctx = backend.linear_batched_forward(x, weight, None)
        ref_out, ref_ctx = REFERENCE.linear_batched_forward(x, weight, None)
        _close(out, ref_out, "float64")
        gx, gweight, gbias = backend.linear_batched_backward(ctx, grad, (True, False, False))
        assert gweight is None and gbias is None
        ref_gx, _, _ = REFERENCE.linear_batched_backward(ref_ctx, grad, (True, False, False))
        _close(gx, ref_gx, "float64")


class TestLinearLowRank:
    CASES = [(1, 1, 3, 2, 1), (2, 4, 6, 5, 2), (3, 2, 8, 8, 4), (4, 8, 16, 12, 3)]

    @pytest.mark.parametrize("tasks,batch,features_in,features_out,rank", CASES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_forward_and_gradients(
        self, backend, rng, tasks, batch, features_in, features_out, rank, dtype
    ):
        x = _draw(rng, (tasks, batch, features_in), dtype)
        weight = _draw(rng, (features_out, features_in), dtype)
        a = _draw(rng, (tasks, rank, features_in), dtype)
        b = _draw(rng, (tasks, features_out, rank), dtype)
        bias = _draw(rng, (features_out,), dtype)
        grad = _draw(rng, (tasks, batch, features_out), dtype)
        needs = (True, True, True, True, True)

        out, ctx = backend.linear_lowrank_forward(x, weight, a, b, bias)
        ref_out, ref_ctx = REFERENCE.linear_lowrank_forward(x, weight, a, b, bias)
        _close(out, ref_out, dtype)

        grads = backend.linear_lowrank_backward(ctx, grad, needs)
        ref_grads = REFERENCE.linear_lowrank_backward(ref_ctx, grad, needs)
        for got, want in zip(grads, ref_grads):
            _close(got, want, dtype)


class TestConv2dBatched:
    # (tasks, batch, c_in, h, w, c_out, kernel, stride, padding); the last
    # case satisfies out_channels * 4 <= c_in * kh * kw, steering the fast
    # backend down its blocked-layout (transposed GEMM + reorder) path.
    CASES = [
        (1, 1, 1, 5, 5, 2, 3, 1, 0),
        (2, 2, 3, 6, 6, 4, 3, 1, 1),
        (3, 2, 2, 8, 7, 5, 2, 2, 0),
        (2, 3, 8, 9, 9, 4, 3, 1, 1),
    ]

    @pytest.mark.parametrize("tasks,batch,c_in,h,w,c_out,kernel,stride,padding", CASES)
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_forward_and_gradients(
        self, backend, rng, tasks, batch, c_in, h, w, c_out, kernel, stride, padding, dtype
    ):
        x = _draw(rng, (tasks, batch, c_in, h, w), dtype)
        weight = _draw(rng, (tasks, c_out, c_in, kernel, kernel), dtype)
        bias = _draw(rng, (tasks, c_out), dtype)
        needs = (True, True, True)

        out, ctx = backend.conv2d_batched_forward(x, weight, bias, stride, padding)
        ref_out, ref_ctx = REFERENCE.conv2d_batched_forward(x, weight, bias, stride, padding)
        _close(out, ref_out, dtype)

        grad = _draw(rng, out.shape, dtype)
        grads = backend.conv2d_batched_backward(ctx, grad, needs)
        ref_grads = REFERENCE.conv2d_batched_backward(ref_ctx, grad, needs)
        for got, want in zip(grads, ref_grads):
            _close(got, want, dtype)


class TestConv2dLowRank:
    CASES = [
        (1, 1, 1, 5, 5, 2, 3, 1, 0, 1),
        (2, 2, 3, 6, 6, 4, 3, 1, 1, 2),
        (2, 3, 8, 9, 9, 4, 3, 1, 1, 3),
    ]

    @pytest.mark.parametrize(
        "tasks,batch,c_in,h,w,c_out,kernel,stride,padding,rank", CASES
    )
    @pytest.mark.parametrize("dtype", DTYPES)
    def test_forward_and_gradients(
        self, backend, rng, tasks, batch, c_in, h, w, c_out, kernel, stride, padding, rank, dtype
    ):
        patch = c_in * kernel * kernel
        x = _draw(rng, (tasks, batch, c_in, h, w), dtype)
        weight = _draw(rng, (c_out, c_in, kernel, kernel), dtype)
        a = _draw(rng, (tasks, rank, patch), dtype)
        b = _draw(rng, (tasks, c_out, rank), dtype)
        bias = _draw(rng, (c_out,), dtype)
        needs = (True, True, True, True, True)

        out, ctx = backend.conv2d_lowrank_forward(x, weight, a, b, bias, stride, padding)
        ref_out, ref_ctx = REFERENCE.conv2d_lowrank_forward(
            x, weight, a, b, bias, stride, padding
        )
        _close(out, ref_out, dtype)

        grad = _draw(rng, out.shape, dtype)
        grads = backend.conv2d_lowrank_backward(ctx, grad, needs)
        ref_grads = REFERENCE.conv2d_lowrank_backward(ref_ctx, grad, needs)
        for got, want in zip(grads, ref_grads):
            _close(got, want, dtype)


# ----------------------------------------------------------------------
# Serving hook and workspace semantics
# ----------------------------------------------------------------------
class TestMapBlocks:
    def test_preserves_order_and_values(self, backend):
        blocks = list(range(23))
        assert backend.map_blocks(lambda i: i * i, blocks) == [i * i for i in blocks]

    def test_nested_ops_inside_blocks(self, backend, rng):
        """Blocks that themselves call backend GEMMs must not deadlock."""
        a = rng.normal(size=(8, 6))
        b = rng.normal(size=(6, 4))
        results = backend.map_blocks(lambda _: backend.gemm(a, b), range(4))
        for result in results:
            _close(result, REFERENCE.gemm(a, b), "float64")


class TestWorkspace:
    def test_reference_always_allocates_fresh(self):
        assert REFERENCE.workspace("tag", (3, 3), np.dtype(np.float64)) is None

    def test_workspace_contract(self, backend):
        """A backend either declines (None) or returns a matching buffer."""
        buffer = backend.workspace("op-db", (4, 5), np.dtype(np.float64))
        if buffer is not None:
            assert buffer.shape == (4, 5) and buffer.dtype == np.float64
            again = backend.workspace("op-db", (4, 5), np.dtype(np.float64))
            assert again is buffer, "same tag+shape+dtype must reuse the buffer"


class TestLayoutHelpers:
    def test_layout_of_classifies(self, rng):
        planar = rng.normal(size=(3, 4))
        assert kb.layout_of(planar) == "planar"
        assert kb.layout_of(np.asfortranarray(planar)) == "blocked"
        assert kb.layout_of(np.zeros((6, 6))[::2, ::2]) == "strided"

    def test_to_layout_round_trip(self, rng):
        planar = rng.normal(size=(3, 4))
        blocked = kb.to_layout(planar, "blocked")
        assert blocked.flags["F_CONTIGUOUS"]
        np.testing.assert_array_equal(blocked, planar)
        back = kb.to_layout(blocked, "planar")
        assert back.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(back, planar)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            kb.layout_of(np.zeros(3))
        with pytest.raises(ValueError):
            kb.to_layout(np.zeros((2, 2)), "tiled")

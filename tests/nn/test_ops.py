"""Tests for convolution and pooling primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.grad_check import check_gradients
from repro.nn.ops import col2im, conv_output_shape, im2col
from repro.nn.tensor import Tensor


class TestConvOutputShape:
    def test_basic(self):
        assert conv_output_shape(8, 8, 3, 1, 1) == (8, 8)

    def test_stride(self):
        assert conv_output_shape(8, 8, 2, 2, 0) == (4, 4)

    def test_rectangular(self):
        assert conv_output_shape(10, 6, (3, 5), (1, 1), (0, 0)) == (8, 2)

    def test_raises_on_empty_output(self):
        with pytest.raises(ValueError):
            conv_output_shape(2, 2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 1, 1)
        assert cols.shape == (2, 6, 6, 3 * 9)

    def test_known_values_identity_kernel(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = im2col(x, 1, 1, 0)
        np.testing.assert_allclose(cols.reshape(4, 4), x[0, 0])

    def test_col2im_adjointness(self, rng):
        """col2im must be the adjoint (transpose) of im2col."""
        x = rng.normal(size=(1, 2, 5, 5))
        cols = im2col(x, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = np.sum(cols * y)
        rhs = np.sum(x * col2im(y, x.shape, 3, 1, 1))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_conv_via_im2col_matches_direct_computation(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        weight = rng.normal(size=(1, 1, 3, 3))
        out = nn.conv2d(Tensor(x), Tensor(weight), stride=1, padding=0).numpy()
        # Direct correlation for the single output position (1, 1).
        expected_00 = np.sum(x[0, 0, 0:3, 0:3] * weight[0, 0])
        assert out[0, 0, 0, 0] == pytest.approx(expected_00)


class TestConv2d:
    def test_output_shape_with_padding(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 8, 8)))
        w = Tensor(rng.normal(size=(16, 5, 3, 3)))
        out = nn.conv2d(x, w, padding=1)
        assert out.shape == (2, 16, 8, 8)

    def test_output_shape_with_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 2, 2)))
        out = nn.conv2d(x, w, stride=2)
        assert out.shape == (1, 4, 4, 4)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 1, 3, 3)))
        w = Tensor(np.zeros((2, 1, 3, 3)))
        b = Tensor(np.array([1.5, -2.0]))
        out = nn.conv2d(x, w, b, padding=1).numpy()
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def f(inputs):
            xx, ww, bb = inputs
            return (nn.conv2d(xx, ww, bb, stride=1, padding=1) ** 2).sum()

        check_gradients(f, [x, w, b], tolerance=1e-4)

    def test_gradients_with_stride_no_padding(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 1, 2, 2)), requires_grad=True)

        def f(inputs):
            return nn.conv2d(inputs[0], inputs[1], stride=2).sum()

        check_gradients(f, [x, w], tolerance=1e-4)

    def test_rejects_wrong_input_rank(self, rng):
        with pytest.raises(ValueError):
            nn.conv2d(Tensor(rng.normal(size=(3, 4, 4))), Tensor(rng.normal(size=(1, 3, 3, 3))))

    def test_rejects_channel_mismatch(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        w = Tensor(rng.normal(size=(1, 3, 3, 3)))
        with pytest.raises(ValueError):
            nn.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = nn.max_pool2d(x, 2)
        assert out.numpy().item() == 4.0

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        nn.max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[0.0, 0.0], [0.0, 1.0]]]])

    def test_max_pool_finite_difference(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda inp: nn.max_pool2d(inp[0], 2).sum(), [x], tolerance=1e-4)

    def test_avg_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        assert nn.avg_pool2d(x, 2).numpy().item() == pytest.approx(2.5)

    def test_avg_pool_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        check_gradients(lambda inp: (nn.avg_pool2d(inp[0], 2) ** 2).sum(), [x], tolerance=1e-4)

    def test_pool_default_stride_equals_kernel(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 6)))
        assert nn.max_pool2d(x, 3).shape == (1, 1, 2, 2)
        assert nn.max_pool2d(x, 3, stride=1).shape == (1, 1, 4, 4)

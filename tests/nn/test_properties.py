"""Property-based tests (hypothesis) for the autograd core.

These check structural invariants of the differentiation engine — linearity
of gradients, correctness under broadcasting, invariance of values to graph
construction — over randomly generated shapes and values.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro import nn
from repro.nn.grad_check import max_relative_error, numerical_gradient
from repro.nn.tensor import Tensor

_FLOATS = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims: int = 2, max_side: int = 4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=_FLOATS,
    )


class TestValueSemantics:
    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_addition_is_commutative(self, data):
        a = Tensor(data)
        b = Tensor(data * 0.5 + 1.0)
        np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_relu_is_idempotent(self, data):
        x = Tensor(data)
        once = x.relu().numpy()
        twice = x.relu().relu().numpy()
        np.testing.assert_allclose(once, twice)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, data):
        np.testing.assert_allclose(Tensor(data).sum().item(), data.sum(), atol=1e-9)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_are_distributions(self, data):
        if data.ndim == 1:
            data = data.reshape(1, -1)
        probs = nn.softmax(Tensor(data)).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probs >= 0.0)


class TestGradientSemantics:
    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_gradient_of_sum_is_ones(self, data):
        x = Tensor(data, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(data))

    @given(small_arrays(), st.floats(min_value=-2.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_gradient_is_linear_in_scalar_factor(self, data, factor):
        x1 = Tensor(data, requires_grad=True)
        (x1 * factor).sum().backward()
        x2 = Tensor(data, requires_grad=True)
        x2.sum().backward()
        np.testing.assert_allclose(x1.grad, factor * x2.grad, atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
            # Keep values away from zero: central differences of x^2 lose all
            # significant digits there and the comparison becomes meaningless.
            elements=st.floats(min_value=0.05, max_value=3.0),
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_elementwise_square_gradient_matches_finite_difference(self, data):
        x = Tensor(data, requires_grad=True)

        def f(inputs):
            return (inputs[0] * inputs[0]).sum()

        f([x]).backward()
        numeric = numerical_gradient(f, [x], 0)
        assert max_relative_error(x.grad, numeric) < 1e-4

    @given(
        arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=3), elements=_FLOATS),
        arrays(np.float64, array_shapes(min_dims=1, max_dims=1, min_side=1, max_side=3), elements=_FLOATS),
    )
    @settings(max_examples=25, deadline=None)
    def test_broadcast_add_gradient_sums_over_batch(self, matrix, row):
        if matrix.shape[1] != row.shape[0]:
            row = np.resize(row, matrix.shape[1])
        m = Tensor(matrix, requires_grad=True)
        r = Tensor(row, requires_grad=True)
        (m + r).sum().backward()
        np.testing.assert_allclose(m.grad, np.ones_like(matrix))
        np.testing.assert_allclose(r.grad, np.full_like(row, matrix.shape[0]))


class TestLossProperties:
    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_l1_loss_is_non_negative_and_zero_on_identity(self, data):
        t = Tensor(data)
        assert nn.l1_loss(t, Tensor(data.copy())).item() == 0.0
        shifted = Tensor(data + 1.0)
        assert nn.l1_loss(shifted, t).item() >= 0.0

    @given(small_arrays(), st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=25, deadline=None)
    def test_l1_loss_equals_constant_offset(self, data, offset):
        base = Tensor(data)
        loss = nn.l1_loss(Tensor(data + offset), base).item()
        np.testing.assert_allclose(loss, offset, atol=1e-9)

    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_mse_at_least_squared_l1_over_n(self, data):
        # By Jensen's inequality mean(r^2) >= mean(|r|)^2.
        target = Tensor(np.zeros_like(data))
        pred = Tensor(data)
        l1 = nn.l1_loss(pred, target).item()
        l2 = nn.mse_loss(pred, target).item()
        assert l2 >= l1**2 - 1e-9

"""Tests for model checkpoint serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def build_model():
    rng = np.random.default_rng(3)
    return nn.Sequential(nn.Linear(6, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng))


class TestSaveLoadState:
    def test_roundtrip(self, tmp_path):
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.ones(4)}
        path = nn.save_state(state, tmp_path / "ckpt.npz")
        loaded, metadata = nn.load_state(path)
        assert metadata is None
        np.testing.assert_allclose(loaded["a"], state["a"])
        np.testing.assert_allclose(loaded["b"], state["b"])

    def test_metadata_roundtrip(self, tmp_path):
        path = nn.save_state({"x": np.zeros(2)}, tmp_path / "ckpt.npz", metadata={"epoch": 7, "tag": "fuse"})
        _, metadata = nn.load_state(path)
        assert metadata == {"epoch": 7, "tag": "fuse"}

    def test_extension_added_when_missing(self, tmp_path):
        path = nn.save_state({"x": np.zeros(1)}, tmp_path / "weights")
        assert path.suffix == ".npz"
        loaded, _ = nn.load_state(tmp_path / "weights")
        assert "x" in loaded

    def test_creates_parent_directories(self, tmp_path):
        path = nn.save_state({"x": np.zeros(1)}, tmp_path / "nested" / "dir" / "ckpt.npz")
        assert path.exists()


class TestSaveLoadModel:
    def test_model_roundtrip_preserves_outputs(self, tmp_path):
        model = build_model()
        x = Tensor(np.random.default_rng(0).normal(size=(5, 6)))
        expected = model(x).numpy()

        path = nn.save_model(model, tmp_path / "model.npz", metadata={"kind": "test"})
        fresh = build_model()
        # Perturb so the test would fail if loading did nothing.
        for param in fresh.parameters():
            param.data = param.data + 1.0
        metadata = nn.load_model_into(fresh, path)
        assert metadata == {"kind": "test"}
        np.testing.assert_allclose(fresh(x).numpy(), expected)

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        model = build_model()
        path = nn.save_model(model, tmp_path / "model.npz")
        other = nn.Sequential(nn.Linear(6, 5, rng=np.random.default_rng(1)))
        with pytest.raises((KeyError, ValueError)):
            nn.load_model_into(other, path)

"""Tests for parameter initialization schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init as initializers


@pytest.fixture
def gen():
    return np.random.default_rng(42)


class TestFanCalculation:
    def test_linear_weight(self):
        fan_in, fan_out = initializers.calculate_fan((64, 128))
        assert fan_in == 128
        assert fan_out == 64

    def test_conv_weight_includes_receptive_field(self):
        fan_in, fan_out = initializers.calculate_fan((16, 5, 3, 3))
        assert fan_in == 5 * 9
        assert fan_out == 16 * 9

    def test_rejects_vectors(self):
        with pytest.raises(ValueError):
            initializers.calculate_fan((10,))


class TestDistributions:
    def test_xavier_uniform_bounds(self, gen):
        weights = initializers.xavier_uniform((50, 80), gen)
        limit = np.sqrt(6.0 / (80 + 50))
        assert weights.shape == (50, 80)
        assert np.all(np.abs(weights) <= limit)

    def test_kaiming_uniform_bounds(self, gen):
        weights = initializers.kaiming_uniform((64, 32), gen)
        limit = np.sqrt(6.0 / 32)
        assert np.all(np.abs(weights) <= limit)
        # Should actually use a good part of the range.
        assert np.abs(weights).max() > 0.5 * limit

    def test_kaiming_normal_std(self, gen):
        weights = initializers.kaiming_normal((2000, 100), gen)
        expected_std = np.sqrt(2.0 / 100)
        assert weights.std() == pytest.approx(expected_std, rel=0.05)

    def test_zeros(self):
        np.testing.assert_allclose(initializers.zeros((3, 4)), 0.0)

    def test_uniform_range(self, gen):
        values = initializers.uniform((1000,), gen, low=-0.2, high=0.4)
        assert values.min() >= -0.2
        assert values.max() < 0.4

    def test_reproducible_given_seed(self):
        a = initializers.kaiming_uniform((8, 8), np.random.default_rng(1))
        b = initializers.kaiming_uniform((8, 8), np.random.default_rng(1))
        np.testing.assert_allclose(a, b)

    def test_scaling_shrinks_with_fan_in(self, gen):
        wide = initializers.kaiming_uniform((10, 2048), gen)
        narrow = initializers.kaiming_uniform((10, 8), np.random.default_rng(42))
        assert np.abs(wide).max() < np.abs(narrow).max()

"""Tests for the autograd Tensor: forward values and backward correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.grad_check import check_gradients
from repro.nn.tensor import Tensor, _unbroadcast


def _t(data, requires_grad=True):
    return Tensor(np.asarray(data, dtype=float), requires_grad=requires_grad)


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_construction_from_tensor_shares_data(self):
        base = Tensor([1.0, 2.0])
        other = Tensor(base)
        assert np.array_equal(other.data, base.data)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_detach_breaks_graph(self):
        x = _t([1.0, 2.0])
        y = (x * 2).detach()
        assert not y.requires_grad
        assert y._parents == ()

    def test_copy_is_independent(self):
        x = _t([1.0, 2.0])
        y = x.copy()
        y.data[0] = 99.0
        assert x.data[0] == 1.0

    def test_zero_grad_clears_gradient(self):
        x = _t([1.0, 2.0])
        (x * 3).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_backward_requires_scalar_without_grad_argument(self):
        x = _t([[1.0, 2.0]])
        y = x * 2
        with pytest.raises(ValueError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = _t([1.0, 2.0, 3.0])
        y = x * 2
        y.backward(np.array([1.0, 1.0, 1.0]))
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])


class TestGradientAccumulation:
    def test_gradient_accumulates_over_multiple_uses(self):
        x = _t([2.0])
        y = x * 3 + x * 4  # dy/dx = 7
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = _t([1.5])
        a = x * 2
        b = x * 3
        y = (a * b).sum()  # y = 6 x^2, dy/dx = 12 x
        y.backward()
        np.testing.assert_allclose(x.grad, [12 * 1.5])

    def test_two_backward_calls_accumulate(self):
        x = _t([1.0])
        y = (x * 5).sum()
        y.backward()
        y2 = (x * 5).sum()
        y2.backward()
        np.testing.assert_allclose(x.grad, [10.0])

    def test_deep_chain_does_not_hit_recursion_limit(self):
        x = _t([1.0])
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = _t([1.0])
        with nn.no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_nested_no_grad(self):
        with nn.no_grad():
            with nn.no_grad():
                pass
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()


class TestUnbroadcast:
    def test_same_shape_passthrough(self):
        grad = np.ones((2, 3))
        assert _unbroadcast(grad, (2, 3)).shape == (2, 3)

    def test_sums_leading_dimensions(self):
        grad = np.ones((4, 2, 3))
        out = _unbroadcast(grad, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        grad = np.ones((2, 3))
        out = _unbroadcast(grad, (1, 3))
        np.testing.assert_allclose(out, np.full((1, 3), 2.0))


class TestArithmeticGradients:
    """Finite-difference checks for every elementwise operation."""

    def test_add(self, rng):
        a = _t(rng.normal(size=(3, 4)))
        b = _t(rng.normal(size=(3, 4)))
        check_gradients(lambda inp: (inp[0] + inp[1]).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a = _t(rng.normal(size=(3, 4)))
        b = _t(rng.normal(size=(4,)))
        check_gradients(lambda inp: (inp[0] + inp[1]).sum(), [a, b])

    def test_radd_with_scalar(self):
        x = _t([1.0, 2.0])
        y = (5.0 + x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_sub(self, rng):
        a = _t(rng.normal(size=(2, 3)))
        b = _t(rng.normal(size=(2, 3)))
        check_gradients(lambda inp: (inp[0] - inp[1]).sum(), [a, b])

    def test_rsub(self):
        x = _t([2.0])
        y = (10.0 - x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [-1.0])

    def test_mul(self, rng):
        a = _t(rng.normal(size=(3, 2)))
        b = _t(rng.normal(size=(3, 2)))
        check_gradients(lambda inp: (inp[0] * inp[1]).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a = _t(rng.normal(size=(3, 2)))
        b = _t(rng.normal(size=(1, 2)))
        check_gradients(lambda inp: (inp[0] * inp[1]).sum(), [a, b])

    def test_div(self, rng):
        a = _t(rng.normal(size=(2, 2)))
        b = _t(rng.uniform(1.0, 2.0, size=(2, 2)))
        check_gradients(lambda inp: (inp[0] / inp[1]).sum(), [a, b])

    def test_rtruediv(self):
        x = _t([2.0])
        y = (4.0 / x).sum()  # d/dx 4/x = -4/x^2 = -1
        y.backward()
        np.testing.assert_allclose(x.grad, [-1.0])

    def test_neg(self, rng):
        a = _t(rng.normal(size=(5,)))
        check_gradients(lambda inp: (-inp[0]).sum(), [a])

    def test_pow(self, rng):
        a = _t(rng.uniform(0.5, 2.0, size=(4,)))
        check_gradients(lambda inp: (inp[0] ** 3).sum(), [a])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            _t([1.0]) ** _t([2.0])  # type: ignore[operator]

    def test_sqrt(self, rng):
        a = _t(rng.uniform(0.5, 2.0, size=(4,)))
        check_gradients(lambda inp: inp[0].sqrt().sum(), [a])


class TestMatmulGradients:
    def test_matrix_matrix(self, rng):
        a = _t(rng.normal(size=(3, 4)))
        b = _t(rng.normal(size=(4, 2)))
        check_gradients(lambda inp: inp[0].matmul(inp[1]).sum(), [a, b])

    def test_vector_vector(self, rng):
        a = _t(rng.normal(size=(5,)))
        b = _t(rng.normal(size=(5,)))
        check_gradients(lambda inp: inp[0].matmul(inp[1]).sum(), [a, b])

    def test_matrix_vector(self, rng):
        a = _t(rng.normal(size=(3, 4)))
        b = _t(rng.normal(size=(4,)))
        check_gradients(lambda inp: inp[0].matmul(inp[1]).sum(), [a, b])

    def test_vector_matrix(self, rng):
        a = _t(rng.normal(size=(3,)))
        b = _t(rng.normal(size=(3, 2)))
        check_gradients(lambda inp: inp[0].matmul(inp[1]).sum(), [a, b])

    def test_operator_form(self, rng):
        a = _t(rng.normal(size=(2, 3)))
        b = _t(rng.normal(size=(3, 2)))
        value = (a @ b).sum()
        expected = (a.data @ b.data).sum()
        assert value.item() == pytest.approx(expected)


class TestShapeOps:
    def test_reshape_gradient(self, rng):
        a = _t(rng.normal(size=(2, 6)))
        check_gradients(lambda inp: (inp[0].reshape(3, 4) * 2).sum(), [a])

    def test_reshape_accepts_tuple(self):
        a = _t(np.arange(6.0))
        assert a.reshape((2, 3)).shape == (2, 3)

    def test_flatten(self, rng):
        a = _t(rng.normal(size=(2, 3, 4)))
        flat = a.flatten(start_dim=1)
        assert flat.shape == (2, 12)
        check_gradients(lambda inp: inp[0].flatten(start_dim=1).sum(), [a])

    def test_transpose_default(self, rng):
        a = _t(rng.normal(size=(2, 5)))
        assert a.T.shape == (5, 2)
        check_gradients(lambda inp: (inp[0].T * 3).sum(), [a])

    def test_transpose_axes(self, rng):
        a = _t(rng.normal(size=(2, 3, 4)))
        out = a.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        check_gradients(lambda inp: (inp[0].transpose(2, 0, 1) * 2).sum(), [a])

    def test_getitem_gradient(self, rng):
        a = _t(rng.normal(size=(4, 3)))
        check_gradients(lambda inp: inp[0][1:3].sum(), [a])

    def test_getitem_with_fancy_indexing_accumulates(self):
        a = _t(np.ones((3,)))
        picked = a[np.array([0, 0, 2])]
        picked.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])

    def test_pad_gradient(self, rng):
        a = _t(rng.normal(size=(2, 3)))
        out = a.pad(((1, 1), (0, 2)))
        assert out.shape == (4, 5)
        check_gradients(lambda inp: inp[0].pad(((1, 1), (0, 2))).sum(), [a])


class TestReductions:
    def test_sum_all(self, rng):
        a = _t(rng.normal(size=(3, 4)))
        check_gradients(lambda inp: inp[0].sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        a = _t(rng.normal(size=(3, 4)))
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        check_gradients(lambda inp: (inp[0].sum(axis=1, keepdims=True) * 2).sum(), [a])

    def test_sum_multiple_axes(self, rng):
        a = _t(rng.normal(size=(2, 3, 4)))
        check_gradients(lambda inp: (inp[0].sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_mean_value(self):
        a = Tensor(np.array([[1.0, 3.0], [5.0, 7.0]]))
        assert a.mean().item() == pytest.approx(4.0)

    def test_mean_gradient(self, rng):
        a = _t(rng.normal(size=(4, 5)))
        check_gradients(lambda inp: (inp[0].mean(axis=0) ** 2).sum(), [a])

    def test_var_matches_numpy(self, rng):
        data = rng.normal(size=(6, 3))
        a = Tensor(data)
        np.testing.assert_allclose(a.var(axis=0).numpy(), data.var(axis=0), atol=1e-12)

    def test_max_value_and_gradient(self):
        a = _t([[1.0, 5.0], [3.0, 2.0]])
        out = a.max()
        assert out.item() == 5.0
        out.backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [0.0, 0.0]])

    def test_max_axis(self, rng):
        data = rng.normal(size=(3, 4))
        a = Tensor(data)
        np.testing.assert_allclose(a.max(axis=1).numpy(), data.max(axis=1))

    def test_min_is_negated_max(self):
        a = Tensor([[4.0, -2.0, 7.0]])
        assert a.min().item() == pytest.approx(-2.0)


class TestNonlinearities:
    def test_relu_forward_and_grad(self):
        a = _t([-1.0, 0.5, 2.0])
        out = a.relu()
        np.testing.assert_allclose(out.numpy(), [0.0, 0.5, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0])

    def test_exp(self, rng):
        a = _t(rng.normal(size=(3,)))
        check_gradients(lambda inp: inp[0].exp().sum(), [a])

    def test_log(self, rng):
        a = _t(rng.uniform(0.5, 3.0, size=(3,)))
        check_gradients(lambda inp: inp[0].log().sum(), [a])

    def test_abs(self, rng):
        a = _t(rng.normal(size=(4,)) + 0.5)  # keep away from the kink
        check_gradients(lambda inp: inp[0].abs().sum(), [a])

    def test_tanh(self, rng):
        a = _t(rng.normal(size=(4,)))
        check_gradients(lambda inp: inp[0].tanh().sum(), [a])

    def test_sigmoid_range(self, rng):
        a = Tensor(rng.normal(size=(100,)) * 5)
        out = a.sigmoid().numpy()
        assert np.all(out > 0) and np.all(out < 1)

    def test_sigmoid_gradient(self, rng):
        a = _t(rng.normal(size=(4,)))
        check_gradients(lambda inp: inp[0].sigmoid().sum(), [a])

    def test_clip_gradient_masks_out_of_range(self):
        a = _t([-2.0, 0.5, 3.0])
        out = a.clip(0.0, 1.0)
        np.testing.assert_allclose(out.numpy(), [0.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestCombinators:
    def test_concatenate_values(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((1, 2)))
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (3, 2)

    def test_concatenate_gradient(self, rng):
        a = _t(rng.normal(size=(2, 3)))
        b = _t(rng.normal(size=(4, 3)))
        check_gradients(lambda inp: (Tensor.concatenate([inp[0], inp[1]], axis=0) ** 2).sum(), [a, b])

    def test_stack_gradient(self, rng):
        a = _t(rng.normal(size=(2, 3)))
        b = _t(rng.normal(size=(2, 3)))
        check_gradients(lambda inp: (Tensor.stack([inp[0], inp[1]], axis=0) * 2).sum(), [a, b])

    def test_stack_shape(self):
        a = Tensor(np.zeros((4,)))
        b = Tensor(np.ones((4,)))
        assert Tensor.stack([a, b], axis=1).shape == (4, 2)

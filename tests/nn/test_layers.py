"""Tests for Module, layers and parameter management."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.grad_check import check_gradients
from repro.nn.tensor import Tensor


def make_rng():
    return np.random.default_rng(7)


class TestModuleRegistration:
    def test_parameters_discovered_recursively(self):
        model = nn.Sequential(nn.Linear(4, 8, rng=make_rng()), nn.ReLU(), nn.Linear(8, 2, rng=make_rng()))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer0.bias" in names
        assert "layer2.weight" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        layer = nn.Linear(10, 5, rng=make_rng())
        assert layer.num_parameters() == 10 * 5 + 5

    def test_zero_grad_clears_all(self):
        model = nn.Linear(3, 2, rng=make_rng())
        out = model(Tensor(np.ones((4, 3))))
        out.sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None
        assert model.bias.grad is None

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=make_rng()), nn.Dropout(0.5))
        model.eval()
        assert not model.training
        assert not model[1].training
        model.train()
        assert model[1].training

    def test_modules_iterator(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=make_rng()), nn.ReLU())
        assert len(list(model.modules())) == 3  # Sequential + 2 children

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            nn.Module().forward(Tensor([1.0]))


class TestStateDict:
    def test_roundtrip_restores_values(self):
        model = nn.Sequential(nn.Linear(4, 3, rng=make_rng()), nn.ReLU(), nn.Linear(3, 2, rng=make_rng()))
        state = model.state_dict()
        for param in model.parameters():
            param.data = param.data + 1.0
        model.load_state_dict(state)
        x = Tensor(np.ones((1, 4)))
        refreshed = model(x).numpy()
        model.load_state_dict(state)
        np.testing.assert_allclose(model(x).numpy(), refreshed)

    def test_state_dict_is_a_copy(self):
        model = nn.Linear(2, 2, rng=make_rng())
        state = model.state_dict()
        model.weight.data[:] = 0.0
        assert not np.allclose(state["weight"], 0.0)

    def test_missing_key_raises(self):
        model = nn.Linear(2, 2, rng=make_rng())
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 2))})

    def test_shape_mismatch_raises(self):
        model = nn.Linear(2, 2, rng=make_rng())
        bad = model.state_dict()
        bad["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(bad)

    def test_buffers_round_trip(self):
        bn = nn.BatchNorm2d(3)
        bn(Tensor(np.random.default_rng(0).normal(size=(4, 3, 2, 2))))
        state = bn.state_dict()
        assert "running_mean__buffer" in state
        fresh = nn.BatchNorm2d(3)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, bn.running_mean)

    def test_clone_is_independent(self):
        model = nn.Linear(3, 3, rng=make_rng())
        clone = model.clone()
        clone.weight.data[:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)


class TestLinear:
    def test_forward_matches_manual(self):
        layer = nn.Linear(3, 2, rng=make_rng())
        x = np.random.default_rng(1).normal(size=(5, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False, rng=make_rng())
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_gradients(self):
        layer = nn.Linear(4, 3, rng=make_rng())
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4)), requires_grad=True)

        def f(inputs):
            return (layer(inputs[0]) ** 2).sum()

        check_gradients(f, [x, layer.weight, layer.bias], tolerance=1e-4)

    def test_input_feature_mismatch_raises(self):
        layer = nn.Linear(4, 2, rng=make_rng())
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((2, 5))))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 2)


class TestConv2dLayer:
    def test_forward_shape(self):
        layer = nn.Conv2d(5, 16, 3, padding=1, rng=make_rng())
        out = layer(Tensor(np.zeros((2, 5, 8, 8))))
        assert out.shape == (2, 16, 8, 8)

    def test_parameter_count(self):
        layer = nn.Conv2d(5, 16, 3, rng=make_rng())
        assert layer.num_parameters() == 16 * 5 * 9 + 16

    def test_invalid_channels_raise(self):
        with pytest.raises(ValueError):
            nn.Conv2d(0, 4, 3)

    def test_repr_mentions_geometry(self):
        text = repr(nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=make_rng()))
        assert "stride=2" in text


class TestActivationsAndFlatten:
    def test_relu_layer(self):
        assert np.all(nn.ReLU()(Tensor([-1.0, 2.0])).numpy() == [0.0, 2.0])

    def test_tanh_layer(self):
        np.testing.assert_allclose(nn.Tanh()(Tensor([0.0])).numpy(), [0.0])

    def test_sigmoid_layer(self):
        np.testing.assert_allclose(nn.Sigmoid()(Tensor([0.0])).numpy(), [0.5])

    def test_flatten_layer(self):
        out = nn.Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)


class TestDropout:
    def test_identity_in_eval_mode(self):
        layer = nn.Dropout(0.9, rng=make_rng())
        layer.eval()
        x = np.random.default_rng(3).normal(size=(10, 10))
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), x)

    def test_scales_surviving_activations(self):
        layer = nn.Dropout(0.5, rng=make_rng())
        x = np.ones((2000,))
        out = layer(Tensor(x)).numpy()
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        # Expectation preserved approximately.
        assert abs(out.mean() - 1.0) < 0.1

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_in_training_mode(self):
        bn = nn.BatchNorm2d(4)
        x = np.random.default_rng(5).normal(loc=3.0, scale=2.0, size=(8, 4, 6, 6))
        out = bn(Tensor(x)).numpy()
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 1e-2

    def test_running_stats_updated(self):
        bn = nn.BatchNorm2d(2)
        x = np.random.default_rng(6).normal(loc=5.0, size=(4, 2, 3, 3))
        bn(Tensor(x))
        assert np.all(bn.running_mean > 0)

    def test_eval_mode_uses_running_stats(self):
        bn = nn.BatchNorm2d(2)
        rng = np.random.default_rng(7)
        for _ in range(20):
            bn(Tensor(rng.normal(loc=2.0, size=(16, 2, 4, 4))))
        bn.eval()
        out = bn(Tensor(np.full((1, 2, 4, 4), 2.0))).numpy()
        assert np.all(np.abs(out) < 0.5)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(np.zeros((2, 4, 3, 3))))


class TestPoolingLayers:
    def test_max_pool_layer(self):
        out = nn.MaxPool2d(2)(Tensor(np.zeros((1, 2, 4, 4))))
        assert out.shape == (1, 2, 2, 2)

    def test_avg_pool_layer(self):
        out = nn.AvgPool2d(2)(Tensor(np.ones((1, 2, 4, 4))))
        np.testing.assert_allclose(out.numpy(), 1.0)


class TestSequential:
    def test_runs_layers_in_order(self):
        model = nn.Sequential(nn.Linear(2, 3, rng=make_rng()), nn.ReLU(), nn.Linear(3, 1, rng=make_rng()))
        out = model(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)

    def test_indexing_and_len(self):
        model = nn.Sequential(nn.ReLU(), nn.Flatten())
        assert len(model) == 2
        assert isinstance(model[0], nn.ReLU)

    def test_append(self):
        model = nn.Sequential(nn.ReLU())
        model.append(nn.Flatten())
        assert len(model) == 2

    def test_accepts_numpy_input(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=make_rng()))
        out = model(np.ones((1, 2)))
        assert isinstance(out, Tensor)

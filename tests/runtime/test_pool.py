"""Tests of the runtime fan-out primitives (shard layout, pools, hashing)."""

from __future__ import annotations

import os
from functools import partial

import pytest

from repro.runtime import (
    ExecutionPlan,
    map_shards,
    merge_shards,
    shard_for,
    shard_items,
)


def _square_shard(items):
    """Module-level so it crosses the process pool's pickle boundary."""
    return [item * item for item in items]


def _shard_pid(items):
    return [os.getpid() for _ in items]


class TestShardItems:
    def test_even_split(self):
        assert shard_items([1, 2, 3, 4], num_shards=2) == [[1, 2], [3, 4]]

    def test_uneven_split_differs_by_at_most_one(self):
        shards = shard_items(list(range(10)), num_shards=4)
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert merge_shards(shards) == list(range(10))

    def test_more_shards_than_items_produces_no_empties(self):
        shards = shard_items([1, 2], num_shards=8)
        assert shards == [[1], [2]]

    def test_by_shard_size(self):
        assert shard_items(list(range(5)), shard_size=2) == [[0, 1], [2, 3], [4]]

    def test_empty_items(self):
        assert shard_items([], num_shards=3) == []

    def test_exactly_one_layout_argument(self):
        with pytest.raises(ValueError):
            shard_items([1], num_shards=1, shard_size=1)
        with pytest.raises(ValueError):
            shard_items([1])


class TestMapShards:
    def test_serial_path(self):
        results = map_shards(_square_shard, [1, 2, 3], workers=1)
        assert merge_shards(results) == [1, 4, 9]

    def test_pooled_results_preserve_order(self):
        items = list(range(37))
        results = map_shards(_square_shard, items, workers=3)
        assert merge_shards(results) == [i * i for i in items]

    def test_pooled_equals_serial(self):
        items = list(range(20))
        serial = merge_shards(map_shards(_square_shard, items, workers=1))
        pooled = merge_shards(map_shards(_square_shard, items, workers=4))
        assert serial == pooled

    def test_work_actually_leaves_the_process(self):
        pids = set(merge_shards(map_shards(_shard_pid, list(range(8)), workers=2)))
        assert os.getpid() not in pids

    def test_partial_is_picklable(self):
        fn = partial(_square_shard)
        results = map_shards(fn, [2, 3], workers=2)
        assert merge_shards(results) == [4, 9]

    def test_plan_supplies_workers_and_shard_size(self):
        plan = ExecutionPlan(workers=1, shard_size=2)
        results = map_shards(_square_shard, [1, 2, 3, 4, 5], plan)
        assert [len(s) for s in results] == [2, 2, 1]

    def test_empty_items(self):
        assert map_shards(_square_shard, [], workers=4) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            map_shards(_square_shard, [1], workers=0)


class TestShardFor:
    def test_stable_and_in_range(self):
        for key in ("alice", "user-042", 7, ("a", 1)):
            index = shard_for(key, 4)
            assert 0 <= index < 4
            assert shard_for(key, 4) == index  # deterministic

    def test_distributes_users(self):
        assignments = {shard_for(f"user-{i:03d}", 4) for i in range(64)}
        assert assignments == {0, 1, 2, 3}

    def test_single_shard(self):
        assert shard_for("anyone", 1) == 0

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_for("x", 0)

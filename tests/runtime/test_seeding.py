"""Tests of deterministic per-work-item / per-shard seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import rng_for_key, seed_for_key, spawn_shard_seeds


class TestSeedForKey:
    def test_deterministic(self):
        assert seed_for_key(2022, 1, "squat", 0) == seed_for_key(2022, 1, "squat", 0)

    def test_distinct_keys_distinct_seeds(self):
        seeds = {
            seed_for_key(2022, subject, movement, session)
            for subject in (1, 2)
            for movement in ("squat", "walk")
            for session in (0, 1)
        }
        assert len(seeds) == 8

    def test_matches_the_historical_crc_scheme(self):
        """The synthetic dataset's session seeds predate the runtime layer;
        the helper must reproduce them exactly so datasets stay bitwise
        stable across the refactor."""
        import zlib

        key = "2022/1/squat/0".encode()
        assert seed_for_key(2022, 1, "squat", 0) == zlib.crc32(key)

    def test_requires_at_least_one_part(self):
        with pytest.raises(ValueError):
            seed_for_key()


class TestRngForKey:
    def test_same_key_same_stream(self):
        a = rng_for_key(7, "x").normal(size=8)
        b = rng_for_key(7, "x").normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_matches_plain_default_rng(self):
        """``default_rng(SeedSequence(n))`` and ``default_rng(n)`` are the
        same generator — the property that kept the dataset bitwise stable
        when seeding moved into the runtime layer."""
        seed = seed_for_key(5, "y")
        np.testing.assert_array_equal(
            rng_for_key(5, "y").integers(0, 1000, 16),
            np.random.default_rng(seed).integers(0, 1000, 16),
        )


class TestSpawnShardSeeds:
    def test_counts_and_independence(self):
        seeds = spawn_shard_seeds(123, 4)
        assert len(seeds) == 4
        draws = [np.random.default_rng(s).normal(size=4) for s in seeds]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_prefix_stability(self):
        """Shard i's seed does not depend on how many shards are spawned."""
        few = spawn_shard_seeds(123, 2)
        many = spawn_shard_seeds(123, 6)
        for a, b in zip(few, many):
            np.testing.assert_array_equal(
                np.random.default_rng(a).integers(0, 10**9, 4),
                np.random.default_rng(b).integers(0, 10**9, 4),
            )

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_shard_seeds(1, 0)

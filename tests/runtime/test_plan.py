"""Validation tests of :class:`repro.runtime.ExecutionPlan` and the façade."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import BatchPlan
from repro.runtime import ExecutionPlan


class TestExecutionPlan:
    def test_defaults_are_serial_vectorized(self):
        plan = ExecutionPlan()
        assert plan.vectorized
        assert plan.workers == 1
        assert plan.shard_size is None
        assert plan.cache_policy == "memory"

    def test_reference_plan(self):
        plan = ExecutionPlan.reference()
        assert not plan.vectorized
        assert plan.cache_policy == "none"

    def test_with_workers(self):
        plan = ExecutionPlan().with_workers(4)
        assert plan.workers == 4
        # Everything else is untouched.
        assert plan.vectorized and plan.cache_policy == "memory"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"shard_size": 0},
            {"batch_size": 0},
            {"cache_policy": "ram"},
            {"cache_policy": "disk"},  # missing cache_dir
            {"cache_capacity": 0},
            {"cache_disk_capacity": 0},
            {"backend": "optical"},
            {"kernel_backend": "warp"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPlan(**kwargs)

    def test_kernel_backend_accepts_registered_names(self):
        from repro.nn import backend as kernel_backends

        assert ExecutionPlan().kernel_backend is None
        for name in kernel_backends.available_backends():
            assert ExecutionPlan(kernel_backend=name).kernel_backend == name

    def test_radar_backend_error_disambiguates_kernel_backend(self):
        """The two backend axes are distinct; the error must say which is which."""
        with pytest.raises(ValueError, match="kernel_backend"):
            ExecutionPlan(backend="fast")

    def test_hashable_and_frozen(self):
        plan = ExecutionPlan()
        assert hash(plan) == hash(ExecutionPlan())
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.workers = 2


class TestBatchPlanFacade:
    def test_batchplan_is_an_execution_plan(self):
        assert issubclass(BatchPlan, ExecutionPlan)
        assert isinstance(BatchPlan(), ExecutionPlan)

    def test_facade_adds_no_fields(self):
        base = {f.name for f in dataclasses.fields(ExecutionPlan)}
        facade = {f.name for f in dataclasses.fields(BatchPlan)}
        assert facade == base

    def test_reference_returns_facade_type(self):
        assert isinstance(BatchPlan.reference(), BatchPlan)

    def test_replace_keeps_facade_type(self):
        plan = dataclasses.replace(BatchPlan(), workers=4)
        assert isinstance(plan, BatchPlan)
        assert plan.workers == 4

"""Root conftest: make ``repro`` importable without an install.

The supported installation path is ``pip install -e .`` (see pyproject.toml),
after which this shim is a no-op.  For environments where an editable install
is unavailable (offline containers, quick checkouts) the ``src/`` layout is
prepended to ``sys.path`` so that ``pytest`` works out of the box and the
historical ``PYTHONPATH=src`` prefix becomes optional.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - depends on install state
    sys.path.insert(0, str(_SRC))

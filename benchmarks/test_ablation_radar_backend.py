"""Ablation: geometric vs full-signal-chain radar backends.

The synthetic dataset is generated with the fast geometric backend; this
bench verifies that its point-cloud statistics (sparsity, spatial location,
Doppler spread) stay close to those of the full FMCW signal-chain simulation,
which justifies the substitution documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.body.motion import MotionSynthesizer
from repro.body.subjects import default_subjects
from repro.body.surface import BodyScatteringModel
from repro.radar.config import RadarConfig
from repro.radar.pipeline import make_pipeline
from repro.viz.tables import format_table


@pytest.fixture(scope="module")
def backend_statistics():
    subject = default_subjects()[0]
    trajectory = MotionSynthesizer().synthesize(
        subject, "squat", 4.0, rng=np.random.default_rng(0)
    )
    scattering = BodyScatteringModel(points_per_segment=6)
    rng = np.random.default_rng(1)

    pipelines = {
        "geometric": make_pipeline("geometric"),
        "signal": make_pipeline("signal", config=RadarConfig.low_resolution()),
    }
    statistics = {}
    for name, pipeline in pipelines.items():
        counts, centroids, doppler_spread = [], [], []
        for index in range(0, trajectory.num_frames, 4):
            positions, velocities = trajectory.frame(index)
            scatterers = scattering.scatterers(positions, velocities, rng)
            frame = pipeline.process_scatterers(scatterers, rng, frame_index=index)
            if frame.num_points == 0:
                continue
            counts.append(frame.num_points)
            centroids.append(frame.centroid())
            doppler_spread.append(frame.doppler.std())
        statistics[name] = {
            "mean points/frame": float(np.mean(counts)),
            "centroid depth (m)": float(np.mean([c[1] for c in centroids])),
            "centroid height (m)": float(np.mean([c[2] for c in centroids])),
            "doppler std (m/s)": float(np.mean(doppler_spread)),
        }
    return statistics


class TestRadarBackendAblation:
    def test_report_backend_statistics(self, benchmark, backend_statistics):
        stats = benchmark.pedantic(lambda: backend_statistics, rounds=1, iterations=1)
        rows = []
        for metric in next(iter(stats.values())):
            rows.append([metric, stats["geometric"][metric], stats["signal"][metric]])
        print(
            "\n"
            + format_table(
                ["statistic", "geometric backend", "signal-chain backend"],
                rows,
                title="Ablation: radar backend point-cloud statistics (squat sequence)",
            )
        )
        assert set(stats) == {"geometric", "signal"}

    def test_both_backends_localize_the_body_consistently(self, backend_statistics):
        geo = backend_statistics["geometric"]
        sig = backend_statistics["signal"]
        assert abs(geo["centroid depth (m)"] - sig["centroid depth (m)"]) < 0.5
        assert abs(geo["centroid height (m)"] - sig["centroid height (m)"]) < 0.6

    def test_both_backends_are_sparse(self, backend_statistics):
        for stats in backend_statistics.values():
            assert stats["mean points/frame"] < 80

"""Ablation: projection vs sorted point-list input representation.

DESIGN.md calls out the feature-map layout as a design choice: the projection
layout (spatial histogram, the default) versus the sorted point-list layout
(pad/truncate to 64 points).  This bench trains the baseline briefly under
both layouts and reports the MAE, documenting why the projection layout is
the default.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import FuseConfig, FusePoseEstimator
from repro.core.training import TrainingConfig
from repro.dataset.features import FeatureMapBuilder
from repro.viz.tables import format_table


@pytest.fixture(scope="module")
def layout_results(bench_split):
    results = {}
    for layout in ("projection", "sorted"):
        estimator = FusePoseEstimator(
            FuseConfig(
                num_context_frames=1,
                feature_builder=FeatureMapBuilder(layout=layout),
                training=TrainingConfig(epochs=15, batch_size=128),
                model_seed=0,
            )
        )
        train = estimator.prepare(bench_split.train)
        test = estimator.prepare(bench_split.test)
        estimator.fit_supervised(train)
        results[layout] = estimator.evaluate(test).mae_average
    return results


class TestFeatureLayoutAblation:
    def test_report_layout_comparison(self, benchmark, layout_results):
        results = benchmark.pedantic(lambda: layout_results, rounds=1, iterations=1)
        print(
            "\n"
            + format_table(
                ["input layout", "test MAE (cm)"],
                [[name, value] for name, value in results.items()],
                title="Ablation: feature-map layout (15-epoch training)",
            )
        )
        assert all(value > 0 for value in results.values())

    def test_projection_layout_is_competitive(self, layout_results):
        """The default layout must not be worse than the alternative."""
        assert layout_results["projection"] <= layout_results["sorted"] + 0.5

"""Benchmark: regenerate Figure 3 (fine-tuning all layers).

Shape checks: FUSE adapts quickly from its deliberately-generalist
initialization while the baseline's original-data error climbs as it adapts
(catastrophic forgetting); FUSE ends at least as accurate on the new data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.finetune import FineTuneConfig, FineTuner
from repro.dataset.loader import ArrayDataset
from repro.experiments.adaptation import run_adaptation
from repro.experiments.figure3 import format_figure3


@pytest.fixture(scope="session")
def adaptation_result(ci_scale):
    return run_adaptation(ci_scale)


def check_figure3_shape(result) -> None:
    baseline = result.model_curves("all", "baseline")
    fuse = result.model_curves("all", "fuse")
    # (a) forgetting: baseline's original-data MAE climbs; FUSE's does not climb as much.
    assert result.forgetting("all", "baseline") > result.forgetting("all", "fuse") + 1.0
    # (b) adaptation: FUSE improves substantially on the new data within a few epochs.
    fuse_new = fuse.new_curve()
    assert min(fuse_new[1:11]) < 0.9 * fuse_new[0]
    # (c) end state: FUSE at least matches the baseline on the new data.
    assert fuse_new[-1] <= baseline.new_curve()[-1] + 0.3


class TestFigure3Reproduction:
    def test_regenerate_figure3(self, benchmark, adaptation_result):
        result = benchmark.pedantic(lambda: adaptation_result, rounds=1, iterations=1)
        print("\n" + format_figure3(result))
        check_figure3_shape(result)

    def test_fuse_adapts_within_few_epochs(self, adaptation_result):
        fuse_new = adaptation_result.model_curves("all", "fuse").new_curve()
        assert min(fuse_new[1:11]) < 0.9 * fuse_new[0]

    def test_baseline_original_error_climbs(self, adaptation_result):
        baseline_original = adaptation_result.model_curves("all", "baseline").original_curve()
        assert baseline_original[-1] > baseline_original[0]

    def test_fuse_keeps_original_error_bounded(self, adaptation_result):
        fuse_original = adaptation_result.model_curves("all", "fuse").original_curve()
        assert fuse_original[-1] <= fuse_original[0] + 1.0


class TestFineTuneKernels:
    def test_benchmark_finetune_epoch(self, benchmark, trained_baseline, bench_arrays):
        """One online fine-tuning epoch on a 60-frame adaptation set."""
        adaptation_set = ArrayDataset(bench_arrays.features[:60], bench_arrays.labels[:60])
        tuner = FineTuner(trained_baseline, FineTuneConfig(epochs=1))
        benchmark.pedantic(
            lambda: tuner.finetune(adaptation_set, epochs=1), rounds=3, iterations=1
        )

    def test_benchmark_inference_latency(self, benchmark, trained_baseline):
        """Single-frame inference latency (the paper targets real-time edge use)."""
        features = np.random.default_rng(0).normal(size=(1, 5, 8, 8))
        benchmark(lambda: trained_baseline.predict_joints(features))

"""Benchmark: regenerate Table 1 (frame-fusion ablation) and check its shape.

Paper values (Table 1): single-frame 5.5 cm, 3-frame fusion 3.6 cm (34%
better), 5-frame fusion 5.5 cm.  The reproduction asserts the *shape*:
3-frame fusion beats single-frame, and widening the window to 5 frames stops
helping.
"""

from __future__ import annotations

import pytest

from repro.core.fusion import fuse_dataset
from repro.core.training import SupervisedTrainer, TrainingConfig
from repro.core.models import build_baseline_model
from repro.dataset.loader import BatchLoader
from repro.experiments.table1 import format_table1, run_table1


@pytest.fixture(scope="module")
def table1_result(ci_scale):
    return run_table1(ci_scale)


class TestTable1Reproduction:
    def test_regenerate_table1(self, benchmark, table1_result):
        """Regenerates Table 1, prints it, and checks the paper's shape.

        The shape assertions are repeated here (not only in the granular
        tests below) so that a ``--benchmark-only`` run still validates the
        reproduction.
        """
        result = benchmark.pedantic(lambda: table1_result, rounds=1, iterations=1)
        print("\n" + format_table1(result))
        assert len(result.rows) == 3
        single = result.row_for(0).mae_average
        fused3 = result.row_for(1).mae_average
        fused5 = result.row_for(2).mae_average
        assert fused3 < single
        assert fused5 >= fused3 - 0.3

    def test_three_frame_fusion_beats_single_frame(self, table1_result):
        single = table1_result.row_for(0).mae_average
        fused3 = table1_result.row_for(1).mae_average
        assert fused3 < single, (
            f"3-frame fusion ({fused3:.2f} cm) should beat single-frame ({single:.2f} cm)"
        )

    def test_five_frame_fusion_stops_improving(self, table1_result):
        fused3 = table1_result.row_for(1).mae_average
        fused5 = table1_result.row_for(2).mae_average
        # The paper reports a clear regression at 5 frames; we allow a small
        # tolerance because the synthetic dataset is less blur-sensitive.
        assert fused5 >= fused3 - 0.3, (
            f"5-frame fusion ({fused5:.2f} cm) should not keep improving over 3-frame "
            f"({fused3:.2f} cm)"
        )

    def test_absolute_error_in_paper_ballpark(self, table1_result):
        # The paper's baseline is 5.5 cm; the synthetic substrate should land
        # within a factor of ~2 of that operating point.
        single = table1_result.row_for(0).mae_average
        assert 2.0 < single < 12.0


class TestTable1Kernels:
    def test_benchmark_training_epoch(self, benchmark, bench_arrays):
        """One supervised epoch of the MARS baseline (the unit Table 1 scales with)."""
        model = build_baseline_model()
        trainer = SupervisedTrainer(model, TrainingConfig(epochs=1, batch_size=128))
        loader = BatchLoader(bench_arrays, batch_size=128, shuffle=True)
        benchmark(lambda: trainer.train_epoch(loader))

    def test_benchmark_frame_fusion(self, benchmark, bench_dataset):
        """Eq. 3 fusion over a full dataset (pre-processing cost of FUSE)."""
        benchmark(lambda: fuse_dataset(bench_dataset, num_context_frames=1))

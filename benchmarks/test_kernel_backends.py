"""Multi-core truth for the kernel-backend registry.

Measures the registered kernel backends against each other on the shapes the
hot paths actually run: the grouped serving GEMM (many user rows through one
shared weight matrix), the batched conv im2col product, and a full serving
replay through :class:`repro.serve.PoseServer` under each backend.  The
``fast`` backend is measured at 1, 2 and 4 worker threads so the recorded
figures say how the backend scales, not just whether it won once.

Honesty rule: every figure in the ``kernel_backends`` sections carries the
``cpu_count`` and ``backend`` context, and the acceptance bar adapts to the
machine — on a multi-core host the fast backend must beat reference on the
grouped-GEMM serving path; on a single core there is no parallel speedup to
claim, so the run records ``cpu_count: 1`` and asserts numerical parity
instead.  ``scripts/bench_regression.py`` refuses to trend figures across
differing contexts, so a 1-core run never gates a 4-core baseline.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
from bench_io import record_section

from repro.core import FuseConfig, FusePoseEstimator
from repro.core.training import TrainingConfig
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset
from repro.nn.backend import FastBackend, active_backend_name, get_backend
from repro.serve import PoseServer, ServeConfig, replay_users, user_streams_from_dataset

BENCH_ENGINE = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
BENCH_SERVE = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

_ENGINE_RESULTS: dict = {}
_SERVE_RESULTS: dict = {}

THREAD_COUNTS = (1, 2, 4)


def _time(fn, repeats: int = 3) -> float:
    fn()  # warm caches, pools and allocators
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _backends_under_test():
    """(label, backend) pairs: reference plus fast at each thread count."""
    pairs = [("reference", get_backend("reference"))]
    for threads in THREAD_COUNTS:
        pairs.append((f"fast_t{threads}", FastBackend(threads=threads)))
    return pairs


class TestKernelBackendOps:
    def test_gemm_and_conv_throughput(self, rng):
        """Raw op throughput per backend, recorded to ``BENCH_engine.json``."""
        # The grouped serving GEMM shape: a 64-row block of user features
        # against the shared trunk weight matrix.
        a = rng.normal(size=(256, 320))
        b = rng.normal(size=(320, 192))
        # The batched-conv working set: 4 tasks x 8 images of 5-channel maps.
        conv_x = rng.normal(size=(4, 8, 5, 16, 16))
        conv_w = rng.normal(size=(4, 12, 5, 3, 3))
        conv_bias = rng.normal(size=(4, 12))

        payload: dict = {
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
            "gemm_m": a.shape[0],
            "gemm_k": a.shape[1],
            "gemm_n": b.shape[1],
        }
        results: dict = {}
        for label, backend in _backends_under_test():
            gemm_seconds = _time(lambda backend=backend: backend.gemm(a, b))
            conv_seconds = _time(
                lambda backend=backend: backend.conv2d_batched_forward(
                    conv_x, conv_w, conv_bias, 1, 1
                )
            )
            payload[f"{label}_gemm_per_sec"] = 1.0 / gemm_seconds
            payload[f"{label}_conv_per_sec"] = 1.0 / conv_seconds
            results[label] = backend.gemm(a, b)
        record_section(BENCH_ENGINE, _ENGINE_RESULTS, "kernel_backends", payload)

        # Whatever the clocks said, the answers must agree.
        for label, result in results.items():
            np.testing.assert_allclose(
                result, results["reference"], rtol=1e-9, atol=1e-12, err_msg=label
            )


class TestKernelBackendServing:
    def test_grouped_gemm_serving_path(self):
        """Full serving replay per backend, recorded to ``BENCH_serve.json``.

        The acceptance bar: with real cores available, the fast backend must
        beat reference on the grouped-GEMM serving path; on one core the run
        asserts bitwise-exact parity of the predictions instead (a threaded
        backend that cannot win on one core must at least not change bits,
        because its chunking is deterministic).
        """
        config = SyntheticDatasetConfig(
            subject_ids=(1, 2),
            movement_names=("squat", "right_limb_extension"),
            seconds_per_pair=9.0,
            seed=5,
        )
        dataset = generate_dataset(config)
        estimator = FusePoseEstimator(
            FuseConfig(num_context_frames=1, training=TrainingConfig(epochs=3, batch_size=128))
        )
        estimator.fit_supervised(estimator.prepare(dataset))
        streams = user_streams_from_dataset(dataset, num_users=24, frames_per_user=10)
        total = sum(len(stream) for stream in streams.values())

        cpu_count = os.cpu_count() or 1
        payload: dict = {
            "cpu_count": cpu_count,
            "backend": active_backend_name(),
            "users": len(streams),
            "frames": total,
        }
        predictions: dict = {}
        for name in ("reference", "fast"):
            server = PoseServer(
                estimator, ServeConfig(max_batch_size=64, kernel_backend=name)
            )
            replay_users(server, streams)  # warm
            start = time.perf_counter()
            result = replay_users(server, streams)
            payload[f"{name}_serving_fps"] = total / (time.perf_counter() - start)
            predictions[name] = result.predictions
        record_section(BENCH_SERVE, _SERVE_RESULTS, "kernel_backends", payload)

        if cpu_count >= 2:
            ratio = payload["fast_serving_fps"] / payload["reference_serving_fps"]
            assert ratio >= 1.0, (
                f"fast backend only {ratio:.2f}x reference on the grouped-GEMM "
                f"serving path with {cpu_count} cores"
            )
        for user in predictions["reference"]:
            np.testing.assert_allclose(
                predictions["fast"][user],
                predictions["reference"][user],
                rtol=1e-9,
                atol=1e-12,
            )

"""Benchmark: regenerate Figure 4 (fine-tuning only the last FC layer).

Shape checks mirror Figure 3, plus the paper's observation that last-layer
fine-tuning adapts to a higher final error than all-layer fine-tuning.
"""

from __future__ import annotations

import pytest

from repro.experiments.adaptation import run_adaptation
from repro.experiments.figure4 import format_figure4


@pytest.fixture(scope="session")
def adaptation_result(ci_scale):
    return run_adaptation(ci_scale)


def check_figure4_shape(result) -> None:
    # Forgetting asymmetry persists when only the last layer is tuned.
    assert result.forgetting("last", "baseline") > result.forgetting("last", "fuse")
    # Last-layer fine-tuning ends no better than all-layer fine-tuning for FUSE.
    fuse_last = result.model_curves("last", "fuse").new_curve()[-1]
    fuse_all = result.model_curves("all", "fuse").new_curve()[-1]
    assert fuse_last >= fuse_all - 0.3


class TestFigure4Reproduction:
    def test_regenerate_figure4(self, benchmark, adaptation_result):
        result = benchmark.pedantic(lambda: adaptation_result, rounds=1, iterations=1)
        print("\n" + format_figure4(result))
        check_figure4_shape(result)

    def test_last_layer_adapts_worse_than_all_layers(self, adaptation_result):
        """Paper: fine-tuning all layers reaches a lower new-data MAE.

        Asserted for the meta-learned model only.  For the supervised
        baseline the ordering is not stable at CI scale: with a ~60-frame
        adaptation set the all-layer run can overfit past its best epoch and
        finish behind the last-layer run (observed under both the batched
        and the per-frame dataset generation paths), so a baseline assertion
        here would pin dataset-realization luck rather than the paper's
        claim.
        """
        last = adaptation_result.model_curves("last", "fuse").new_curve()[-1]
        all_layers = adaptation_result.model_curves("all", "fuse").new_curve()[-1]
        assert last >= all_layers - 0.5, (
            f"fuse: last-layer fine-tuning ({last:.2f} cm) should not beat "
            f"all-layer fine-tuning ({all_layers:.2f} cm)"
        )

    def test_forgetting_asymmetry_persists(self, adaptation_result):
        assert adaptation_result.forgetting("last", "baseline") > adaptation_result.forgetting(
            "last", "fuse"
        )

    def test_fuse_still_improves_on_new_data(self, adaptation_result):
        fuse_new = adaptation_result.model_curves("last", "fuse").new_curve()
        assert fuse_new[-1] < fuse_new[0]

"""Ablation: first-order MAML vs Reptile meta-gradient estimators.

Both estimators are run for a short budget from the same warm start; the
bench reports the post-adaptation (query) loss each reaches, which is the
quantity meta-training optimizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.maml import MetaLearningConfig, MetaTrainer
from repro.core.models import PoseCNN, PoseCNNConfig
from repro.viz.tables import format_table


@pytest.fixture(scope="module")
def algorithm_results(bench_arrays):
    results = {}
    for algorithm in ("fomaml", "reptile"):
        model = PoseCNN(PoseCNNConfig(conv_channels=(8, 16), hidden_units=128), seed=1)
        config = MetaLearningConfig(
            meta_iterations=40,
            tasks_per_batch=2,
            support_size=32,
            query_size=32,
            algorithm=algorithm,
            warmstart_epochs=4,
            seed=3,
        )
        history = MetaTrainer(model, config).meta_train(bench_arrays)
        results[algorithm] = float(np.mean(history.query_loss[-10:]))
    return results


class TestMetaAlgorithmAblation:
    def test_report_meta_algorithm_comparison(self, benchmark, algorithm_results):
        results = benchmark.pedantic(lambda: algorithm_results, rounds=1, iterations=1)
        print(
            "\n"
            + format_table(
                ["meta-gradient estimator", "final query loss (m)"],
                [[name, value] for name, value in results.items()],
                title="Ablation: FOMAML vs Reptile (40 meta-iterations from a shared warm start)",
                precision=4,
            )
        )
        assert set(results) == {"fomaml", "reptile"}

    def test_both_estimators_produce_finite_losses(self, algorithm_results):
        assert all(np.isfinite(v) and v > 0 for v in algorithm_results.values())

    def test_fomaml_is_the_reasonable_default(self, algorithm_results):
        """FOMAML (the default) should reach a query loss at least comparable to Reptile."""
        assert algorithm_results["fomaml"] <= algorithm_results["reptile"] * 1.5

"""Ablation: point-cloud sparsity (scatterer density and point budget).

Sweeps the body-surface scatterer density, reporting how the resulting
point-cloud sparsity and feature-map occupancy change — the operating curve
on which the multi-frame fusion benefit of Table 1 depends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.features import FeatureMapBuilder
from repro.dataset.statistics import summarize
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset
from repro.viz.tables import format_table


@pytest.fixture(scope="module")
def sparsity_sweep():
    builder = FeatureMapBuilder()
    results = []
    for points_per_segment in (3, 5, 8):
        config = SyntheticDatasetConfig(
            subject_ids=(1,),
            movement_names=("squat",),
            seconds_per_pair=5.0,
            points_per_segment=points_per_segment,
            seed=5,
        )
        dataset = generate_dataset(config, use_cache=False)
        summary = summarize(dataset)
        features = builder.build_batch([s.cloud for s in dataset])
        occupancy = float((np.abs(features).sum(axis=1) > 0).mean())
        results.append(
            {
                "scatterers/segment": points_per_segment,
                "mean points/frame": summary.mean_points_per_frame,
                "feature-map occupancy": occupancy,
            }
        )
    return results


class TestSparsityAblation:
    def test_report_sparsity_sweep(self, benchmark, sparsity_sweep):
        results = benchmark.pedantic(lambda: sparsity_sweep, rounds=1, iterations=1)
        print(
            "\n"
            + format_table(
                ["scatterers/segment", "mean points/frame", "feature-map occupancy"],
                [[r["scatterers/segment"], r["mean points/frame"], r["feature-map occupancy"]] for r in results],
                title="Ablation: body scatterer density vs point-cloud sparsity",
            )
        )
        assert len(results) == 3

    def test_density_increases_with_scatterer_count(self, sparsity_sweep):
        points = [r["mean points/frame"] for r in sparsity_sweep]
        assert points[0] < points[-1]

    def test_occupancy_stays_sparse(self, sparsity_sweep):
        """Even the densest setting leaves most feature-map cells empty — the
        sparsity problem the paper addresses."""
        assert all(r["feature-map occupancy"] < 0.7 for r in sparsity_sweep)

"""Benchmark: regenerate Table 2 (baseline vs FUSE adaptation summary).

Paper claims checked in shape: the supervised baseline pays for adapting to
the new user/movement with catastrophic forgetting of the original data,
while the meta-learned FUSE model adapts without forgetting and ends up at
least as accurate on the new data.
"""

from __future__ import annotations

import pytest

from repro.core.maml import MetaLearningConfig, MetaTrainer
from repro.core.models import build_fuse_model
from repro.experiments.adaptation import run_adaptation
from repro.experiments.table2 import format_table2


@pytest.fixture(scope="session")
def adaptation_result(ci_scale):
    return run_adaptation(ci_scale)


def check_table2_shape(result) -> None:
    """The qualitative Table 2 claims shared by both run modes."""
    for scope in ("all", "last"):
        baseline_forgetting = result.forgetting(scope, "baseline")
        fuse_forgetting = result.forgetting(scope, "fuse")
        assert baseline_forgetting > fuse_forgetting + 1.0, (
            f"[{scope}] baseline should forget markedly more than FUSE "
            f"(baseline {baseline_forgetting:+.1f} cm vs FUSE {fuse_forgetting:+.1f} cm)"
        )
    baseline_final = result.model_curves("all", "baseline").new_curve()[-1]
    fuse_final = result.model_curves("all", "fuse").new_curve()[-1]
    assert fuse_final <= baseline_final + 0.3, (
        f"FUSE should end at least as accurate on the new data "
        f"(FUSE {fuse_final:.2f} cm vs baseline {baseline_final:.2f} cm)"
    )


class TestTable2Reproduction:
    def test_regenerate_table2(self, benchmark, adaptation_result):
        result = benchmark.pedantic(lambda: adaptation_result, rounds=1, iterations=1)
        print("\n" + format_table2(result))
        check_table2_shape(result)

    def test_baseline_forgets_fuse_does_not(self, adaptation_result):
        for scope in ("all", "last"):
            assert adaptation_result.forgetting(scope, "baseline") > adaptation_result.forgetting(
                scope, "fuse"
            )

    def test_fuse_ends_better_on_new_data(self, adaptation_result):
        baseline_final = adaptation_result.model_curves("all", "baseline").new_curve()[-1]
        fuse_final = adaptation_result.model_curves("all", "fuse").new_curve()[-1]
        assert fuse_final <= baseline_final + 0.3

    def test_fuse_initial_original_mae_higher_than_baseline(self, adaptation_result):
        """The meta-learned init trades initial fit for adaptability (paper: 12.4 vs 6.7 cm)."""
        baseline = adaptation_result.model_curves("all", "baseline").initial_original_mae
        fuse = adaptation_result.model_curves("all", "fuse").initial_original_mae
        assert fuse > baseline


class TestAdaptationKernels:
    def test_benchmark_meta_iteration(self, benchmark, bench_arrays):
        """One meta-training iteration (Algorithm 1, lines 3-11)."""
        model = build_fuse_model()
        config = MetaLearningConfig(
            meta_iterations=1, tasks_per_batch=2, support_size=32, query_size=32
        )
        trainer = MetaTrainer(model, config)
        benchmark.pedantic(
            lambda: trainer.meta_train(bench_arrays, meta_iterations=1), rounds=3, iterations=1
        )

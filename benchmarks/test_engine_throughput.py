"""Throughput benchmark of the batched execution engine.

Measures the vectorized engine against the per-frame / per-task reference
paths on three axes of the hot path:

* **frames/sec** — radar point-cloud generation for a full trajectory
  (scatterer sampling + geometric backend);
* **tasks/sec** — meta-learning: tasks adapted per second through the
  task-batched inner loop vs the sequential loop;
* **figure2 end-to-end** — wall-clock of the Figure 2 experiment (motion
  synthesis, radar, fusion, statistics) under both plans;
* **shard scaling** — synthetic dataset generation through
  ``runtime.map_shards`` at 1/2/4 worker processes (bitwise-identical
  output, so only the wall clock moves).

Results are written to ``BENCH_engine.json`` at the repository root so the
performance trajectory is tracked from PR to PR; the scheduled CI slow tier
uploads the file as an artifact.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest
from bench_io import record_section

from repro.body.motion import MotionSynthesizer
from repro.body.subjects import default_subjects
from repro.body.surface import BodyScatteringModel
from repro.core.maml import MetaLearningConfig, MetaTrainer
from repro.core.models import PoseCNN
from repro.dataset.features import FeatureMapBuilder
from repro.dataset.loader import ArrayDataset
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset
from repro.engine import BatchPlan, BatchedRadarEngine
from repro.experiments.figure2 import run_figure2
from repro.nn.backend import active_backend_name
from repro.radar import GeometricPipeline, RadarConfig

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

_RESULTS: dict = {}


def _record(section: str, payload: dict) -> None:
    record_section(BENCH_PATH, _RESULTS, section, payload)


def _time(callable_, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


class TestRadarThroughput:
    def test_frames_per_second(self):
        """Batched radar generation must beat the per-frame loop >= 3x."""
        subject = default_subjects()[0]
        scattering = BodyScatteringModel(points_per_segment=5)
        trajectory = MotionSynthesizer(frame_rate=10.0).synthesize(
            subject, "squat", duration=30.0, rng=np.random.default_rng(0)
        )
        pipeline = GeometricPipeline(config=RadarConfig())
        vectorized = BatchedRadarEngine(plan=BatchPlan(batch_size=64))
        reference = BatchedRadarEngine(plan=BatchPlan.reference())

        t_ref = _time(
            lambda: reference.point_cloud_sequence(
                scattering, trajectory, pipeline, np.random.default_rng(1)
            ),
            repeats=2,
        )
        t_vec = _time(
            lambda: vectorized.point_cloud_sequence(
                scattering, trajectory, pipeline, np.random.default_rng(1)
            ),
            repeats=2,
        )
        frames = trajectory.num_frames
        speedup = t_ref / t_vec
        _record(
            "radar_frames_per_sec",
            {
                "frames": frames,
                "per_frame_fps": frames / t_ref,
                "batched_fps": frames / t_vec,
                "speedup": speedup,
            },
        )
        assert speedup >= 3.0, f"batched radar only {speedup:.2f}x faster"

    def test_feature_build_throughput(self):
        """Vectorized feature building must beat the per-frame loop >= 3x."""
        rng = np.random.default_rng(2)
        from repro.radar.pointcloud import PointCloudFrame

        frames = []
        for _ in range(2000):
            count = int(rng.integers(5, 70))
            points = np.column_stack(
                [
                    rng.uniform(-1.2, 1.2, count),
                    rng.uniform(0.5, 4.5, count),
                    rng.uniform(0.0, 2.2, count),
                    rng.normal(0.0, 1.0, count),
                    rng.uniform(-5.0, 35.0, count),
                ]
            )
            frames.append(PointCloudFrame(points))
        builder = FeatureMapBuilder()
        t_ref = _time(lambda: builder.build_batch(frames, vectorized=False))
        t_vec = _time(lambda: builder.build_batch(frames))
        speedup = t_ref / t_vec
        _record(
            "feature_build",
            {
                "frames": len(frames),
                "per_frame_fps": len(frames) / t_ref,
                "batched_fps": len(frames) / t_vec,
                "speedup": speedup,
            },
        )
        assert speedup >= 3.0, f"vectorized feature build only {speedup:.2f}x faster"


class TestMetaThroughput:
    def test_tasks_per_second(self):
        """Task-batched inner loop must at least match the sequential loop.

        The inner loop is BLAS-bound; on a single-core host the batched path
        mainly removes Python overhead, so the bar here is parity (>= 0.8x),
        while multi-core hosts see real gains from the grouped GEMMs.
        """
        rng = np.random.default_rng(3)
        data = ArrayDataset(rng.normal(size=(512, 5, 8, 8)), rng.normal(size=(512, 57)))
        config = MetaLearningConfig(
            meta_iterations=6, tasks_per_batch=8, support_size=48, query_size=48
        )
        tasks_total = config.meta_iterations * config.tasks_per_batch

        t_ref = _time(
            lambda: MetaTrainer(
                PoseCNN(seed=4), config, plan=BatchPlan.reference()
            ).meta_train(data)
        )
        t_vec = _time(
            lambda: MetaTrainer(PoseCNN(seed=4), config, plan=BatchPlan()).meta_train(data)
        )
        speedup = t_ref / t_vec
        _record(
            "meta_tasks_per_sec",
            {
                "tasks": tasks_total,
                "sequential_tps": tasks_total / t_ref,
                "batched_tps": tasks_total / t_vec,
                "speedup": speedup,
            },
        )
        assert speedup >= 0.8, f"task-batched meta step regressed to {speedup:.2f}x"


class TestShardScaling:
    def test_dataset_generation_shard_scaling(self):
        """Sharded generation at 1/2/4 workers; identical bits, faster walls.

        On multi-core hosts the 4-worker run must beat the serial run; on a
        single-core container the process pool can only add overhead, so the
        bar there is a sanity floor (the pool must not be catastrophically
        slow) and the figures are recorded for the trend check.
        """
        config = SyntheticDatasetConfig(seconds_per_pair=8.0)  # 40 sessions, 3200 frames
        frames = config.expected_frames
        payload: dict = {
            "frames": frames,
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
        }
        seconds: dict = {}
        for workers in (1, 2, 4):
            plan = BatchPlan(workers=workers)
            seconds[workers] = _time(
                lambda plan=plan: generate_dataset(config, use_cache=False, plan=plan),
                repeats=2,
            )
            payload[f"workers_{workers}_fps"] = frames / seconds[workers]
        payload["speedup_4_workers"] = seconds[1] / seconds[4]
        _record("dataset_generation_shards", payload)

        speedup = payload["speedup_4_workers"]
        if (os.cpu_count() or 1) >= 4:
            assert speedup >= 1.3, f"4-worker generation only {speedup:.2f}x serial"
        else:
            assert speedup >= 0.4, f"sharding overhead excessive: {speedup:.2f}x serial"


class TestEndToEnd:
    def test_figure2_wall_clock(self):
        """The acceptance bar: figure2 end-to-end >= 3x faster batched."""
        t_ref = _time(lambda: run_figure2("ci", plan=BatchPlan.reference()), repeats=2)
        t_vec = _time(lambda: run_figure2("ci", plan=BatchPlan()), repeats=2)
        speedup = t_ref / t_vec
        _record(
            "figure2_end_to_end",
            {
                "per_frame_seconds": t_ref,
                "batched_seconds": t_vec,
                "speedup": speedup,
            },
        )
        assert speedup >= 3.0, f"figure2 end-to-end only {speedup:.2f}x faster"

    @pytest.mark.parametrize("plan", [BatchPlan(), BatchPlan.reference()])
    def test_figure2_results_sane_under_both_plans(self, plan):
        result = run_figure2("ci", plan=plan)
        assert result.fused_points > result.single_points
        assert result.enrichment_factor() > 1.5

"""Shared fixtures for the benchmark harness.

Every benchmark runs at the ``ci`` experiment scale (see
``repro.experiments.scale``): small enough for a laptop CPU, large enough to
preserve the orderings and crossovers that the paper's tables and figures
demonstrate.  Expensive experiment results are cached at session scope so the
Table 2 / Figure 3 / Figure 4 benches share one offline-training run.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.models import build_baseline_model
from repro.dataset.features import FeatureMapBuilder
from repro.dataset.loader import build_array_dataset
from repro.dataset.splits import per_movement_split
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset
from repro.experiments.scale import get_scale


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark every benchmark as ``slow``.

    The benchmark harness replays CI-scale experiments (minutes each) and is
    excluded from the default test tier; run ``pytest -m slow`` (or the
    scheduled CI job) to execute it.  The hook receives the whole session's
    item list, so restrict the marker to items that live in this directory.
    """
    for item in items:
        try:
            in_benchmarks = Path(str(item.fspath)).resolve().is_relative_to(_BENCH_DIR)
        except (OSError, ValueError):
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def ci_scale():
    """The CI experiment scale used throughout the benchmark harness."""
    return get_scale("ci")


@pytest.fixture(scope="session")
def bench_dataset_config() -> SyntheticDatasetConfig:
    """A mid-sized dataset configuration for kernel benchmarks."""
    return SyntheticDatasetConfig(
        subject_ids=(1, 2), movement_names=("squat", "right_limb_extension"), seconds_per_pair=6.0
    )


@pytest.fixture(scope="session")
def bench_dataset(bench_dataset_config):
    """A labelled synthetic dataset shared by the kernel benchmarks."""
    return generate_dataset(bench_dataset_config)


@pytest.fixture(scope="session")
def bench_split(bench_dataset):
    return per_movement_split(bench_dataset)


@pytest.fixture(scope="session")
def bench_arrays(bench_split):
    """Feature/label arrays of the kernel-benchmark training partition."""
    return build_array_dataset(bench_split.train, builder=FeatureMapBuilder())


@pytest.fixture(scope="session")
def trained_baseline(bench_arrays):
    """A baseline model quickly fitted to the kernel-benchmark data."""
    from repro.core.training import SupervisedTrainer, TrainingConfig

    model = build_baseline_model()
    SupervisedTrainer(model, TrainingConfig(epochs=5, batch_size=128)).fit(bench_arrays)
    return model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)

"""Throughput benchmark of the streaming serving subsystem.

Replays 50 simulated concurrent users from the synthetic dataset through
three serving paths:

* **naive sequential** — the honest baseline: a plain per-user, per-frame
  loop over ``estimator.predict`` with no serving machinery at all;
* **unbatched server** — the full serving stack with ``max_batch_size=1``
  (the bitwise reference path of the equivalence tests);
* **micro-batched server** — cross-user coalescing, the deployment
  configuration;
* **sharded serving** — the same replay through a
  :class:`repro.serve.ShardedPoseServer` at 1/2/4 shards (users hashed onto
  independent server shards; predictions identical, throughput recorded for
  the trend check — in-process shards document the scheduling overhead a
  process-per-shard deployment would amortize over real cores);
* **socket front-end** — the strict v1 request/reply path
  (``serving_frontend``) and the protocol-v2 pipelined/batched paths
  (``serving_frontend_pipelined``: in-flight windows 1/8/64 and batched
  submits), both through shard worker processes behind a Unix socket;
* **routed cluster** — the replay through :class:`repro.serve.PoseRouter`
  over one and two process-backed backends (``router_fan_out``): the
  routing hop's overhead versus a direct front-end connection, and the
  fan-out recovery from consistent-hash placement over two backends;
* **mixed-class scheduling** — interactive and bulk traffic classes
  sharing one EDF-scheduled server (``mixed_class_serving``): interactive
  p95 against its class budget, and the bulk throughput retained versus
  an isolated bulk-only replay (floor: >= 70%).

The acceptance bar is micro-batched serving at >= 3x the frames/sec of the
naive sequential path.  Results land in ``BENCH_serve.json`` at the
repository root; the scheduled CI slow tier uploads the file and
``scripts/bench_regression.py`` fails the job if throughput drops more than
30% below the committed baseline.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from bench_io import record_section

from repro.core import FuseConfig, FusePoseEstimator
from repro.core.training import TrainingConfig
from repro.dataset.synthetic import SyntheticDatasetConfig, generate_dataset
from repro.nn.backend import active_backend_name
from repro.serve import (
    AsyncPoseClient,
    PoseFrontend,
    PoseServer,
    ProcessShardedPoseServer,
    SchedulingPolicy,
    ServeConfig,
    ShardedPoseServer,
    TrafficClass,
    adaptation_split,
    replay_users,
    sequential_reference,
    user_streams_from_dataset,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

_RESULTS: dict = {}

NUM_USERS = 50
FRAMES_PER_USER = 15


def _record(section: str, payload: dict) -> None:
    record_section(BENCH_PATH, _RESULTS, section, payload)


def _serve_fixture():
    # 4 sessions x 210 frames: enough for 50 disjoint 15-frame user streams
    # (13 users share each session) plus the adaptation frames.
    config = SyntheticDatasetConfig(
        subject_ids=(1, 2),
        movement_names=("squat", "right_limb_extension"),
        seconds_per_pair=21.0,
        seed=5,
    )
    dataset = generate_dataset(config)
    estimator = FusePoseEstimator(
        FuseConfig(num_context_frames=1, training=TrainingConfig(epochs=3, batch_size=128))
    )
    estimator.fit_supervised(estimator.prepare(dataset))
    streams = user_streams_from_dataset(
        dataset, num_users=NUM_USERS, frames_per_user=FRAMES_PER_USER
    )
    return estimator, streams


class TestServeThroughput:
    def test_micro_batched_serving_speedup(self):
        """The acceptance bar: micro-batched >= 3x naive sequential serving."""
        estimator, streams = _serve_fixture()
        total = sum(len(stream) for stream in streams.values())

        # Warm caches/allocators once so every path is measured hot.
        replay_users(PoseServer(estimator, ServeConfig(max_batch_size=64)), streams)

        start = time.perf_counter()
        sequential_reference(estimator, streams)
        naive_seconds = time.perf_counter() - start

        unbatched = replay_users(
            PoseServer(estimator, ServeConfig(max_batch_size=1, gemm_block=64)), streams
        )
        batched_server = PoseServer(estimator, ServeConfig(max_batch_size=64))
        batched = replay_users(batched_server, streams)

        naive_fps = total / naive_seconds
        speedup_vs_naive = batched.frames_per_second / naive_fps
        metrics = batched.metrics
        _record(
            "base_model_serving",
            {
                "users": NUM_USERS,
                "frames": total,
                "naive_sequential_fps": naive_fps,
                "unbatched_server_fps": unbatched.frames_per_second,
                "batched_fps": batched.frames_per_second,
                "speedup_vs_naive": speedup_vs_naive,
                "speedup_vs_unbatched_server": (
                    batched.frames_per_second / unbatched.frames_per_second
                ),
                "mean_batch_size": metrics["mean_batch_size"],
                "latency_p50_ms": metrics["latency_p50_ms"],
                "latency_p95_ms": metrics["latency_p95_ms"],
            },
        )
        assert speedup_vs_naive >= 3.0, (
            f"micro-batched serving only {speedup_vs_naive:.2f}x naive sequential"
        )

    def test_adapted_serving_throughput(self):
        """Per-user-adapted traffic under both adaptation scopes.

        ``scope="last"`` (shared trunk + personal heads, the paper's cheap
        online regime) must stay within striking distance of base-model
        serving; ``scope="all"`` (fully personalised networks) is recorded to
        document its memory-bound cost per user.
        """
        estimator, streams = _serve_fixture()
        calibration, serving = adaptation_split(streams, adaptation_frames=5)
        adapted_users = list(serving)[::2]  # every other user has personal weights

        from repro.core.finetune import FineTuneConfig

        naive_base = _RESULTS.get("base_model_serving", {}).get("naive_sequential_fps")
        if naive_base is None:  # standalone -k run: measure the yardstick here
            total = sum(len(stream) for stream in serving.values())
            sequential_reference(estimator, serving)  # warm
            start = time.perf_counter()
            sequential_reference(estimator, serving)
            naive_base = total / (time.perf_counter() - start)

        for scope, min_fps_ratio in (("last", 2.0), ("all", 0.0)):
            server = PoseServer(
                estimator,
                ServeConfig(max_batch_size=64),
                adaptation=FineTuneConfig(epochs=3, scope=scope),
            )
            adapt_start = time.perf_counter()
            server.adapt_users(
                {user: _as_dataset(calibration[user]) for user in adapted_users}
            )
            adapt_seconds = time.perf_counter() - adapt_start

            result = replay_users(server, serving)
            metrics = result.metrics
            _record(
                f"mixed_adapted_serving_scope_{scope}",
                {
                    "cpu_count": os.cpu_count(),
                    "backend": active_backend_name(),
                    "users": NUM_USERS,
                    "adapted_users": len(adapted_users),
                    "frames": result.frames_served,
                    "grouped_adaptation_seconds": adapt_seconds,
                    "adaptation_users_per_sec": len(adapted_users) / adapt_seconds,
                    "batched_fps": result.frames_per_second,
                    "param_cache_hit_rate": metrics["param_cache_hit_rate"],
                    "mean_batch_size": metrics["mean_batch_size"],
                    "latency_p95_ms": metrics["latency_p95_ms"],
                },
            )
            assert result.frames_dropped == 0
            assert result.frames_per_second >= min_fps_ratio * naive_base, (
                f"scope={scope} adapted serving at {result.frames_per_second:.0f} fps "
                f"vs naive base {naive_base:.0f} fps"
            )


    def test_lora_adapted_serving_and_onboarding(self):
        """Low-rank per-user adaptation: serving speed and onboarding cost.

        Two sections:

        * ``lora_adapted_serving`` — the 50-user mixed replay with every
          other user carrying rank-4 low-rank factors.  The lora route runs
          the shared base through the fixed-block kernel and applies each
          frame's factors as two rank-r products, so it must stay within 2x
          of ``scope="last"`` serving (full-network personalization at
          near-last-layer speed).
        * ``adapter_onboarding`` — grouped onboarding throughput
          (users/sec) at ranks 2/4/8 against the ``scope="all"`` grouped
          baseline.  Training rank-r factors backpropagates and updates
          ``O(r * (in + out))`` values per layer instead of full tensors;
          the bar is >= 5x the full-adaptation onboarding rate.
        """
        from repro.serve import AdapterPolicy

        estimator, streams = _serve_fixture()
        calibration, serving = adaptation_split(streams, adaptation_frames=5)
        adapted_users = list(serving)[::2]
        datasets = {user: _as_dataset(calibration[user]) for user in adapted_users}

        def onboard(policy):
            server = PoseServer(
                estimator, ServeConfig(max_batch_size=64), policy=policy
            )
            start = time.perf_counter()
            server.adapt_users(datasets)
            return server, time.perf_counter() - start

        # Warm the adaptation kernels once so every rank is measured hot.
        onboard(AdapterPolicy(scope="lora", rank=2, epochs=3))

        onboarding: dict = {
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
            "adapted_users": len(adapted_users),
            "calibration_frames_per_user": 5,
            "epochs": 3,
        }
        lora_servers = {}
        for rank in (2, 4, 8):
            server, seconds = onboard(AdapterPolicy(scope="lora", rank=rank, epochs=3))
            lora_servers[rank] = server
            onboarding[f"lora_rank_{rank}_onboarding_per_sec"] = (
                len(adapted_users) / seconds
            )
        _, all_seconds = onboard(AdapterPolicy(scope="all", epochs=3))
        onboarding["scope_all_onboarding_per_sec"] = len(adapted_users) / all_seconds
        onboarding["lora_rank_4_speedup_vs_all"] = (
            onboarding["lora_rank_4_onboarding_per_sec"]
            / onboarding["scope_all_onboarding_per_sec"]
        )
        _record("adapter_onboarding", onboarding)
        assert onboarding["lora_rank_4_speedup_vs_all"] >= 5.0, (
            f"rank-4 lora onboarding only "
            f"{onboarding['lora_rank_4_speedup_vs_all']:.1f}x scope='all'"
        )

        last_server, _ = onboard(AdapterPolicy(scope="last", epochs=3))
        last_result = replay_users(last_server, serving)
        lora_result = replay_users(lora_servers[4], serving)
        assert lora_result.frames_dropped == 0
        serving_payload = {
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
            "users": NUM_USERS,
            "adapted_users": len(adapted_users),
            "rank": 4,
            "frames": lora_result.frames_served,
            "batched_fps": lora_result.frames_per_second,
            "scope_last_fps": last_result.frames_per_second,
            # Named without fps/throughput so the regression gate's
            # throughput-key regex does not trend a same-run ratio.
            "serving_ratio_vs_scope_last": (
                lora_result.frames_per_second / last_result.frames_per_second
            ),
            "latency_p95_ms": lora_result.metrics["latency_p95_ms"],
            "mean_batch_size": lora_result.metrics["mean_batch_size"],
        }
        _record("lora_adapted_serving", serving_payload)
        assert serving_payload["serving_ratio_vs_scope_last"] >= 0.5, (
            f"rank-4 lora serving at {lora_result.frames_per_second:.0f} fps is below "
            f"half of scope='last' ({last_result.frames_per_second:.0f} fps)"
        )


class TestShardedServing:
    def test_shard_scaling_throughput(self):
        """50-user replay through 1/2/4 server shards.

        Predictions are bitwise identical at every shard count (the
        equivalence suite pins this); here the throughput of each layout is
        recorded.  In one process, shards split each micro-batch into
        smaller per-shard batches, so this documents the scheduling overhead
        a process-per-shard deployment buys back with real cores; the floor
        asserts the overhead stays bounded.
        """
        estimator, streams = _serve_fixture()
        total = sum(len(stream) for stream in streams.values())
        config = ServeConfig(max_batch_size=64)

        # Warm caches/allocators once so every layout is measured hot.
        replay_users(ShardedPoseServer(estimator, num_shards=2, config=config), streams)

        payload: dict = {
            "users": NUM_USERS,
            "frames": total,
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
        }
        fps: dict = {}
        for shards in (1, 2, 4):
            server = ShardedPoseServer(estimator, num_shards=shards, config=config)
            result = replay_users(server, streams)
            assert result.frames_dropped == 0
            assert result.frames_served == total
            fps[shards] = result.frames_per_second
            payload[f"shards_{shards}_fps"] = result.frames_per_second
        # Deliberately named so the regression gate's throughput-key regex
        # (fps/tps/throughput) skips it: this ratio is scheduling-overhead
        # noise on small containers, not a throughput figure.
        payload["shard_overhead_ratio_4_vs_1"] = fps[4] / fps[1]
        _record("sharded_serving_scaling", payload)

        assert payload["shard_overhead_ratio_4_vs_1"] >= 0.25, (
            f"4-shard serving collapsed to {payload['shard_overhead_ratio_4_vs_1']:.2f}x "
            "of single-shard throughput"
        )


class TestServingFrontend:
    def test_process_shard_scaling_and_socket_throughput(self):
        """Shard-process scaling plus the socket front-end, end to end.

        Two measurements land in the ``serving_frontend`` section:

        * **process replay** — the 50-user replay through a
          :class:`ProcessShardedPoseServer` at 1/2/4 shard processes.  The
          parent replays single-threaded with one transport round-trip per
          frame, so on a single-core container this documents the IPC
          overhead; on a multi-core host the per-shard flushes overlap and
          the fps climbs with the shard count.
        * **socket submits** — every user drives its own
          :class:`AsyncPoseClient` connection into a
          :class:`PoseFrontend` over a Unix socket concurrently, the
          deployment shape (`fuse-serve`): shard processes genuinely work
          in parallel when the host has the cores.
        """
        import asyncio
        import tempfile
        from pathlib import Path as _Path

        estimator, streams = _serve_fixture()
        total = sum(len(stream) for stream in streams.values())
        config = ServeConfig(max_batch_size=64)
        payload: dict = {
            "users": NUM_USERS,
            "frames": total,
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
        }

        for shards in (1, 2, 4):
            with ProcessShardedPoseServer(
                estimator, num_shards=shards, config=config
            ) as server:
                result = replay_users(server, streams)
                assert result.frames_dropped == 0
                assert result.frames_served == total
                payload[f"process_shards_{shards}_fps"] = result.frames_per_second

        async def socket_run() -> float:
            socket_path = str(_Path(tempfile.mkdtemp(prefix="fuse-bench-")) / "fuse.sock")
            with ProcessShardedPoseServer(estimator, num_shards=2, config=config) as server:
                frontend = PoseFrontend(server, unix_path=socket_path)
                await frontend.start()
                try:

                    async def stream_user(user, frames):
                        async with AsyncPoseClient() as client:
                            await client.connect_unix(socket_path)
                            for sample in frames:
                                await client.submit(user, sample.cloud)

                    start = time.perf_counter()
                    await asyncio.gather(
                        *(stream_user(user, frames) for user, frames in streams.items())
                    )
                    return total / (time.perf_counter() - start)
                finally:
                    await frontend.stop()

        payload["socket_submit_fps"] = asyncio.run(socket_run())
        _record("serving_frontend", payload)
        assert payload["socket_submit_fps"] > 0

    def test_pipelined_and_batched_socket_throughput(self):
        """Protocol v2 over the same deployment shape: close the socket gap.

        Four measurements land in ``serving_frontend_pipelined``, all
        through a 2-shard-process backend over a Unix socket:

        * **in_flight_{1,8,64}_fps** — every user pipelines its own
          connection with the given in-flight window
          (:meth:`AsyncPoseClient.submit_many`).  Window 1 *is* the strict
          v1 request/reply discipline, measured here as the same-host
          baseline the acceptance bar compares against.
        * **batched_submit_fps** — one admin connection sends one
          ``submit_batch`` per replay tick (all 50 users' frames in one
          wire frame, one contiguous ndarray block, one ``EnqueueBatch``
          IPC hop per shard), the cheapest way to feed the cross-user
          micro-batcher remotely.

        The acceptance bar: the batched path must reach >= 5x the strict
        per-frame round-trip throughput on the same host.
        """
        import asyncio
        import tempfile
        from pathlib import Path as _Path

        estimator, streams = _serve_fixture()
        total = sum(len(stream) for stream in streams.values())
        config = ServeConfig(max_batch_size=64)
        payload: dict = {
            "users": NUM_USERS,
            "frames": total,
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
        }

        async def run() -> None:
            socket_path = str(
                _Path(tempfile.mkdtemp(prefix="fuse-bench-")) / "fuse.sock"
            )
            with ProcessShardedPoseServer(estimator, num_shards=2, config=config) as server:
                frontend = PoseFrontend(server, unix_path=socket_path, max_in_flight=64)
                await frontend.start()
                try:

                    async def stream_user(user, frames, window):
                        async with AsyncPoseClient() as client:
                            await client.connect_unix(socket_path)
                            await client.submit_many(
                                user,
                                [sample.cloud for sample in frames],
                                max_in_flight=window,
                            )

                    for window in (1, 8, 64):
                        start = time.perf_counter()
                        await asyncio.gather(
                            *(
                                stream_user(user, frames, window)
                                for user, frames in streams.items()
                            )
                        )
                        payload[f"in_flight_{window}_fps"] = total / (
                            time.perf_counter() - start
                        )

                    async with AsyncPoseClient() as client:
                        await client.connect_unix(socket_path)
                        ticks = max(len(stream) for stream in streams.values())
                        start = time.perf_counter()
                        for tick in range(ticks):
                            items = [
                                (user, stream[tick].cloud)
                                for user, stream in streams.items()
                                if tick < len(stream)
                            ]
                            await client.submit_batch(items)
                        payload["batched_submit_fps"] = total / (
                            time.perf_counter() - start
                        )
                finally:
                    await frontend.stop()

        asyncio.run(run())
        payload["pipelining_speedup_64_vs_1"] = (
            payload["in_flight_64_fps"] / payload["in_flight_1_fps"]
        )
        payload["batched_speedup_vs_strict"] = (
            payload["batched_submit_fps"] / payload["in_flight_1_fps"]
        )
        _record("serving_frontend_pipelined", payload)
        assert payload["batched_speedup_vs_strict"] >= 5.0, (
            f"batched submits only {payload['batched_speedup_vs_strict']:.1f}x the "
            "strict request/reply socket path"
        )


def _as_dataset(frames):
    from repro.dataset.sample import PoseDataset

    dataset = PoseDataset(name="calibration")
    dataset.extend(frames)
    return dataset


class TestRouterFanOut:
    def test_routed_cluster_throughput(self):
        """The cluster tier: the 50-user replay through ``PoseRouter``.

        Three measurements land in the ``router_fan_out`` section, every
        backend a 1-shard-process server behind its own Unix socket:

        * **direct_backend_fps** — the replay straight into one backend's
          front-end (no router): the baseline the router's extra hop is
          measured against;
        * **routed_1_backend_fps** — the same replay through the router
          over that single backend: the pure routing overhead (one more
          socket hop and FIFO placement lock per frame);
        * **routed_2_backends_fps** — the router fanning the users out over
          two backends by consistent hashing: on a multi-core host the
          backends' micro-batch flushes overlap and fps recovers the hop.
        """
        import asyncio
        import tempfile
        from pathlib import Path as _Path

        from repro.serve import BackendSpec, PoseRouter

        estimator, streams = _serve_fixture()
        total = sum(len(stream) for stream in streams.values())
        config = ServeConfig(max_batch_size=64)
        payload: dict = {
            "users": NUM_USERS,
            "frames": total,
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
        }

        async def drive(path: str) -> float:
            async def stream_user(user, frames):
                async with AsyncPoseClient() as client:
                    await client.connect_unix(path)
                    for sample in frames:
                        await client.submit(user, sample.cloud)

            start = time.perf_counter()
            await asyncio.gather(
                *(stream_user(user, frames) for user, frames in streams.items())
            )
            return total / (time.perf_counter() - start)

        async def run() -> None:
            root = _Path(tempfile.mkdtemp(prefix="fuse-bench-router-"))
            for num_backends in (1, 2):
                servers = [
                    ProcessShardedPoseServer(estimator, num_shards=1, config=config)
                    for _ in range(num_backends)
                ]
                frontends = []
                specs = []
                try:
                    for index, server in enumerate(servers):
                        path = str(root / f"fan{num_backends}-b{index}.sock")
                        frontend = PoseFrontend(server, unix_path=path)
                        await frontend.start()
                        frontends.append(frontend)
                        specs.append(BackendSpec(name=f"b{index}", unix_path=path))

                    if num_backends == 1:
                        payload["direct_backend_fps"] = await drive(specs[0].unix_path)

                    router_path = str(root / f"router-{num_backends}.sock")
                    router = PoseRouter(specs, unix_path=router_path)
                    await router.start()
                    try:
                        payload[f"routed_{num_backends}_backend{'s' if num_backends > 1 else ''}_fps"] = (
                            await drive(router_path)
                        )
                        if num_backends == 2:
                            placed = set(router._placement.values())
                            payload["backends_used"] = len(placed)
                    finally:
                        await router.stop()
                finally:
                    for frontend in frontends:
                        await frontend.stop()
                    for server in servers:
                        server.close()

        asyncio.run(run())
        payload["routing_overhead_vs_direct"] = (
            payload["direct_backend_fps"] / payload["routed_1_backend_fps"]
        )
        payload["fan_out_speedup_2_vs_1"] = (
            payload["routed_2_backends_fps"] / payload["routed_1_backend_fps"]
        )
        _record("router_fan_out", payload)
        assert payload["routed_2_backends_fps"] > 0


class TestFaultRecovery:
    def test_forced_failover_throughput_and_recovery(self):
        """Serving throughput through a forced backend failover.

        The 50-user replay runs through the router over two process-backed
        backends in three phases of five frames each, and the
        ``fault_recovery`` section records what the fleet actually pays for
        losing a backend mid-replay:

        * **steady_two_backend_fps** — the healthy two-backend baseline;
        * **during_failover_fps** — the phase that starts right after one
          backend's front-end is hard-stopped: the router's health monitor
          marks it down, every stranded user is re-placed onto the
          survivor, and their session rings are restored from the router's
          mirror — detection, re-placement and restore cost all land in
          this figure;
        * **after_recovery_fps** — the follow-up phase on the surviving
          backend alone: the degraded steady state the fleet runs at until
          capacity is restored;
        * **time_to_detect_s** / **time_to_recover_s** — backend stop to
          health mark-down, and backend stop to the first post-fault frame
          of every stranded user answered (the user-visible outage).

        The two timing figures are deliberately named without an
        fps/per_sec suffix so the regression gate trends only the
        throughput legs.
        """
        import asyncio
        import tempfile
        from pathlib import Path as _Path

        from repro.serve import BackendSpec, PoseRouter, RetryPolicy

        estimator, streams = _serve_fixture()
        users = sorted(streams)
        phase_frames = 5
        phase_total = len(users) * phase_frames
        payload: dict = {
            "users": len(users),
            "frames_per_phase": phase_frames,
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
        }

        async def drive(path: str, start_frame: int) -> float:
            async def stream_user(user):
                async with AsyncPoseClient() as client:
                    await client.connect_unix(path)
                    for sample in streams[user][start_frame : start_frame + phase_frames]:
                        await client.submit(user, sample.cloud)

            start = time.perf_counter()
            await asyncio.gather(*(stream_user(user) for user in users))
            return phase_total / (time.perf_counter() - start)

        async def run() -> None:
            root = _Path(tempfile.mkdtemp(prefix="fuse-bench-failover-"))
            config = ServeConfig(max_batch_size=64)
            servers = [
                ProcessShardedPoseServer(estimator, num_shards=1, config=config)
                for _ in range(2)
            ]
            frontends = []
            try:
                specs = []
                for index, server in enumerate(servers):
                    path = str(root / f"b{index}.sock")
                    frontend = PoseFrontend(server, unix_path=path)
                    await frontend.start()
                    frontends.append(frontend)
                    specs.append(BackendSpec(name=f"b{index}", unix_path=path))
                router = PoseRouter(
                    specs,
                    unix_path=str(root / "router.sock"),
                    health_interval_s=0.05,
                    health_timeout_s=0.5,
                    health_failures=2,
                    request_timeout_s=5.0,
                    retry_policy=RetryPolicy(
                        max_attempts=3, base_delay_s=0.05, max_delay_s=0.2
                    ),
                )
                await router.start()
                try:
                    router_path = str(root / "router.sock")
                    payload["steady_two_backend_fps"] = await drive(router_path, 0)
                    stranded = [
                        user
                        for user, backend in router._placement.items()
                        if backend == "b1"
                    ]
                    assert stranded, "consistent hashing placed nothing on b1"

                    await frontends[1].stop()
                    fault_start = time.perf_counter()
                    while not router.monitor.is_down("b1"):
                        await asyncio.sleep(0.01)
                    payload["time_to_detect_s"] = time.perf_counter() - fault_start

                    payload["during_failover_fps"] = await drive(router_path, 5)
                    payload["time_to_recover_s"] = time.perf_counter() - fault_start
                    assert router.backends_lost == 1
                    assert router.users_failed_over == len(stranded)
                    assert set(router._placement.values()) == {"b0"}

                    payload["after_recovery_fps"] = await drive(router_path, 10)
                finally:
                    await router.stop()
            finally:
                import contextlib

                for frontend in frontends:
                    with contextlib.suppress(Exception):
                        await frontend.stop()
                for server in servers:
                    server.close()

        asyncio.run(run())
        _record("fault_recovery", payload)
        assert payload["after_recovery_fps"] > 0
        assert payload["time_to_recover_s"] > payload["time_to_detect_s"] > 0


class TestMixedClassServing:
    def test_mixed_class_latency_and_bulk_retention(self):
        """Interactive and bulk classes sharing one EDF-scheduled server.

        10 interactive users ride alongside 40 bulk users through the same
        micro-batcher; the ``mixed_class_serving`` section records the
        interactive p95 against its class budget and the bulk throughput
        retained versus an isolated bulk-only replay of identical cadence.
        The floor asserts bulk keeps >= 70% of its isolated throughput —
        deadline scheduling must not starve the relaxed class to serve the
        tight one.
        """
        estimator, streams = _serve_fixture()
        users = sorted(streams)
        interactive_users = users[:10]
        bulk_users = users[10:]
        policy = SchedulingPolicy(
            classes=(TrafficClass("interactive", 50.0), TrafficClass("bulk", 500.0)),
        )

        def replay(include_interactive: bool) -> dict:
            server = PoseServer(
                estimator,
                ServeConfig(
                    max_batch_size=64, max_queue_depth=4096, scheduling=policy
                ),
            )
            start = time.perf_counter()
            for round_index in range(FRAMES_PER_USER):
                for user in bulk_users:
                    server.enqueue(user, streams[user][round_index].cloud, priority="bulk")
                if include_interactive:
                    for user in interactive_users:
                        server.enqueue(
                            user, streams[user][round_index].cloud, priority="interactive"
                        )
                server.flush()
            while server.flush():
                pass
            elapsed = time.perf_counter() - start
            metrics = server.metrics_snapshot()
            metrics["bulk_fps"] = metrics["class_bulk_completed"] / elapsed
            return metrics

        replay(include_interactive=True)  # warm caches/allocators
        mixed = replay(include_interactive=True)
        isolated = replay(include_interactive=False)

        payload = {
            "cpu_count": os.cpu_count(),
            "backend": active_backend_name(),
            "interactive_users": len(interactive_users),
            "bulk_users": len(bulk_users),
            "frames_per_user": FRAMES_PER_USER,
            "interactive_budget_ms": 50.0,
            "interactive_p95_ms": mixed["class_interactive_latency_p95_ms"],
            "bulk_p95_ms": mixed["class_bulk_latency_p95_ms"],
            "mixed_bulk_fps": mixed["bulk_fps"],
            "isolated_bulk_fps": isolated["bulk_fps"],
            # Named without fps/throughput so the regression gate's
            # throughput-key regex does not trend a same-run ratio.
            "bulk_retention_ratio_mixed_vs_isolated": (
                mixed["bulk_fps"] / isolated["bulk_fps"]
            ),
            "deadline_misses": mixed["deadline_misses"],
        }
        _record("mixed_class_serving", payload)

        assert mixed["dropped"] == 0 and isolated["dropped"] == 0
        assert payload["interactive_p95_ms"] <= payload["interactive_budget_ms"], (
            f"interactive p95 {payload['interactive_p95_ms']:.1f} ms blew the "
            f"{payload['interactive_budget_ms']:.0f} ms class budget"
        )
        assert payload["bulk_retention_ratio_mixed_vs_isolated"] >= 0.70, (
            f"bulk retained only {payload['bulk_retention_ratio_mixed_vs_isolated']:.2f}x "
            "of its isolated throughput under mixed-class load"
        )

"""Benchmark: regenerate Figure 2 (single-frame vs multi-frame density).

The paper's visual argument is quantified here: the fused representation must
contain roughly ``2M + 1`` times more points, cover more of the front-view
grid and in particular recover upper-body detail that single frames miss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataset.features import FeatureMapBuilder
from repro.experiments.figure2 import format_figure2, run_figure2
from repro.radar.pointcloud import PointCloudFrame


@pytest.fixture(scope="module")
def figure2_result(ci_scale):
    return run_figure2(ci_scale, movement="squat", num_context_frames=1)


def check_figure2_shape(result) -> None:
    assert result.fused_points > 2.0 * result.single_points
    assert result.fused_coverage >= result.single_coverage
    assert result.upper_body_fused >= result.upper_body_single


class TestFigure2Reproduction:
    def test_regenerate_figure2(self, benchmark, figure2_result):
        result = benchmark.pedantic(lambda: figure2_result, rounds=1, iterations=1)
        print("\n" + format_figure2(result))
        check_figure2_shape(result)

    def test_enrichment_factor_close_to_window_size(self, figure2_result):
        # Fusing three frames should roughly triple the mean point count.
        assert 2.0 < figure2_result.enrichment_factor() < 4.0

    def test_coverage_improves(self, figure2_result):
        assert figure2_result.fused_coverage > figure2_result.single_coverage


class TestFeatureKernels:
    def test_benchmark_feature_map_construction(self, benchmark, bench_dataset):
        """Point-cloud to 8x8x5 feature-map conversion throughput."""
        builder = FeatureMapBuilder()
        clouds = [sample.cloud for sample in list(bench_dataset)[:256]]
        benchmark(lambda: builder.build_batch(clouds))

    def test_benchmark_single_frame_generation(self, benchmark, subject_scatterers):
        """Geometric radar backend: one point-cloud frame."""
        pipeline, scatterers = subject_scatterers
        rng = np.random.default_rng(0)
        result = benchmark(lambda: pipeline.process_scatterers(scatterers, rng))
        assert isinstance(result, PointCloudFrame)


@pytest.fixture(scope="module")
def subject_scatterers():
    from repro.body.motion import MotionSynthesizer
    from repro.body.subjects import default_subjects
    from repro.body.surface import BodyScatteringModel
    from repro.radar.pipeline import make_pipeline

    subject = default_subjects()[0]
    trajectory = MotionSynthesizer().synthesize(
        subject, "squat", 3.0, rng=np.random.default_rng(0)
    )
    positions, velocities = trajectory.frame(10)
    scatterers = BodyScatteringModel().scatterers(positions, velocities, np.random.default_rng(1))
    return make_pipeline("geometric"), scatterers

"""Shared I/O for the ``BENCH_*.json`` result files.

Each benchmark module keeps its own in-process section dict and calls
:func:`record_section` after every measurement; the helper merges with
whatever is already on disk so a partial run (``pytest -k <one-bench>``
while iterating) never clobbers the other committed sections.

The flip side of merging: a *renamed or deleted* section is never pruned
automatically — when retiring a benchmark, remove its stale section from the
committed ``BENCH_*.json`` in the same commit, or the regression gate will
keep trending the phantom figure against itself.
"""

from __future__ import annotations

import json
from pathlib import Path


def record_section(bench_path: Path, results: dict, section: str, payload: dict) -> None:
    """Update one section of a benchmark JSON, merging with the disk state."""
    results[section] = payload
    merged: dict = {}
    if bench_path.exists():
        try:
            merged = json.loads(bench_path.read_text())
        except json.JSONDecodeError:
            merged = {}
    merged.update(results)
    bench_path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
